//! Concurrency benches for the sharded store: multi-threaded check
//! throughput at 1/2/4/8 checker threads against the single-threaded
//! baseline, the parallel Algorithm 1 fan-out at 1/2/4/8 workers, and the
//! asynchronous pipeline's batch-vs-sequential round-trip comparison.
//!
//! Besides the criterion timings, the harness writes the scaling series to
//! `BENCH_concurrent.json` at the repository root, together with the
//! machine's core count — on a single-core host the series is flat (there
//! is no parallel speedup to harvest), so the JSON records the hardware
//! context needed to interpret it.

use browserflow::{AsyncDecider, BrowserFlow, CheckRequest, EnforcementMode};
use browserflow_bench::{algorithm1, warn_if_single_core};
use browserflow_corpus::TextGen;
use browserflow_fingerprint::Fingerprinter;
use browserflow_store::{codec, FingerprintStore, SegmentId, Timestamp};
use browserflow_tdm::Service;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

const STORE_PARAGRAPHS: usize = 1_500;
const CHECKS_PER_THREAD: usize = 40;
/// Paragraphs per document-wide recheck in the async round-trip bench.
const BATCH_PARAGRAPHS: usize = 32;
/// Shard count for the v2 persistence round-trip bench.
const PERSIST_SHARDS: usize = 16;

fn paragraphs(count: usize, seed: u64) -> Vec<String> {
    let mut gen = TextGen::new(seed);
    (0..count).map(|_| gen.paragraph(7)).collect()
}

fn filled_store(fp: &Fingerprinter, texts: &[String]) -> FingerprintStore {
    let store = FingerprintStore::new();
    // Seed through the corpus-shaped batched path (proptest-pinned
    // outcome-identical to the per-paragraph loop), so the batch
    // counters in `store_counters` reflect a real ingest.
    let prints: Vec<_> = texts.iter().map(|text| fp.fingerprint(text)).collect();
    let entries: Vec<_> = prints
        .iter()
        .enumerate()
        .map(|(i, print)| (SegmentId::new(i as u64), print, 0.5))
        .collect();
    store.observe_batch(&entries);
    store
}

/// Runs `threads` checker threads, each performing `CHECKS_PER_THREAD`
/// sequential Algorithm 1 checks against the shared store, and returns the
/// wall-clock seconds for the whole batch.
fn run_checker_batch(
    store: &Arc<FingerprintStore>,
    queries: &Arc<Vec<HashSet<u32>>>,
    threads: usize,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(store);
            let queries = Arc::clone(queries);
            s.spawn(move || {
                for i in 0..CHECKS_PER_THREAD {
                    let query = &queries[(t * CHECKS_PER_THREAD + i) % queries.len()];
                    // One worker per check: this axis measures how well
                    // independent checkers share the striped store.
                    std::hint::black_box(store.disclosing_sources_with_workers(
                        SegmentId::new(1_000_000 + t as u64),
                        query,
                        1,
                    ));
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Measures the asynchronous pipeline's round-trip cost: the same 32
/// paragraphs checked as 32 sequential blocking `check` calls (32 worker
/// round-trips) versus one `check_request` batch (a single round-trip
/// served by one Algorithm 1 fan-out). Keystroke-scale texts and a warmed
/// decision cache keep the per-paragraph engine work small, so the
/// measured difference is pipeline overhead — the quantity batching
/// removes — not fingerprinting throughput.
/// Returns (sequential_secs, batch_secs) per sweep of all 32 paragraphs.
fn run_async_roundtrip() -> (f64, f64) {
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Advisory)
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .expect("policy builds");
    let texts: Vec<String> = (0..BATCH_PARAGRAPHS)
        .map(|i| format!("note {i}: ok"))
        .collect();
    let decider = AsyncDecider::spawn(flow);
    let warm_request = CheckRequest::batch("gdocs", "draft", texts.iter().map(String::as_str));
    decider
        .check_request(warm_request.clone())
        .expect("gdocs registered");
    for (i, text) in texts.iter().enumerate() {
        decider
            .check("gdocs", "draft", i, text.as_str())
            .expect("gdocs registered");
    }

    const ROUNDS: usize = 50;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for (i, text) in texts.iter().enumerate() {
            std::hint::black_box(
                decider
                    .check("gdocs", "draft", i, text.as_str())
                    .expect("gdocs registered"),
            );
        }
    }
    let sequential = start.elapsed().as_secs_f64() / ROUNDS as f64;

    let start = Instant::now();
    for _ in 0..ROUNDS {
        std::hint::black_box(
            decider
                .check_request(warm_request.clone())
                .expect("gdocs registered"),
        );
    }
    let batch = start.elapsed().as_secs_f64() / ROUNDS as f64;

    let stats = decider.stats();
    assert_eq!(stats.max_batch, BATCH_PARAGRAPHS as u64);
    (sequential, batch)
}

/// Serialises the store with the sharded v2 codec and times the decode at
/// one worker versus eight: the per-shard records are independent, so the
/// parallel load scales with cores. Returns
/// `(blob_bytes, encode_secs, decode_1_worker_secs, decode_8_workers_secs)`,
/// each timing the best of three passes.
fn run_persist_roundtrip(store: &FingerprintStore) -> (usize, f64, f64, f64) {
    let best_of_3 = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    // Warm-up encode, then the measured passes.
    let blob = codec::encode_v2_with_shards(store, PERSIST_SHARDS).expect("store fits the format");
    let encode = best_of_3(&|| {
        let start = Instant::now();
        std::hint::black_box(
            codec::encode_v2_with_shards(store, PERSIST_SHARDS).expect("store fits the format"),
        );
        start.elapsed().as_secs_f64()
    });
    let decode_at = |workers: usize| {
        codec::decode_with_workers(&blob, workers).expect("blob decodes");
        best_of_3(&|| {
            let start = Instant::now();
            std::hint::black_box(codec::decode_with_workers(&blob, workers).expect("blob decodes"));
            start.elapsed().as_secs_f64()
        })
    };
    (blob.len(), encode, decode_at(1), decode_at(8))
}

fn write_report(
    checker_series: &[(usize, f64)],
    fanout_series: &[(usize, f64)],
    baseline_checks_per_sec: f64,
    async_roundtrip: (f64, f64),
    persist: (usize, f64, f64, f64),
    algorithm1_results: &[algorithm1::SizeResult],
    store: &FingerprintStore,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let checker_json: Vec<String> = checker_series
        .iter()
        .map(|(threads, secs)| {
            let total = (threads * CHECKS_PER_THREAD) as f64;
            format!(
                "    {{\"threads\": {threads}, \"total_checks\": {}, \"wall_s\": {secs:.6}, \
                 \"checks_per_sec\": {:.1}, \"speedup_vs_1_thread\": {:.3}}}",
                total as u64,
                total / secs,
                (total / secs) / baseline_checks_per_sec
            )
        })
        .collect();
    let fanout_json: Vec<String> = fanout_series
        .iter()
        .map(|(workers, secs)| {
            format!(
                "    {{\"workers\": {workers}, \"mean_check_ms\": {:.4}}}",
                secs * 1e3
            )
        })
        .collect();
    // One sweep with a cutoff below every observation timestamp: the scan
    // counters show the cost of an eviction pass without evicting data.
    store.evict_older_than(Timestamp::ZERO);
    let stats = store.stats();
    let shard_list = |counts: &[u64]| {
        counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let store_json = format!(
        "{{\"shard_count\": {}, \"hash_lock_contention\": {}, \
         \"segment_lock_contention\": {}, \"hash_shard_contention\": [{}], \
         \"segment_shard_contention\": [{}], \"eviction_sweeps\": {}, \
         \"eviction_segments_scanned\": {}, \"eviction_segments_evicted\": {}, \
         \"batched_observes\": {}, \"batch_hashes_recorded\": {}, \
         \"batch_lock_acquisitions\": {}}}",
        stats.shard_count,
        stats.hash_lock_contention,
        stats.segment_lock_contention,
        shard_list(&stats.hash_shard_contention),
        shard_list(&stats.segment_shard_contention),
        stats.eviction_scans,
        stats.eviction_scanned,
        stats.eviction_evicted,
        stats.batched_observes,
        stats.batch_hashes_recorded,
        stats.batch_lock_acquisitions,
    );
    let (seq_secs, batch_secs) = async_roundtrip;
    let async_json = format!(
        "{{\"paragraphs\": {BATCH_PARAGRAPHS}, \"sequential_ms\": {:.4}, \
         \"batch_ms\": {:.4}, \"speedup\": {:.2}}}",
        seq_secs * 1e3,
        batch_secs * 1e3,
        seq_secs / batch_secs
    );
    let algorithm1_json: Vec<String> = algorithm1_results
        .iter()
        .map(|r| {
            format!(
                "    {{\"paragraphs\": {}, \"target_hashes\": {}, \"reports\": {}, \
                 \"probe_ms\": {:.4}, \"indexed_ms\": {:.4}, \"speedup\": {:.2}}}",
                r.paragraphs,
                r.target_hashes,
                r.reports,
                r.probe_ms,
                r.indexed_ms,
                r.speedup()
            )
        })
        .collect();
    let (blob_bytes, encode_secs, decode_1, decode_8) = persist;
    let persist_json = format!(
        "{{\"shards\": {PERSIST_SHARDS}, \"blob_bytes\": {blob_bytes}, \
         \"encode_ms\": {:.4}, \"decode_1_worker_ms\": {:.4}, \
         \"decode_8_workers_ms\": {:.4}, \"parallel_load_speedup\": {:.2}}}",
        encode_secs * 1e3,
        decode_1 * 1e3,
        decode_8 * 1e3,
        decode_1 / decode_8
    );
    let json = format!(
        "{{\n  \"bench\": \"concurrent\",\n  \"host_cores\": {cores},\n  \
         \"store_paragraphs\": {STORE_PARAGRAPHS},\n  \
         \"note\": \"speedups are bounded by host_cores; a flat series on a \
         single-core host reflects the hardware, not the implementation; \
         async_batch_roundtrip compares 32 sequential blocking checks (32 worker \
         round-trips) against one batched CheckRequest (1 round-trip); \
         persist_roundtrip decodes one sharded v2 store blob at 1 vs 8 workers; \
         algorithm1 compares the probe-based pre-index reference against the \
         authoritative-set index + sorted-slice intersection kernel on identical \
         stores (speedup is layout-driven, not core-count-driven)\",\n  \
         \"checker_thread_scaling\": [\n{}\n  ],\n  \
         \"algorithm1_fanout\": [\n{}\n  ],\n  \
         \"algorithm1\": [\n{}\n  ],\n  \
         \"async_batch_roundtrip\": {async_json},\n  \
         \"persist_roundtrip\": {persist_json},\n  \
         \"store_counters\": {store_json}\n}}\n",
        checker_json.join(",\n"),
        fanout_json.join(",\n"),
        algorithm1_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_concurrent.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_concurrent_checkers(c: &mut Criterion) {
    warn_if_single_core();
    let fp = Fingerprinter::default();
    let texts = paragraphs(STORE_PARAGRAPHS, 17);
    let store = Arc::new(filled_store(&fp, &texts));
    // Half the queries hit stored content, half are novel.
    let queries: Arc<Vec<HashSet<u32>>> = Arc::new(
        texts
            .iter()
            .step_by(10)
            .map(|t| fp.fingerprint(t).hash_set())
            .chain(
                paragraphs(16, 900_000)
                    .iter()
                    .map(|t| fp.fingerprint(t).hash_set()),
            )
            .collect(),
    );

    let mut checker_series = Vec::new();
    let mut group = c.benchmark_group("concurrent-checkers");
    for threads in [1usize, 2, 4, 8] {
        // Warm-up pass, then three measured passes; keep the best.
        run_checker_batch(&store, &queries, threads);
        let secs = (0..3)
            .map(|_| run_checker_batch(&store, &queries, threads))
            .fold(f64::INFINITY, f64::min);
        checker_series.push((threads, secs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            &threads,
            |b, &threads| b.iter(|| run_checker_batch(&store, &queries, threads)),
        );
    }
    group.finish();

    // Parallel Algorithm 1 fan-out: one broad check with many candidates.
    let broad: HashSet<u32> = texts
        .iter()
        .take(200)
        .flat_map(|t| fp.fingerprint(t).hash_set())
        .collect();
    let mut fanout_series = Vec::new();
    let mut group = c.benchmark_group("algorithm1-fanout");
    for workers in [1usize, 2, 4, 8] {
        store.disclosing_sources_with_workers(SegmentId::new(2_000_000), &broad, workers);
        let start = Instant::now();
        const ROUNDS: usize = 5;
        for _ in 0..ROUNDS {
            std::hint::black_box(store.disclosing_sources_with_workers(
                SegmentId::new(2_000_000),
                &broad,
                workers,
            ));
        }
        fanout_series.push((workers, start.elapsed().as_secs_f64() / ROUNDS as f64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}-workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    store.disclosing_sources_with_workers(
                        SegmentId::new(2_000_000),
                        &broad,
                        workers,
                    )
                })
            },
        );
    }
    group.finish();

    // Async pipeline round-trip comparison: warm-up pass, then keep the
    // best of three (least-noise estimate of the fixed overhead).
    run_async_roundtrip();
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (seq, batch) = run_async_roundtrip();
        best = (best.0.min(seq), best.1.min(batch));
    }
    let mut group = c.benchmark_group("async-batch-roundtrip");
    group.bench_function("32-sequential-vs-1-batch", |b| b.iter(run_async_roundtrip));
    group.finish();
    println!(
        "async round-trip: sequential {:.3} ms, batch {:.3} ms, speedup {:.1}x",
        best.0 * 1e3,
        best.1 * 1e3,
        best.0 / best.1
    );

    // Sharded persistence round-trip: encode once, decode at 1 vs 8
    // workers over the same v2 blob.
    let persist = run_persist_roundtrip(&store);
    let mut group = c.benchmark_group("persist-roundtrip");
    group.bench_function(format!("decode-{PERSIST_SHARDS}-shards"), |b| {
        let blob = codec::encode_v2_with_shards(&store, PERSIST_SHARDS).expect("store fits");
        b.iter(|| codec::decode_with_workers(&blob, 8).expect("blob decodes"))
    });
    group.finish();
    println!(
        "persist round-trip: {} shards, {} bytes, encode {:.3} ms, decode {:.3} ms (1 worker) \
         / {:.3} ms (8 workers)",
        PERSIST_SHARDS,
        persist.0,
        persist.1 * 1e3,
        persist.2 * 1e3,
        persist.3 * 1e3
    );

    // Old-vs-new candidate evaluation on dedicated synthetic stores (the
    // same sweep `bench_algorithm1` gates in CI).
    let algorithm1_results = algorithm1::run(algorithm1::STORE_SIZES);
    for r in &algorithm1_results {
        println!(
            "algorithm1: {} paragraphs, probe {:.3} ms, indexed {:.3} ms, speedup {:.2}x",
            r.paragraphs,
            r.probe_ms,
            r.indexed_ms,
            r.speedup()
        );
    }

    let (_, base_secs) = checker_series[0];
    let baseline = CHECKS_PER_THREAD as f64 / base_secs;
    write_report(
        &checker_series,
        &fanout_series,
        baseline,
        best,
        persist,
        &algorithm1_results,
        &store,
    );
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_concurrent_checkers
);
criterion_main!(benches);
