//! Criterion benches for the fingerprint store and Algorithm 1: observe
//! throughput, query latency vs database size, and the authoritative
//! overlap computation.

use browserflow_corpus::TextGen;
use browserflow_fingerprint::Fingerprinter;
use browserflow_store::{FingerprintStore, SegmentId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn paragraphs(count: usize, seed: u64) -> Vec<String> {
    let mut gen = TextGen::new(seed);
    (0..count).map(|_| gen.paragraph(7)).collect()
}

fn filled_store(fp: &Fingerprinter, texts: &[String]) -> FingerprintStore {
    let store = FingerprintStore::new();
    for (i, text) in texts.iter().enumerate() {
        store.observe(SegmentId::new(i as u64), &fp.fingerprint(text), 0.5);
    }
    store
}

fn bench_observe(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let texts = paragraphs(512, 7);
    let prints: Vec<_> = texts.iter().map(|t| fp.fingerprint(t)).collect();
    c.bench_function("store-observe-512-paragraphs", |b| {
        b.iter(|| {
            let store = FingerprintStore::new();
            for (i, print) in prints.iter().enumerate() {
                store.observe(SegmentId::new(i as u64), print, 0.5);
            }
            store.hash_count()
        })
    });
}

fn bench_query_vs_db_size(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let mut group = c.benchmark_group("algorithm1-query");
    for size in [100usize, 1_000, 10_000] {
        let texts = paragraphs(size, 11);
        let store = filled_store(&fp, &texts);
        // Query: a paste of a known paragraph (worst case: overlap).
        let query = fp.fingerprint(&texts[size / 2]);
        let target = SegmentId::new(u64::MAX);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}-paragraphs-hit")),
            &store,
            |b, store| b.iter(|| store.disclosing_sources(target, &query)),
        );
        // Query: novel text (no candidates survive the hash lookup).
        let miss = fp.fingerprint(&paragraphs(1, 999_999)[0]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}-paragraphs-miss")),
            &store,
            |b, store| b.iter(|| store.disclosing_sources(target, &miss)),
        );
    }
    group.finish();
}

fn bench_authoritative_fingerprint(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let texts = paragraphs(1_000, 13);
    let store = filled_store(&fp, &texts);
    c.bench_function("authoritative-fingerprint", |b| {
        b.iter(|| store.authoritative_fingerprint(SegmentId::new(500)))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_observe,
    bench_query_vs_db_size,
    bench_authoritative_fingerprint
);
criterion_main!(benches);
