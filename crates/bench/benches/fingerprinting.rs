//! Criterion benches for the fingerprinting pipeline, including the
//! ablations over the n-gram length and window size called out in
//! DESIGN.md (fingerprint cost is the per-keystroke cost of BrowserFlow,
//! so it must stay in the microsecond range for paragraph-sized inputs).

use browserflow_corpus::TextGen;
use browserflow_fingerprint::{ngram, normalize, winnow, FingerprintConfig, Fingerprinter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn text_of(bytes: usize) -> String {
    let mut gen = TextGen::new(42);
    let mut out = String::new();
    while out.len() < bytes {
        out.push_str(&gen.sentence());
        out.push(' ');
    }
    out.truncate(bytes);
    out
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let text = text_of(2_000); // a large paragraph
    let mut group = c.benchmark_group("pipeline-stages");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("normalize", |b| {
        b.iter(|| normalize::normalize(std::hint::black_box(&text)))
    });
    let normalized = normalize::normalize(&text);
    group.bench_function("ngram-hashes", |b| {
        b.iter(|| ngram::ngram_hashes(std::hint::black_box(normalized.text()), 15))
    });
    let hashes = ngram::ngram_hashes(normalized.text(), 15);
    group.bench_function("winnow", |b| {
        b.iter(|| winnow::winnow(std::hint::black_box(&hashes), 30))
    });
    let fp = Fingerprinter::default();
    group.bench_function("full-fingerprint", |b| {
        b.iter(|| fp.fingerprint(std::hint::black_box(&text)))
    });
    group.finish();
}

fn bench_input_sizes(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let mut group = c.benchmark_group("fingerprint-by-size");
    for kib in [1usize, 4, 16, 64, 256] {
        let text = text_of(kib * 1024);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kib}KiB")),
            &text,
            |b, t| b.iter(|| fp.fingerprint(std::hint::black_box(t))),
        );
    }
    group.finish();
}

fn bench_ablation_ngram_window(c: &mut Criterion) {
    let text = text_of(8_192);
    let mut group = c.benchmark_group("ablation");
    for (n, w) in [(5, 10), (15, 30), (15, 60), (30, 30), (50, 100)] {
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(n)
                .window(w)
                .build()
                .expect("valid config"),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}-w{w}")),
            &text,
            |b, t| b.iter(|| fp.fingerprint(std::hint::black_box(t))),
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_pipeline_stages,
    bench_input_sizes,
    bench_ablation_ngram_window
);
criterion_main!(benches);
