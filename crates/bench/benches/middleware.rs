//! Criterion benches for the end-to-end middleware path, the
//! decision-cache ablation, and the exact-match DLP baseline comparison.

use browserflow::baseline::ExactMatchDlp;
use browserflow::{BrowserFlow, CheckRequest, EngineConfig};
use browserflow_corpus::TextGen;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn flow_with_corpus(paragraphs: usize, cache: bool) -> (BrowserFlow, Vec<String>) {
    let lib = Tag::new("library").expect("valid tag");
    let flow = BrowserFlow::builder()
        .engine(EngineConfig {
            cache_decisions: cache,
            ..EngineConfig::default()
        })
        .service(
            Service::new("library", "Library")
                .with_privilege(TagSet::from_iter([lib.clone()]))
                .with_confidentiality(TagSet::from_iter([lib])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .expect("policy builds");
    let mut gen = TextGen::new(21);
    let texts: Vec<String> = (0..paragraphs).map(|_| gen.paragraph(7)).collect();
    let library: ServiceId = "library".into();
    for (i, text) in texts.iter().enumerate() {
        flow.index_paragraph(&library, "corpus", i, text)
            .expect("library registered");
    }
    (flow, texts)
}

fn bench_check_upload(c: &mut Criterion) {
    let mut group = c.benchmark_group("check-upload");
    let gdocs: ServiceId = "gdocs".into();
    for &cache in &[false, true] {
        let (flow, texts) = flow_with_corpus(2_000, cache);
        let secret = texts[1_000].clone();
        let label = if cache { "cached" } else { "uncached" };
        group.bench_function(BenchmarkId::from_parameter(format!("hit-{label}")), |b| {
            b.iter(|| {
                flow.check_one(&CheckRequest::paragraph(
                    &gdocs,
                    "draft",
                    0,
                    std::hint::black_box(secret.as_str()),
                ))
                .expect("gdocs registered")
            })
        });
        let mut gen = TextGen::new(5555);
        let novel = gen.paragraph(7);
        group.bench_function(BenchmarkId::from_parameter(format!("miss-{label}")), |b| {
            b.iter(|| {
                flow.check_one(&CheckRequest::paragraph(
                    &gdocs,
                    "draft2",
                    0,
                    std::hint::black_box(novel.as_str()),
                ))
                .expect("gdocs registered")
            })
        });
    }
    group.finish();
}

fn bench_against_exact_match_baseline(c: &mut Criterion) {
    let mut gen = TextGen::new(31);
    let texts: Vec<String> = (0..2_000).map(|_| gen.paragraph(7)).collect();
    let mut dlp = ExactMatchDlp::new();
    for text in &texts {
        dlp.register(text);
    }
    let probe = texts[1_000].clone();
    c.bench_function("baseline-exact-match-lookup", |b| {
        b.iter(|| dlp.is_registered(std::hint::black_box(&probe)))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_check_upload, bench_against_exact_match_baseline
);
criterion_main!(benches);
