//! Ablation over the fingerprinting parameters (beyond the paper).
//!
//! The paper fixes 32-bit hashes over 15-character n-grams with window 30
//! (§6.1) without exploring alternatives. This experiment sweeps the
//! n-gram length and window size and reports, on the Manuals dataset:
//!
//! - detection agreement with the ground truth at `Tpar = 0.5`,
//! - the measured fingerprint density vs the theoretical `2/(w+1)`,
//! - the total number of stored hashes (memory proxy), and
//! - the guarantee threshold `t = w + n - 1` (the shortest match that is
//!   always reflected in the fingerprints).
//!
//! The sweep makes the paper's choice legible: short n-grams inflate the
//! database and produce cross-paragraph false positives, long n-grams and
//! wide windows miss edited copies; (15, 30) sits on the plateau.

use browserflow_bench::print_header;
use browserflow_corpus::datasets::ManualsDataset;
use browserflow_fingerprint::{Fingerprint, FingerprintConfig, Fingerprinter};
use browserflow_store::disclosure_between;

const TPAR: f64 = 0.5;
const GROUND_TRUTH_CUTOFF: f64 = 0.5;

struct SweepResult {
    agreement: f64,
    detected: usize,
    truth: usize,
    total_hashes: usize,
    density: f64,
}

fn evaluate(fingerprinter: &Fingerprinter, manuals: &ManualsDataset) -> SweepResult {
    let mut agree = 0usize;
    let mut considered = 0usize;
    let mut detected_total = 0usize;
    let mut truth_total = 0usize;
    let mut total_hashes = 0usize;
    let mut total_grams = 0usize;
    let n = fingerprinter.config().ngram_len();

    for chapter in manuals.chapters() {
        let base: Vec<Fingerprint> = chapter
            .chain
            .base()
            .paragraphs()
            .iter()
            .map(|p| {
                let text = p.text();
                let normalized = browserflow_fingerprint::normalize::normalize(&text);
                if normalized.len() >= n {
                    total_grams += normalized.len() - n + 1;
                }
                let print = fingerprinter.fingerprint(&text);
                total_hashes += print.len();
                print
            })
            .collect();
        for version in 1..chapter.chain.len() {
            let truth = chapter.ground_truth(version, GROUND_TRUTH_CUTOFF);
            let revision_hashes = fingerprinter
                .fingerprint(&chapter.chain.revision(version).text())
                .hash_set();
            for (index, paragraph) in base.iter().enumerate() {
                let hashes = paragraph.hash_set();
                if hashes.is_empty() {
                    continue;
                }
                considered += 1;
                let d = disclosure_between(&hashes, &revision_hashes);
                let found = d >= TPAR;
                let truly = truth.is_disclosed(index);
                if found {
                    detected_total += 1;
                }
                if truly {
                    truth_total += 1;
                }
                if found == truly {
                    agree += 1;
                }
            }
        }
    }
    SweepResult {
        agreement: agree as f64 / considered.max(1) as f64,
        detected: detected_total,
        truth: truth_total,
        total_hashes,
        density: total_hashes as f64 / total_grams.max(1) as f64,
    }
}

fn main() {
    print_header(
        "Ablation: fingerprint parameters (n-gram length x window size)",
        "Manuals dataset; detection agreement with ground truth at Tpar = 0.5",
    );
    let manuals = ManualsDataset::generate(2);
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "ngram",
        "window",
        "guarantee",
        "agreement",
        "detected",
        "truth",
        "hashes",
        "density",
        "2/(w+1)"
    );
    for &(n, w) in &[
        (5usize, 10usize),
        (10, 20),
        (15, 30), // the paper's configuration
        (15, 60),
        (25, 30),
        (30, 60),
        (50, 100),
    ] {
        let config = FingerprintConfig::builder()
            .ngram_len(n)
            .window(w)
            .build()
            .expect("valid sweep parameters");
        let fingerprinter = Fingerprinter::new(config);
        let result = evaluate(&fingerprinter, &manuals);
        println!(
            "{:>6} {:>6} {:>10} {:>9.1}% {:>9} {:>9} {:>9} {:>10.4} {:>9.4}",
            n,
            w,
            config.guarantee_threshold(),
            result.agreement * 100.0,
            result.detected,
            result.truth,
            result.total_hashes,
            result.density,
            config.expected_density()
        );
    }
    println!();
    println!(
        "(expected: agreement peaks on a plateau that includes the paper's (15, 30); \
         small n-grams inflate the hash database, large parameters under-detect)"
    );
}
