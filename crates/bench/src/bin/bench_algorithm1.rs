//! Old-vs-new microbench for Algorithm 1 candidate evaluation.
//!
//! Sweeps the store sizes in [`algorithm1::STORE_SIZES`], timing one
//! document-wide disclosure check under the pre-index probe-based
//! reference and under the production path (authoritative-set index +
//! sorted-slice intersection kernel) on identical data, and asserts the
//! CI speedup floor on the largest store.
//!
//! The floor defaults to 3.0x and can be overridden with `BF_A1_FLOOR`
//! (e.g. for debug builds, where relative timings differ).

use browserflow_bench::{algorithm1, host_cores, print_header, warn_if_single_core};

fn main() {
    warn_if_single_core();
    let floor: f64 = std::env::var("BF_A1_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    print_header(
        "Algorithm 1 candidate evaluation: probe-based reference vs authoritative index",
        &format!(
            "target quotes {} of {} hashes from each of {} stored paragraphs; host_cores = {}",
            algorithm1::TARGET_HASHES_PER_SOURCE,
            algorithm1::OWN_HASHES,
            algorithm1::TARGET_SOURCES,
            host_cores()
        ),
    );
    println!(
        "{:>12} {:>14} {:>9} {:>12} {:>12} {:>9}",
        "paragraphs", "target_hashes", "reports", "probe_ms", "indexed_ms", "speedup"
    );

    let results = algorithm1::run(algorithm1::STORE_SIZES);
    for r in &results {
        println!(
            "{:>12} {:>14} {:>9} {:>12.3} {:>12.3} {:>8.2}x",
            r.paragraphs,
            r.target_hashes,
            r.reports,
            r.probe_ms,
            r.indexed_ms,
            r.speedup()
        );
    }

    let largest = results.last().expect("STORE_SIZES is non-empty");
    let speedup = largest.speedup();
    println!(
        "\nlargest store ({} paragraphs): {:.2}x speedup (floor {:.1}x)",
        largest.paragraphs, speedup, floor
    );
    assert!(
        speedup >= floor,
        "indexed Algorithm 1 must be >= {floor:.1}x faster than the probe-based \
         reference on the largest store; measured {speedup:.2}x"
    );
    println!("PASS: speedup floor met");
}
