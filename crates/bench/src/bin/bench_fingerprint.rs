//! Regenerates **BENCH_fingerprint.json**: per-keystroke disclosure-check
//! latency and heap-allocation counts for the full re-fingerprinting path
//! ([`DisclosureEngine::check_paragraph`]) versus the incremental edit path
//! ([`DisclosureEngine::apply_paragraph_edit`]), at paragraph sizes of
//! 256 / 1 k / 4 k / 16 k characters — with the full path measured twice,
//! once pinned to the scalar fingerprint kernel and once on the
//! runtime-detected SIMD kernel, plus a corpus bulk-ingest series
//! ([`DisclosureEngine::observe_paragraphs`]) under the same split.
//!
//! The binary installs a counting global allocator (the bench crate is the
//! one workspace member without `#![forbid(unsafe_code)]`), so
//! "allocations per check" is an exact count, not an estimate. The full
//! path re-normalises, re-hashes and re-winnows the whole paragraph per
//! keystroke; the incremental path splices the edit into engine-held
//! session state and re-processes only the `w + n - 1` dirty window, so
//! its cost is independent of paragraph length.
//!
//! Regression gates (CI):
//! - incremental ≥ 5x faster than the (SIMD) full path at 4 k chars;
//! - SIMD full path ≥ `BF_SIMD_FLOOR`x (default 2) faster than the
//!   scalar full path at 4 k and 16 k chars — skipped with a loud
//!   warning when the host has no SIMD kernel;
//! - the kernel the engine reports must match what each pass requested.
//!
//! Run with `--release`.

use browserflow::{DisclosureEngine, DocKey, EngineConfig, TextEdit};
use browserflow_bench::print_header;
use browserflow_corpus::TextGen;
use browserflow_fingerprint::{detected_kernel, force_scalar, KernelKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Paragraph lengths swept (characters).
const SIZES: [usize; 4] = [256, 1024, 4096, 16384];
/// Keystrokes measured per paragraph size.
const KEYSTROKES: usize = 160;
/// Library paragraphs indexed before measuring, so every check resolves
/// candidates against a populated store.
const LIBRARY_PARAGRAPHS: usize = 200;
/// Measurement passes per path; the fastest is reported.
const PASSES: usize = 3;
/// Corpus paragraphs ingested per bulk pass.
const BULK_PARAGRAPHS: usize = 600;
/// Sentences per bulk corpus paragraph (~500 chars each).
const BULK_SENTENCES: usize = 6;

/// Allocation ceiling per observed paragraph for both observe paths
/// (batched and single-call). The steady-state cost is the fingerprint's
/// output buffers plus the store's record inserts; a fresh
/// `FingerprintScratch` per call would blow well past this.
const OBSERVE_ALLOC_CEILING: u64 = 20;

/// Delegates to [`System`] and counts `alloc`/`realloc` calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards to `System` with the caller's layout
// untouched; the counter is a relaxed atomic add and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One measured series: mean latency and exact allocations per check.
#[derive(Debug, Clone, Copy)]
struct PathCost {
    us_per_check: f64,
    allocs_per_check: u64,
}

/// One row of the keystroke sweep.
struct SizeResult {
    paragraph_chars: usize,
    /// Full path pinned to the scalar kernel.
    full_scalar: PathCost,
    /// Full path on the native (runtime-detected) kernel.
    full: PathCost,
    incremental: PathCost,
}

impl SizeResult {
    fn speedup(&self) -> f64 {
        self.full.us_per_check / self.incremental.us_per_check
    }

    fn simd_speedup(&self) -> f64 {
        self.full_scalar.us_per_check / self.full.us_per_check
    }
}

/// The corpus bulk-ingest series (scalar vs native kernel).
struct BulkResult {
    paragraphs: usize,
    total_chars: usize,
    scalar_us_per_paragraph: f64,
    native_us_per_paragraph: f64,
    /// Exact allocations per paragraph of the batched observe path
    /// (`DisclosureEngine::observe_paragraphs`), native kernel.
    batched_allocs_per_paragraph: u64,
    /// Exact allocations per paragraph of the per-call observe path
    /// (`DisclosureEngine::observe_paragraph`), native kernel.
    single_allocs_per_paragraph: u64,
}

impl BulkResult {
    fn simd_speedup(&self) -> f64 {
        self.scalar_us_per_paragraph / self.native_us_per_paragraph
    }

    fn native_paragraphs_per_sec(&self) -> f64 {
        1e6 / self.native_us_per_paragraph
    }
}

/// Pins the fingerprint kernel and asserts the engine reports exactly the
/// kernel that was requested (the bench is CI's check that dispatch and
/// stats agree).
fn pin_kernel(engine: &DisclosureEngine, scalar: bool) {
    force_scalar(scalar);
    let requested = if scalar || scalar_env_forced() {
        KernelKind::Scalar
    } else {
        detected_kernel()
    };
    let reported = engine.fingerprint_kernel();
    assert_eq!(
        reported, requested,
        "engine reports kernel {reported} but the bench requested {requested}"
    );
}

/// Whether `BF_FORCE_SCALAR` pinned the whole process to scalar.
fn scalar_env_forced() -> bool {
    std::env::var("BF_FORCE_SCALAR").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Deterministic text of exactly `len` characters.
fn base_text(len: usize, gen: &mut TextGen) -> String {
    let mut text = String::new();
    while text.chars().count() < len {
        text.push_str(&gen.sentence());
        text.push(' ');
    }
    text.chars().take(len).collect()
}

/// An engine whose paragraph store holds the library corpus.
fn library_engine() -> DisclosureEngine {
    let engine = DisclosureEngine::new(EngineConfig::default());
    let mut gen = TextGen::new(41);
    let library = DocKey::new("library", "corpus");
    for index in 0..LIBRARY_PARAGRAPHS {
        engine.observe_paragraph(&library, index, &gen.paragraph(6), None);
    }
    engine
}

/// The keystrokes appended during measurement (deterministic, mostly
/// letters so the normaliser keeps them).
fn tail_chars() -> Vec<char> {
    "the quick brown fox jumps over the lazy dog and keeps typing more prose "
        .chars()
        .cycle()
        .take(KEYSTROKES)
        .collect()
}

/// Types `tail` onto `base` re-checking the whole paragraph per keystroke.
fn full_pass(engine: &DisclosureEngine, doc: &DocKey, base: &str, tail: &[char]) -> PathCost {
    let mut text = String::with_capacity(base.len() + tail.len() * 4);
    text.push_str(base);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for &ch in tail {
        text.push(ch);
        std::hint::black_box(engine.check_paragraph(doc, 0, &text));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    PathCost {
        us_per_check: elapsed * 1e6 / tail.len() as f64,
        allocs_per_check: allocs / tail.len() as u64,
    }
}

/// Types `tail` onto `base` through the keystroke session, one splice per
/// keystroke. The edits are built outside the timed region — in the
/// plug-in they arrive ready-made from the editor's mutation events.
fn incremental_pass(
    engine: &DisclosureEngine,
    doc: &DocKey,
    base: &str,
    tail: &[char],
) -> PathCost {
    engine.reset_keystroke_session(doc, 0);
    engine
        .apply_paragraph_edit(doc, 0, &TextEdit::insert(0, base))
        .expect("fresh session accepts the seed edit");
    let mut at = base.len();
    let edits: Vec<TextEdit> = tail
        .iter()
        .map(|&ch| {
            let edit = TextEdit::insert(at, ch.to_string());
            at += ch.len_utf8();
            edit
        })
        .collect();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for edit in &edits {
        std::hint::black_box(
            engine
                .apply_paragraph_edit(doc, 0, edit)
                .expect("sequential edits stay in sync"),
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    PathCost {
        us_per_check: elapsed * 1e6 / edits.len() as f64,
        allocs_per_check: allocs / edits.len() as u64,
    }
}

fn best(costs: impl IntoIterator<Item = PathCost>) -> PathCost {
    costs
        .into_iter()
        .min_by(|a, b| a.us_per_check.total_cmp(&b.us_per_check))
        .expect("at least one pass")
}

fn measure(size: usize) -> SizeResult {
    let engine = library_engine();
    let mut gen = TextGen::new(size as u64 + 1);
    let base = base_text(size, &mut gen);
    let tail = tail_chars();

    let full_doc = DocKey::new("gdocs", format!("full-{size}"));
    pin_kernel(&engine, true);
    full_pass(&engine, &full_doc, &base, &tail); // warm-up
    let full_scalar = best((0..PASSES).map(|_| full_pass(&engine, &full_doc, &base, &tail)));

    pin_kernel(&engine, false);
    full_pass(&engine, &full_doc, &base, &tail); // warm-up
    let full = best((0..PASSES).map(|_| full_pass(&engine, &full_doc, &base, &tail)));

    let inc_doc = DocKey::new("gdocs", format!("incremental-{size}"));
    incremental_pass(&engine, &inc_doc, &base, &tail); // warm-up
    let incremental = best((0..PASSES).map(|_| incremental_pass(&engine, &inc_doc, &base, &tail)));

    SizeResult {
        paragraph_chars: size,
        full_scalar,
        full,
        incremental,
    }
}

/// One timed bulk ingest of `texts` into a fresh engine; also returns
/// the exact allocations per paragraph.
fn bulk_pass(texts: &[String]) -> (f64, u64) {
    let engine = DisclosureEngine::new(EngineConfig::default());
    let doc = DocKey::new("wiki", "bulk-ingest");
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let ids = engine.observe_paragraphs(
        &doc,
        texts.iter().enumerate().map(|(i, t)| (i, t.as_str())),
        None,
    );
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(ids.len(), texts.len());
    (
        elapsed * 1e6 / texts.len() as f64,
        allocs / texts.len() as u64,
    )
}

/// One ingest of `texts` through the per-call observe path; returns the
/// exact allocations per paragraph. Guards the observe paths' use of the
/// shared fingerprint scratch: a fresh scratch per call would show up
/// here as a step change in the count.
fn single_observe_allocs(texts: &[String]) -> u64 {
    let engine = DisclosureEngine::new(EngineConfig::default());
    let doc = DocKey::new("wiki", "single-ingest");
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    for (index, text) in texts.iter().enumerate() {
        engine.observe_paragraph(&doc, index, text, None);
    }
    (ALLOCATIONS.load(Ordering::Relaxed) - allocs_before) / texts.len() as u64
}

fn measure_bulk() -> BulkResult {
    let mut gen = TextGen::new(97);
    let texts: Vec<String> = (0..BULK_PARAGRAPHS)
        .map(|_| gen.paragraph(BULK_SENTENCES))
        .collect();
    let total_chars = texts.iter().map(|t| t.chars().count()).sum();

    let engine = DisclosureEngine::new(EngineConfig::default());
    pin_kernel(&engine, true);
    bulk_pass(&texts); // warm-up
    let scalar = (0..PASSES)
        .map(|_| bulk_pass(&texts).0)
        .fold(f64::INFINITY, f64::min);

    pin_kernel(&engine, false);
    bulk_pass(&texts); // warm-up
    let mut native = f64::INFINITY;
    let mut batched_allocs = u64::MAX;
    for _ in 0..PASSES {
        let (us, allocs) = bulk_pass(&texts);
        native = native.min(us);
        batched_allocs = batched_allocs.min(allocs);
    }
    single_observe_allocs(&texts); // warm-up
    let single_allocs = (0..PASSES)
        .map(|_| single_observe_allocs(&texts))
        .min()
        .expect("at least one pass");

    BulkResult {
        paragraphs: BULK_PARAGRAPHS,
        total_chars,
        scalar_us_per_paragraph: scalar,
        native_us_per_paragraph: native,
        batched_allocs_per_paragraph: batched_allocs,
        single_allocs_per_paragraph: single_allocs,
    }
}

fn write_report(results: &[SizeResult], bulk: &BulkResult, kernel: KernelKind) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"paragraph_chars\": {}, \"full_us_per_check\": {:.3}, \
                 \"full_scalar_us_per_check\": {:.3}, \"simd_speedup\": {:.2}, \
                 \"incremental_us_per_check\": {:.3}, \"speedup\": {:.2}, \
                 \"full_allocs_per_check\": {}, \"incremental_allocs_per_check\": {}}}",
                r.paragraph_chars,
                r.full.us_per_check,
                r.full_scalar.us_per_check,
                r.simd_speedup(),
                r.incremental.us_per_check,
                r.speedup(),
                r.full.allocs_per_check,
                r.incremental.allocs_per_check
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fingerprint\",\n  \"kernel\": \"{}\",\n  \
         \"keystrokes_per_size\": {KEYSTROKES},\n  \
         \"library_paragraphs\": {LIBRARY_PARAGRAPHS},\n  \
         \"note\": \"per-keystroke disclosure check; 'full' re-fingerprints the whole \
         paragraph (DisclosureEngine::check_paragraph) on the runtime-detected kernel, \
         'full_scalar' is the same path pinned to the scalar kernel (BF_FORCE_SCALAR), \
         'incremental' splices one edit into the keystroke session and re-winnows only \
         the dirty window (DisclosureEngine::apply_paragraph_edit); allocations counted \
         by a global counting allocator, so they are exact\",\n  \
         \"sizes\": [\n{}\n  ],\n  \
         \"bulk_ingest\": {{\"paragraphs\": {}, \"total_chars\": {}, \
         \"scalar_us_per_paragraph\": {:.3}, \"native_us_per_paragraph\": {:.3}, \
         \"simd_speedup\": {:.2}, \"native_paragraphs_per_sec\": {:.0}, \
         \"batched_allocs_per_paragraph\": {}, \"single_allocs_per_paragraph\": {}}}\n}}\n",
        kernel.name(),
        rows.join(",\n"),
        bulk.paragraphs,
        bulk.total_chars,
        bulk.scalar_us_per_paragraph,
        bulk.native_us_per_paragraph,
        bulk.simd_speedup(),
        bulk.native_paragraphs_per_sec(),
        bulk.batched_allocs_per_paragraph,
        bulk.single_allocs_per_paragraph,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fingerprint.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn simd_floor() -> f64 {
    std::env::var("BF_SIMD_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

fn main() {
    let native_kernel = if scalar_env_forced() {
        KernelKind::Scalar
    } else {
        detected_kernel()
    };
    print_header(
        "Keystroke fingerprinting: scalar vs SIMD full path vs incremental edit path",
        &format!(
            "{KEYSTROKES} keystrokes per size; best of {PASSES} passes; \
             {LIBRARY_PARAGRAPHS} library paragraphs indexed; native kernel: {native_kernel}"
        ),
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>14} {:>9} {:>11} {:>11}",
        "chars",
        "scalar µs/key",
        "simd µs/key",
        "simd ×",
        "incr µs/key",
        "incr ×",
        "full allocs",
        "incr allocs"
    );
    let results: Vec<SizeResult> = SIZES.into_iter().map(measure).collect();
    for r in &results {
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>8.1}x {:>14.3} {:>8.1}x {:>11} {:>11}",
            r.paragraph_chars,
            r.full_scalar.us_per_check,
            r.full.us_per_check,
            r.simd_speedup(),
            r.incremental.us_per_check,
            r.speedup(),
            r.full.allocs_per_check,
            r.incremental.allocs_per_check
        );
    }
    println!();
    let bulk = measure_bulk();
    println!(
        "bulk ingest: {} corpus paragraphs ({} chars): scalar {:.1} µs/para, \
         native {:.1} µs/para ({:.1}x, {:.0} paragraphs/s)",
        bulk.paragraphs,
        bulk.total_chars,
        bulk.scalar_us_per_paragraph,
        bulk.native_us_per_paragraph,
        bulk.simd_speedup(),
        bulk.native_paragraphs_per_sec()
    );
    println!(
        "observe allocations: {} per paragraph batched (observe_paragraphs), \
         {} per paragraph single-call (observe_paragraph) — both ride the shared \
         fingerprint scratch",
        bulk.batched_allocs_per_paragraph, bulk.single_allocs_per_paragraph
    );
    println!(
        "(the incremental path re-hashes only the w + n - 1 dirty window, so its \
         latency is flat in paragraph length while the full path grows linearly)"
    );
    write_report(&results, &bulk, native_kernel);

    // The observe paths reuse the thread-local fingerprint scratch; a
    // regression to a fresh scratch per call adds a step change (several
    // buffer allocations per paragraph) that this ceiling catches.
    assert!(
        bulk.single_allocs_per_paragraph <= OBSERVE_ALLOC_CEILING
            && bulk.batched_allocs_per_paragraph <= OBSERVE_ALLOC_CEILING,
        "observe paths must stay on the shared fingerprint scratch: expected <= {} \
         allocations per paragraph, measured {} batched / {} single-call",
        OBSERVE_ALLOC_CEILING,
        bulk.batched_allocs_per_paragraph,
        bulk.single_allocs_per_paragraph
    );

    let at_4k = results
        .iter()
        .find(|r| r.paragraph_chars == 4096)
        .expect("4096 is in the sweep");
    assert!(
        at_4k.speedup() >= 5.0,
        "incremental keystroke checks must be >= 5x faster than full \
         re-fingerprinting at 4 k chars, got {:.1}x",
        at_4k.speedup()
    );
    println!(
        "regression gate: incremental is {:.1}x faster at 4096 chars (floor: 5x) — ok",
        at_4k.speedup()
    );

    if !native_kernel.is_simd() {
        eprintln!(
            "WARNING: no SIMD kernel available on this host (native kernel: \
             {native_kernel}) — the BF_SIMD_FLOOR >= {:.1}x gate at 4k/16k chars was \
             SKIPPED, not passed",
            simd_floor()
        );
        return;
    }
    let floor = simd_floor();
    for &chars in &[4096usize, 16384] {
        let row = results
            .iter()
            .find(|r| r.paragraph_chars == chars)
            .expect("gated size is in the sweep");
        assert!(
            row.simd_speedup() >= floor,
            "SIMD full path must be >= {floor:.1}x faster than scalar at {chars} chars \
             (BF_SIMD_FLOOR), got {:.2}x",
            row.simd_speedup()
        );
        println!(
            "regression gate: SIMD full path is {:.1}x faster than scalar at {chars} \
             chars (floor: {floor:.1}x) — ok",
            row.simd_speedup()
        );
    }
}
