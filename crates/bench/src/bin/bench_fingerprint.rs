//! Regenerates **BENCH_fingerprint.json**: per-keystroke disclosure-check
//! latency and heap-allocation counts for the full re-fingerprinting path
//! ([`DisclosureEngine::check_paragraph`]) versus the incremental edit path
//! ([`DisclosureEngine::apply_paragraph_edit`]), at paragraph sizes of
//! 256 / 1 k / 4 k / 16 k characters.
//!
//! The binary installs a counting global allocator (the bench crate is the
//! one workspace member without `#![forbid(unsafe_code)]`), so
//! "allocations per check" is an exact count, not an estimate. The full
//! path re-normalises, re-hashes and re-winnows the whole paragraph per
//! keystroke; the incremental path splices the edit into engine-held
//! session state and re-processes only the `w + n - 1` dirty window, so
//! its cost is independent of paragraph length. The run asserts the
//! incremental path is at least 5x faster at 4 k characters, making it a
//! CI regression gate. Run with `--release`.

use browserflow::{DisclosureEngine, DocKey, EngineConfig, TextEdit};
use browserflow_bench::print_header;
use browserflow_corpus::TextGen;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Paragraph lengths swept (characters).
const SIZES: [usize; 4] = [256, 1024, 4096, 16384];
/// Keystrokes measured per paragraph size.
const KEYSTROKES: usize = 160;
/// Library paragraphs indexed before measuring, so every check resolves
/// candidates against a populated store.
const LIBRARY_PARAGRAPHS: usize = 200;
/// Measurement passes per path; the fastest is reported.
const PASSES: usize = 3;

/// Delegates to [`System`] and counts `alloc`/`realloc` calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards to `System` with the caller's layout
// untouched; the counter is a relaxed atomic add and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One measured series: mean latency and exact allocations per check.
#[derive(Debug, Clone, Copy)]
struct PathCost {
    us_per_check: f64,
    allocs_per_check: u64,
}

/// One row of the sweep.
struct SizeResult {
    paragraph_chars: usize,
    full: PathCost,
    incremental: PathCost,
}

impl SizeResult {
    fn speedup(&self) -> f64 {
        self.full.us_per_check / self.incremental.us_per_check
    }
}

/// Deterministic text of exactly `len` characters.
fn base_text(len: usize, gen: &mut TextGen) -> String {
    let mut text = String::new();
    while text.chars().count() < len {
        text.push_str(&gen.sentence());
        text.push(' ');
    }
    text.chars().take(len).collect()
}

/// An engine whose paragraph store holds the library corpus.
fn library_engine() -> DisclosureEngine {
    let engine = DisclosureEngine::new(EngineConfig::default());
    let mut gen = TextGen::new(41);
    let library = DocKey::new("library", "corpus");
    for index in 0..LIBRARY_PARAGRAPHS {
        engine.observe_paragraph(&library, index, &gen.paragraph(6), None);
    }
    engine
}

/// The keystrokes appended during measurement (deterministic, mostly
/// letters so the normaliser keeps them).
fn tail_chars() -> Vec<char> {
    "the quick brown fox jumps over the lazy dog and keeps typing more prose "
        .chars()
        .cycle()
        .take(KEYSTROKES)
        .collect()
}

/// Types `tail` onto `base` re-checking the whole paragraph per keystroke.
fn full_pass(engine: &DisclosureEngine, doc: &DocKey, base: &str, tail: &[char]) -> PathCost {
    let mut text = String::with_capacity(base.len() + tail.len() * 4);
    text.push_str(base);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for &ch in tail {
        text.push(ch);
        std::hint::black_box(engine.check_paragraph(doc, 0, &text));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    PathCost {
        us_per_check: elapsed * 1e6 / tail.len() as f64,
        allocs_per_check: allocs / tail.len() as u64,
    }
}

/// Types `tail` onto `base` through the keystroke session, one splice per
/// keystroke. The edits are built outside the timed region — in the
/// plug-in they arrive ready-made from the editor's mutation events.
fn incremental_pass(
    engine: &DisclosureEngine,
    doc: &DocKey,
    base: &str,
    tail: &[char],
) -> PathCost {
    engine.reset_keystroke_session(doc, 0);
    engine
        .apply_paragraph_edit(doc, 0, &TextEdit::insert(0, base))
        .expect("fresh session accepts the seed edit");
    let mut at = base.len();
    let edits: Vec<TextEdit> = tail
        .iter()
        .map(|&ch| {
            let edit = TextEdit::insert(at, ch.to_string());
            at += ch.len_utf8();
            edit
        })
        .collect();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for edit in &edits {
        std::hint::black_box(
            engine
                .apply_paragraph_edit(doc, 0, edit)
                .expect("sequential edits stay in sync"),
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    PathCost {
        us_per_check: elapsed * 1e6 / edits.len() as f64,
        allocs_per_check: allocs / edits.len() as u64,
    }
}

fn best(costs: impl IntoIterator<Item = PathCost>) -> PathCost {
    costs
        .into_iter()
        .min_by(|a, b| a.us_per_check.total_cmp(&b.us_per_check))
        .expect("at least one pass")
}

fn measure(size: usize) -> SizeResult {
    let engine = library_engine();
    let mut gen = TextGen::new(size as u64 + 1);
    let base = base_text(size, &mut gen);
    let tail = tail_chars();

    let full_doc = DocKey::new("gdocs", format!("full-{size}"));
    full_pass(&engine, &full_doc, &base, &tail); // warm-up
    let full = best((0..PASSES).map(|_| full_pass(&engine, &full_doc, &base, &tail)));

    let inc_doc = DocKey::new("gdocs", format!("incremental-{size}"));
    incremental_pass(&engine, &inc_doc, &base, &tail); // warm-up
    let incremental = best((0..PASSES).map(|_| incremental_pass(&engine, &inc_doc, &base, &tail)));

    SizeResult {
        paragraph_chars: size,
        full,
        incremental,
    }
}

fn write_report(results: &[SizeResult]) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"paragraph_chars\": {}, \"full_us_per_check\": {:.3}, \
                 \"incremental_us_per_check\": {:.3}, \"speedup\": {:.2}, \
                 \"full_allocs_per_check\": {}, \"incremental_allocs_per_check\": {}}}",
                r.paragraph_chars,
                r.full.us_per_check,
                r.incremental.us_per_check,
                r.speedup(),
                r.full.allocs_per_check,
                r.incremental.allocs_per_check
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fingerprint\",\n  \"keystrokes_per_size\": {KEYSTROKES},\n  \
         \"library_paragraphs\": {LIBRARY_PARAGRAPHS},\n  \
         \"note\": \"per-keystroke disclosure check; 'full' re-fingerprints the whole \
         paragraph (DisclosureEngine::check_paragraph), 'incremental' splices one edit \
         into the keystroke session and re-winnows only the dirty window \
         (DisclosureEngine::apply_paragraph_edit); allocations counted by a global \
         counting allocator, so they are exact\",\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fingerprint.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    print_header(
        "Keystroke fingerprinting: full re-fingerprint vs incremental edit path",
        &format!(
            "{KEYSTROKES} keystrokes per size; best of {PASSES} passes; \
             {LIBRARY_PARAGRAPHS} library paragraphs indexed"
        ),
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "chars", "full µs/key", "incr µs/key", "speedup", "full allocs", "incr allocs"
    );
    let results: Vec<SizeResult> = SIZES.into_iter().map(measure).collect();
    for r in &results {
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>8.1}x {:>12} {:>12}",
            r.paragraph_chars,
            r.full.us_per_check,
            r.incremental.us_per_check,
            r.speedup(),
            r.full.allocs_per_check,
            r.incremental.allocs_per_check
        );
    }
    println!();
    println!(
        "(the incremental path re-hashes only the w + n - 1 dirty window, so its \
         latency is flat in paragraph length while the full path grows linearly)"
    );
    write_report(&results);

    let at_4k = results
        .iter()
        .find(|r| r.paragraph_chars == 4096)
        .expect("4096 is in the sweep");
    assert!(
        at_4k.speedup() >= 5.0,
        "incremental keystroke checks must be >= 5x faster than full \
         re-fingerprinting at 4 k chars, got {:.1}x",
        at_4k.speedup()
    );
    println!(
        "regression gate: incremental is {:.1}x faster at 4096 chars (floor: 5x) — ok",
        at_4k.speedup()
    );
}
