//! Bulk-ingest microbench for the shard-batched observe pipeline.
//!
//! Sweeps the store sizes in [`algorithm1::STORE_SIZES`], ingesting the
//! same synthetic corpus two ways per size: the per-paragraph
//! `FingerprintStore::observe` loop and a single
//! `FingerprintStore::observe_batch` call. Reports wall time for both
//! plus the stripe lock round-trips each shape pays, asserts the CI
//! lock-reduction floor at the middle (15k) size, and writes
//! `BENCH_ingest.json` at the repo root.
//!
//! The gated metric is the *lock round-trip reduction*, which is
//! deterministic: the per-paragraph loop takes one `DBhash` stripe lock
//! per hash and one `DBpar` stripe lock per paragraph, while the batched
//! pass takes each touched stripe lock once per batch. Wall time is
//! reported alongside but not gated — on a single core both shapes are
//! bound by the same per-hash map work, so the wall-clock win only
//! materialises with cores for the stripes (and the pool-parallel
//! fingerprint fan-out above this layer) to spread over.
//!
//! The floor defaults to 3.0x and can be overridden with
//! `BF_INGEST_FLOOR`.

use browserflow_bench::{algorithm1, host_cores, ingest, print_header};

fn write_report(results: &[ingest::SizeResult]) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"paragraphs\": {}, \"hashes_recorded\": {}, \
                 \"per_paragraph_ms\": {:.3}, \"batched_ms\": {:.3}, \
                 \"wall_speedup\": {:.2}, \"per_paragraph_locks\": {}, \
                 \"batched_locks\": {}, \"lock_reduction\": {:.1}}}",
                r.paragraphs,
                r.hashes_recorded,
                r.per_paragraph_ms,
                r.batched_ms,
                r.wall_speedup(),
                r.per_paragraph_locks,
                r.batched_locks,
                r.lock_reduction()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \
         \"note\": \"per-paragraph observe loop vs one observe_batch call over the \
         Algorithm 1 corpus; 'per_paragraph_locks' is one DBhash stripe round-trip \
         per hash plus one DBpar round-trip per paragraph, 'batched_locks' is the \
         store's batch_lock_acquisitions counter (one round-trip per touched stripe \
         per batch); batched ingest is asserted observation-equivalent to the \
         sequential loop before timing; lock_reduction is the CI-gated metric, wall \
         times are informational (single-core hosts see parity)\",\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let floor: f64 = std::env::var("BF_INGEST_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    print_header(
        "Batched ingest: per-paragraph observe loop vs one observe_batch call",
        &format!(
            "stripe lock round-trips and wall time per ingest shape; host_cores = {}",
            host_cores()
        ),
    );
    println!(
        "{:>12} {:>10} {:>12} {:>9} {:>14} {:>13} {:>10}",
        "paragraphs", "seq_ms", "batched_ms", "speedup", "seq_locks", "batch_locks", "reduction"
    );

    let results = ingest::run(algorithm1::STORE_SIZES);
    for r in &results {
        println!(
            "{:>12} {:>10.1} {:>12.1} {:>8.2}x {:>14} {:>13} {:>9.0}x",
            r.paragraphs,
            r.per_paragraph_ms,
            r.batched_ms,
            r.wall_speedup(),
            r.per_paragraph_locks,
            r.batched_locks,
            r.lock_reduction()
        );
    }

    write_report(&results);

    let gated = results
        .iter()
        .find(|r| r.paragraphs == 15_000)
        .or_else(|| results.last())
        .expect("STORE_SIZES is non-empty");
    let reduction = gated.lock_reduction();
    println!(
        "\n{} paragraphs: batched ingest takes {reduction:.0}x fewer stripe lock \
         round-trips than the per-paragraph loop (floor {floor:.1}x)",
        gated.paragraphs
    );
    assert!(
        reduction >= floor,
        "batched ingest must take >= {floor:.1}x fewer stripe lock round-trips than \
         the per-paragraph observe loop at {} paragraphs; measured {reduction:.2}x",
        gated.paragraphs
    );
}
