//! Regenerates **BENCH_sentinel.json**: exfiltration-sentinel detection
//! quality over a corpus of covert-flow scenarios.
//!
//! Each scenario drives a fresh [`BrowserFlow`] through a scripted
//! cross-service flow — copy/paste chains, paraphrase-then-leak,
//! slow multi-paragraph exfiltration — and records whether the sentinel
//! raised at least one multi-hop alert. Positive scenarios stage a real
//! covert chain that ends in a violating upload; negative scenarios are
//! benign cross-service activity (or single-hop violations, which the
//! ordinary warning path already covers) where an alert would be noise.
//!
//! The binary asserts:
//!   * recall    >= BF_SENTINEL_RECALL_FLOOR    (default 0.9)
//!   * precision >= BF_SENTINEL_PRECISION_FLOOR (default 0.8)
//!
//! and exits non-zero when either floor is missed, so CI can gate on it.

use browserflow::{BrowserFlow, CheckRequest, EnforcementMode, EngineConfig, UploadAction};
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet};

/// A confidential paragraph long enough to fingerprint robustly at the
/// corpus n-gram length.
const SECRET: &str = "the confidential interview rubric awards extra points for \
                      candidates who ask incisive clarifying questions early and \
                      penalises rehearsed answers that dodge the scenario";

/// Extra confidential paragraphs for the slow-exfiltration scenario.
const SECRET_PARTS: [&str; 3] = [
    "compensation band seven tops out at a base well above the published \
     range once the retention multiplier is applied to tenured staff",
    "the acquisition shortlist currently names three infrastructure \
     startups and the diligence packet is stored in the deals folder",
    "next quarter's reorganisation folds the platform group into core \
     engineering and retires two director positions entirely",
];

fn tag(name: &str) -> Tag {
    Tag::new(name).unwrap()
}

/// Five services: two tagged origins, one privileged relay, two public
/// sinks — enough surface for multi-hop chains in both directions.
fn corpus_flow() -> BrowserFlow {
    BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(4)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([tag("ti")]))
                .with_confidentiality(TagSet::from_iter([tag("ti")])),
        )
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tag("tw")]))
                .with_confidentiality(TagSet::from_iter([tag("tw")])),
        )
        .service(
            Service::new("hr", "HR Portal")
                .with_privilege(TagSet::from_iter([tag("ti"), tag("tw")])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .service(Service::new("mail", "Webmail"))
        .build()
        .unwrap()
}

struct Scenario {
    name: &'static str,
    /// Whether the scenario stages a covert chain the sentinel should
    /// flag.
    covert: bool,
    run: fn(&BrowserFlow),
}

fn observe(flow: &BrowserFlow, service: &str, document: &str, index: usize, text: &str) {
    flow.observe_paragraph(&service.into(), document, index, text)
        .unwrap();
}

fn check(flow: &BrowserFlow, service: &str, document: &str, text: &str) -> UploadAction {
    flow.check_one(&CheckRequest::paragraph(service, document, 0, text))
        .unwrap()
        .action
}

/// itool secret lands in a wiki memo (with the author's framing), the
/// memo is pasted into a public doc: the classic two-hop relay.
fn copy_paste_chain(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let memo = format!("{SECRET} — copied into the hiring wiki for the debrief");
    observe(flow, "wiki", "memo", 0, &memo);
    assert_eq!(check(flow, "gdocs", "draft", &memo), UploadAction::Block);
}

/// itool → gdocs → wiki → mail: each intermediary adds its own framing,
/// so the chain is three hops deep by the time it leaves.
fn three_hop_relay(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let draft = format!("{SECRET} — drafting notes for the hiring committee");
    observe(flow, "gdocs", "draft", 0, &draft);
    let page = format!("{draft} (archived on the interview-process wiki page)");
    observe(flow, "wiki", "page", 0, &page);
    assert_eq!(check(flow, "mail", "outbox", &page), UploadAction::Block);
}

/// The intermediary rewrites the fringes of the secret but keeps its
/// core clauses verbatim — fingerprint matching still links the hops.
fn paraphrase_then_leak(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let paraphrase = format!(
        "per our rubric, {SECRET}; I reworded the intro but kept the \
         substance for the write-up"
    );
    observe(flow, "wiki", "writeup", 0, &paraphrase);
    assert_eq!(
        check(flow, "gdocs", "shared", &paraphrase),
        UploadAction::Block
    );
}

/// Slow exfiltration: confidential paragraphs trickle one at a time into
/// a scratch doc over separate edits, then the scratch doc leaks.
fn slow_exfiltration(flow: &BrowserFlow) {
    for (index, part) in SECRET_PARTS.iter().enumerate() {
        observe(flow, "itool", "packet", index, part);
    }
    for (index, part) in SECRET_PARTS.iter().enumerate() {
        let staged = format!("{part} (pasted into my scratch notes, entry {index})");
        observe(flow, "wiki", "scratch", index, &staged);
    }
    let assembled = SECRET_PARTS
        .iter()
        .enumerate()
        .map(|(index, part)| format!("{part} (pasted into my scratch notes, entry {index})"))
        .collect::<Vec<_>>()
        .join(" ");
    assert_eq!(
        check(flow, "mail", "outbox", &assembled),
        UploadAction::Block
    );
}

/// Re-typing instead of pasting: case and whitespace differ, the words
/// do not — normalisation keeps the chain linked.
fn retype_chain(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let retyped = format!(
        "{} — retyped from memory for the page",
        SECRET.to_uppercase()
    );
    observe(flow, "wiki", "retyped", 0, &retyped);
    assert_eq!(check(flow, "gdocs", "notes", &retyped), UploadAction::Block);
}

/// Public prose relayed across non-confidential services: no tagged
/// origin anywhere in the chain, nothing to flag.
fn benign_collab(flow: &BrowserFlow) {
    let prose = "the quarterly all-hands is on thursday and lunch will be \
                 served in the main atrium as usual for everyone";
    observe(flow, "gdocs", "agenda", 0, prose);
    let relayed = format!("{prose} — mirrored on the HR events page");
    observe(flow, "hr", "events", 0, &relayed);
    assert_eq!(check(flow, "mail", "outbox", &relayed), UploadAction::Allow);
}

/// A direct single-hop paste is a violation, but not a covert chain —
/// the ordinary warning path covers it and an alert would be noise.
fn direct_paste(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    assert_eq!(check(flow, "gdocs", "draft", SECRET), UploadAction::Block);
}

/// A chain that ends at a destination privileged for the data: the
/// upload is allowed, so no alert should fire despite the hops.
fn privileged_relay(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let memo = format!("{SECRET} — forwarded to HR for the offer packet");
    observe(flow, "wiki", "memo", 0, &memo);
    assert_eq!(check(flow, "hr", "offer", &memo), UploadAction::Allow);
}

/// Discussing confidential material without reproducing it: the memo
/// shares no tracked text with the secret, so leaking it violates only
/// the wiki's own tag — a single-hop block, not a covert chain.
fn reference_only(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let memo = "see the interview tool for the scoring details; summarising \
                them here would defeat the point of access control";
    observe(flow, "wiki", "memo", 0, memo);
    assert_eq!(check(flow, "gdocs", "draft", memo), UploadAction::Block);
}

/// Confidential data staying inside its own service never crosses a
/// boundary, so there is no cross-service edge to chain on.
fn in_service_roundtrip(flow: &BrowserFlow) {
    observe(flow, "itool", "eval", 0, SECRET);
    let summary = format!("{SECRET} — condensed for the panel summary");
    observe(flow, "itool", "summary", 0, &summary);
    assert_eq!(check(flow, "itool", "final", &summary), UploadAction::Allow);
}

const SCENARIOS: [Scenario; 10] = [
    Scenario {
        name: "copy-paste-chain",
        covert: true,
        run: copy_paste_chain,
    },
    Scenario {
        name: "three-hop-relay",
        covert: true,
        run: three_hop_relay,
    },
    Scenario {
        name: "paraphrase-then-leak",
        covert: true,
        run: paraphrase_then_leak,
    },
    Scenario {
        name: "slow-exfiltration",
        covert: true,
        run: slow_exfiltration,
    },
    Scenario {
        name: "retype-chain",
        covert: true,
        run: retype_chain,
    },
    Scenario {
        name: "benign-collab",
        covert: false,
        run: benign_collab,
    },
    Scenario {
        name: "direct-paste",
        covert: false,
        run: direct_paste,
    },
    Scenario {
        name: "privileged-relay",
        covert: false,
        run: privileged_relay,
    },
    Scenario {
        name: "reference-only",
        covert: false,
        run: reference_only,
    },
    Scenario {
        name: "in-service-roundtrip",
        covert: false,
        run: in_service_roundtrip,
    },
];

struct Outcome {
    name: &'static str,
    covert: bool,
    alerts: usize,
    max_hops: usize,
}

fn env_floor(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let recall_floor = env_floor("BF_SENTINEL_RECALL_FLOOR", 0.9);
    let precision_floor = env_floor("BF_SENTINEL_PRECISION_FLOOR", 0.8);

    println!("Exfiltration-sentinel covert-flow corpus");
    println!(
        "floors: recall >= {recall_floor:.2}, precision >= {precision_floor:.2} \
         (BF_SENTINEL_RECALL_FLOOR / BF_SENTINEL_PRECISION_FLOOR)\n"
    );
    println!(
        "{:<22} {:>7} {:>7} {:>9} verdict",
        "scenario", "covert", "alerts", "max-hops"
    );

    let mut outcomes = Vec::new();
    for scenario in &SCENARIOS {
        let flow = corpus_flow();
        (scenario.run)(&flow);
        let alerts = flow.alerts();
        let outcome = Outcome {
            name: scenario.name,
            covert: scenario.covert,
            alerts: alerts.len(),
            max_hops: alerts.iter().map(|a| a.hops.len()).max().unwrap_or(0),
        };
        let detected = outcome.alerts > 0;
        let verdict = match (scenario.covert, detected) {
            (true, true) => "detected",
            (true, false) => "MISSED",
            (false, false) => "quiet",
            (false, true) => "FALSE ALARM",
        };
        println!(
            "{:<22} {:>7} {:>7} {:>9} {verdict}",
            outcome.name, outcome.covert, outcome.alerts, outcome.max_hops
        );
        outcomes.push(outcome);
    }

    let positives = outcomes.iter().filter(|o| o.covert).count();
    let true_alerts = outcomes.iter().filter(|o| o.covert && o.alerts > 0).count();
    let false_alerts = outcomes
        .iter()
        .filter(|o| !o.covert && o.alerts > 0)
        .count();
    let recall = true_alerts as f64 / positives.max(1) as f64;
    let precision = if true_alerts + false_alerts == 0 {
        1.0
    } else {
        true_alerts as f64 / (true_alerts + false_alerts) as f64
    };
    println!("\nrecall    = {recall:.3} ({true_alerts}/{positives} covert chains flagged)");
    println!(
        "precision = {precision:.3} ({true_alerts}/{} alert-raising scenarios are covert)",
        true_alerts + false_alerts
    );

    write_report(&outcomes, recall, precision);

    assert!(
        recall >= recall_floor,
        "sentinel recall {recall:.3} fell below the floor {recall_floor:.2}"
    );
    assert!(
        precision >= precision_floor,
        "sentinel precision {precision:.3} fell below the floor {precision_floor:.2}"
    );
    println!("sentinel corpus gate passed");
}

fn write_report(outcomes: &[Outcome], recall: f64, precision: f64) {
    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{\"scenario\": \"{}\", \"covert\": {}, \"alerts\": {}, \
                 \"max_hops\": {}}}",
                o.name, o.covert, o.alerts, o.max_hops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sentinel\",\n  \"recall\": {recall:.3},\n  \
         \"precision\": {precision:.3},\n  \
         \"note\": \"covert-flow scenario corpus; a scenario counts as detected when \
         the exfiltration sentinel raised at least one multi-hop alert; recall is over \
         covert scenarios, precision over alert-raising scenarios\",\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sentinel.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
