//! Regenerates **BENCH_service.json**: end-to-end load test of the `bfd`
//! multi-tenant disclosure daemon over its Unix socket.
//!
//! The harness boots an in-process daemon, registers a zipfian-skewed
//! tenant population, seeds each tenant with confidential paragraphs,
//! and then drives tens of thousands of logical editing sessions from a
//! pool of worker connections. Each session first lands its starting
//! document in one [`Request::ObserveBatch`] frame (the open-document
//! ingest, measured as the **ingest** series), then owns one paragraph
//! slot in one tenant and alternates the daemon's two hot request kinds:
//!
//! - **keystroke** — the coalescing per-slot check fired as the user
//!   types (the common case), and
//! - **document recheck** — a batched [`Request::Check`] over the
//!   session's document (the pre-upload sweep).
//!
//! Latency is measured client-side around the full framed round trip,
//! so queueing, admission and wire cost are all included; the warm-up
//! ingests complete behind a barrier before the load clock starts. The run
//! finishes with the *zero-silent-drop* ledger: every request sent must
//! come back as a decision, a coalescing supersession, or a structured
//! backpressure refusal — the daemon is never allowed to lose work
//! silently — and then drains the daemon gracefully, which must persist
//! and report every tenant.
//!
//! `BF_SCALE=small` (default) keeps the run laptop-friendly;
//! `BF_SCALE=paper` drives the full 10k-session population harder.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use browserflow_bench::{host_cores, print_header, warn_if_single_core, Scale};
use browserflow_daemon::{Daemon, DaemonClient, DaemonConfig, ParagraphSlot, Reply, Request};
use browserflow_tdm::{Policy, Service, Tag, TagSet};

/// Knobs per [`Scale`].
struct ServiceScale {
    tenants: usize,
    sessions: usize,
    workers: usize,
    requests: usize,
    secrets_per_tenant: usize,
    queue_capacity: u64,
    max_in_flight: u64,
}

impl ServiceScale {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self {
                tenants: 4,
                sessions: 10_000,
                workers: 8,
                requests: 20_000,
                secrets_per_tenant: 16,
                queue_capacity: 4,
                max_in_flight: 32,
            },
            Scale::Paper => Self {
                tenants: 16,
                sessions: 50_000,
                workers: 8,
                requests: 100_000,
                secrets_per_tenant: 32,
                queue_capacity: 8,
                max_in_flight: 64,
            },
        }
    }
}

/// One logical editing session: a tenant, a document, and the text the
/// simulated user has typed so far.
struct Session {
    tenant: usize,
    document: String,
    text: String,
    /// Leaky sessions paste one of their tenant's confidential
    /// paragraphs, so their checks exercise the violation path.
    leaky: bool,
    typed_words: usize,
}

/// Client-side reply ledger for the zero-silent-drop accounting.
#[derive(Default)]
struct Ledger {
    sent: u64,
    decisions: u64,
    superseded: u64,
    backpressure: u64,
    blocked: u64,
}

/// Deterministic PRNG (splitmix64) so runs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const WORDS: &[&str] = &[
    "quarterly",
    "revenue",
    "forecast",
    "customer",
    "meeting",
    "roadmap",
    "launch",
    "draft",
    "review",
    "feedback",
    "release",
    "metrics",
    "report",
    "summary",
    "update",
    "planning",
    "budget",
    "design",
    "interview",
    "candidate",
    "schedule",
    "notes",
    "analysis",
    "proposal",
];

fn tenant_id(index: usize) -> String {
    format!("tenant{index:02}")
}

fn secret_paragraph(tenant: usize, index: usize) -> String {
    format!(
        "confidential paragraph {index} of tenant {tenant}: the negotiated contract terms \
         include a volume discount schedule and an exclusivity clause that must not appear \
         in any shared document before the announcement clears legal review"
    )
}

fn boilerplate(rng: &mut Rng) -> String {
    let mut text = String::from("meeting notes:");
    for _ in 0..18 {
        text.push(' ');
        text.push_str(WORDS[rng.below(WORDS.len())]);
    }
    text
}

/// Zipf(1) tenant assignment: tenant `k` gets weight `1/(k+1)`.
fn zipf_tenant(rng: &mut Rng, tenants: usize) -> usize {
    let total: f64 = (0..tenants).map(|k| 1.0 / (k + 1) as f64).sum();
    let mut draw = (rng.next() as f64 / u64::MAX as f64) * total;
    for k in 0..tenants {
        draw -= 1.0 / (k + 1) as f64;
        if draw <= 0.0 {
            return k;
        }
    }
    tenants - 1
}

fn tenant_policy_json() -> String {
    let tag = Tag::new("tenant-confidential").expect("static tag");
    let mut policy = Policy::new();
    policy
        .register(
            Service::new("itool", "Internal Tool")
                .with_privilege(TagSet::from_iter([tag.clone()]))
                .with_confidentiality(TagSet::from_iter([tag])),
        )
        .expect("unique id");
    policy
        .register(Service::new("gdocs", "External Docs"))
        .expect("unique id");
    serde_json::to_string(&policy).expect("policy serialises")
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn expect_reply(reply: &Reply, ledger: &mut Ledger) {
    match reply {
        Reply::Decisions { decisions, .. } => {
            ledger.decisions += 1;
            if decisions.iter().any(|d| d.action != "allow") {
                ledger.blocked += 1;
            }
        }
        Reply::Superseded => ledger.superseded += 1,
        Reply::Backpressure { .. } => ledger.backpressure += 1,
        Reply::Error { message } => panic!("daemon error reply under load: {message}"),
        other => panic!("unexpected reply under load: {other:?}"),
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    warn_if_single_core();
    let scale = Scale::from_env();
    let knobs = ServiceScale::for_scale(scale);

    let socket = std::env::temp_dir().join(format!("bfd-bench-{}.sock", std::process::id()));
    let daemon = Daemon::bind(DaemonConfig::new(&socket)).expect("bind bench daemon");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // Wait for the accept loop, then register the tenant population.
    let mut admin = loop {
        if let Ok(mut client) = DaemonClient::connect(&socket) {
            if client.ping().is_ok() {
                break client;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let policy_json = tenant_policy_json();
    for t in 0..knobs.tenants {
        let reply = admin
            .request(&Request::TenantCreate {
                tenant: tenant_id(t),
                mode: "block".to_string(),
                policy_json: policy_json.clone(),
                max_in_flight: knobs.max_in_flight,
                queue_capacity: knobs.queue_capacity,
            })
            .expect("create tenant");
        assert!(
            matches!(reply, Reply::TenantCreated { .. }),
            "tenant create failed: {reply:?}"
        );
    }
    // Seed every tenant's store with confidential paragraphs.
    for t in 0..knobs.tenants {
        let tenant = tenant_id(t);
        for s in 0..knobs.secrets_per_tenant {
            admin
                .observe(&tenant, "itool", "secrets", s, &secret_paragraph(t, s))
                .expect("seed secret");
        }
    }

    // Build the session population with zipfian tenant skew.
    let mut rng = Rng(0x5E55_1045);
    let mut sessions: Vec<Session> = (0..knobs.sessions)
        .map(|i| {
            let tenant = zipf_tenant(&mut rng, knobs.tenants);
            let leaky = rng.below(10) == 0;
            let text = if leaky {
                secret_paragraph(tenant, rng.below(knobs.secrets_per_tenant))
            } else {
                boilerplate(&mut rng)
            };
            Session {
                tenant,
                document: format!("doc{i}"),
                text,
                leaky,
                typed_words: 0,
            }
        })
        .collect();
    let leaky_sessions = sessions.iter().filter(|s| s.leaky).count();

    print_header(
        "bfd service load: multi-tenant daemon under zipfian editing traffic",
        &format!(
            "scale = {scale:?}; {} tenants, {} sessions ({} leaky), {} workers, \
             {} requests; queue_capacity = {}, max_in_flight = {}; host_cores = {}",
            knobs.tenants,
            knobs.sessions,
            leaky_sessions,
            knobs.workers,
            knobs.requests,
            knobs.queue_capacity,
            knobs.max_in_flight,
            host_cores()
        ),
    );

    // Shard sessions across workers (disjoint slices: one in-flight
    // request per slot, so coalescing is driven by the daemon, not by
    // racing writers).
    let mut shards: Vec<Vec<Session>> = (0..knobs.workers).map(|_| Vec::new()).collect();
    for (i, session) in sessions.drain(..).enumerate() {
        shards[i % knobs.workers].push(session);
    }
    let per_worker = knobs.requests / knobs.workers;

    let ingest_latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let keystroke_latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let recheck_latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let total_sent = Arc::new(AtomicUsize::new(0));
    // Workers finish their warm-up ingests, then rendezvous here so the
    // load clock measures only the keystroke/recheck phase.
    let barrier = Arc::new(std::sync::Barrier::new(knobs.workers + 1));

    let mut handles = Vec::new();
    for (worker, mut shard) in shards.into_iter().enumerate() {
        let socket = socket.clone();
        let ingest_latencies = Arc::clone(&ingest_latencies);
        let keystroke_latencies = Arc::clone(&keystroke_latencies);
        let recheck_latencies = Arc::clone(&recheck_latencies);
        let total_sent = Arc::clone(&total_sent);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = DaemonClient::connect(&socket).expect("worker connect");
            // Open-document ingest: each session's starting text lands
            // through one ObserveBatch frame before any keystrokes fire.
            let mut ingest_us = Vec::with_capacity(shard.len());
            for session in &shard {
                let tenant = tenant_id(session.tenant);
                let paragraphs = vec![ParagraphSlot {
                    index: 0,
                    text: session.text.clone(),
                }];
                let begin = Instant::now();
                client
                    .observe_batch(&tenant, "gdocs", &session.document, paragraphs)
                    .expect("warm-up ingest round trip");
                ingest_us.push(begin.elapsed().as_micros() as u64);
            }
            ingest_latencies.lock().unwrap().extend(ingest_us);
            barrier.wait();
            let mut rng = Rng(0xC0FF_EE00 + worker as u64);
            let mut ledger = Ledger::default();
            let mut keystroke_us = Vec::with_capacity(per_worker);
            let mut recheck_us = Vec::with_capacity(per_worker / 4);
            for step in 0..per_worker {
                let slot = step % shard.len();
                let session = &mut shard[slot];
                let tenant = tenant_id(session.tenant);
                ledger.sent += 1;
                total_sent.fetch_add(1, Ordering::Relaxed);
                // 1-in-5 requests is a document recheck; the rest are
                // keystrokes extending the session's paragraph.
                if step % 5 == 4 {
                    let paragraphs = vec![ParagraphSlot {
                        index: 0,
                        text: session.text.clone(),
                    }];
                    let begin = Instant::now();
                    let reply = client
                        .check(&tenant, "gdocs", &session.document, paragraphs)
                        .expect("recheck round trip");
                    recheck_us.push(begin.elapsed().as_micros() as u64);
                    expect_reply(&reply, &mut ledger);
                } else {
                    session.typed_words += 1;
                    if session.typed_words > 30 {
                        session.typed_words = 0;
                        session.text.truncate(session.text.len().min(40));
                    }
                    session.text.push(' ');
                    session.text.push_str(WORDS[rng.below(WORDS.len())]);
                    let begin = Instant::now();
                    let reply = client
                        .keystroke(&tenant, "gdocs", &session.document, 0, &session.text)
                        .expect("keystroke round trip");
                    keystroke_us.push(begin.elapsed().as_micros() as u64);
                    expect_reply(&reply, &mut ledger);
                }
            }
            keystroke_latencies.lock().unwrap().extend(keystroke_us);
            recheck_latencies.lock().unwrap().extend(recheck_us);
            ledger
        }));
    }

    barrier.wait();
    let started = Instant::now();

    let mut ledger = Ledger::default();
    for handle in handles {
        let worker_ledger = handle.join().expect("worker thread");
        ledger.sent += worker_ledger.sent;
        ledger.decisions += worker_ledger.decisions;
        ledger.superseded += worker_ledger.superseded;
        ledger.backpressure += worker_ledger.backpressure;
        ledger.blocked += worker_ledger.blocked;
    }
    let wall_s = started.elapsed().as_secs_f64();

    // --- Zero-silent-drop ledger -------------------------------------
    let accounted = ledger.decisions + ledger.superseded + ledger.backpressure;
    assert_eq!(
        ledger.sent, accounted,
        "every request must come back as a decision, a supersession, or \
         structured backpressure — nothing may be dropped silently"
    );
    assert!(ledger.decisions > 0, "load produced no decisions");
    assert!(ledger.blocked > 0, "leaky sessions produced no blocks");

    // Server-side cross-check: rejected counters must agree with the
    // queue-full refusals the clients saw (quota refusals never reach
    // the decider, so `rejected` is a lower bound on backpressure).
    let mut server_completed = 0u64;
    let mut server_coalesced = 0u64;
    let mut server_rejected = 0u64;
    for t in 0..knobs.tenants {
        match admin
            .request(&Request::Stats {
                tenant: tenant_id(t),
            })
            .expect("stats")
        {
            Reply::Stats { pipeline, .. } => {
                server_completed += pipeline.completed;
                server_coalesced += pipeline.coalesced;
                server_rejected += pipeline.rejected;
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
    }
    assert!(
        server_rejected <= ledger.backpressure,
        "daemon counted more queue-full rejections ({server_rejected}) than \
         clients received backpressure replies ({})",
        ledger.backpressure
    );

    // --- Latency + throughput ----------------------------------------
    let mut ingest_us = Arc::try_unwrap(ingest_latencies)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    let mut keystroke_us = Arc::try_unwrap(keystroke_latencies)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    let mut recheck_us = Arc::try_unwrap(recheck_latencies)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    ingest_us.sort_unstable();
    keystroke_us.sort_unstable();
    recheck_us.sort_unstable();
    let replies_per_sec = ledger.sent as f64 / wall_s;
    let decisions_per_sec = ledger.decisions as f64 / wall_s;

    println!(
        "{:>12} {:>9} {:>9} {:>9} {:>9}",
        "kind", "count", "p50_us", "p99_us", "max_us"
    );
    for (kind, series) in [
        ("ingest", &ingest_us),
        ("keystroke", &keystroke_us),
        ("recheck", &recheck_us),
    ] {
        println!(
            "{:>12} {:>9} {:>9} {:>9} {:>9}",
            kind,
            series.len(),
            percentile(series, 50.0),
            percentile(series, 99.0),
            series.last().copied().unwrap_or(0)
        );
    }
    println!(
        "\nledger: sent {} = decisions {} + superseded {} + backpressure {} \
         (blocked {}, server rejected {})",
        ledger.sent,
        ledger.decisions,
        ledger.superseded,
        ledger.backpressure,
        ledger.blocked,
        server_rejected
    );
    println!(
        "saturation: {replies_per_sec:.0} replies/s ({decisions_per_sec:.0} decisions/s) \
         over {wall_s:.2}s"
    );

    // --- Graceful drain ----------------------------------------------
    let drained = admin.request(&Request::Drain).expect("drain");
    let Reply::Drained { reports } = drained else {
        panic!("expected Drained reply, got {drained:?}");
    };
    assert_eq!(
        reports.len(),
        knobs.tenants,
        "drain must report every tenant"
    );
    for report in &reports {
        assert!(
            report.error.is_empty(),
            "tenant {} failed to drain: {}",
            report.tenant,
            report.error
        );
    }
    daemon_thread.join().expect("daemon thread");
    std::fs::remove_file(&socket).ok();
    println!("drain: {} tenants reported, all clean", reports.len());

    // --- BENCH_service.json ------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"scale\": \"{scale:?}\",\n  \"host_cores\": {},\n  \
         \"tenants\": {},\n  \"sessions\": {},\n  \"workers\": {},\n  \
         \"queue_capacity\": {},\n  \"max_in_flight\": {},\n  \
         \"ledger\": {{\"sent\": {}, \"decisions\": {}, \"superseded\": {}, \
         \"backpressure\": {}, \"blocked\": {}, \"silent_drops\": 0}},\n  \
         \"server\": {{\"completed\": {server_completed}, \"coalesced\": {server_coalesced}, \
         \"rejected\": {server_rejected}}},\n  \
         \"latency_us\": {{\n    \"ingest\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \
         \"max\": {}}},\n    \"keystroke\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \
         \"max\": {}}},\n    \"recheck\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \
         \"max\": {}}}\n  }},\n  \
         \"saturation\": {{\"wall_s\": {wall_s:.3}, \"replies_per_sec\": {replies_per_sec:.1}, \
         \"decisions_per_sec\": {decisions_per_sec:.1}}},\n  \
         \"note\": \"latency is the full client-side framed round trip over a Unix socket, \
         including admission and queueing; ingest is the per-session open-document \
         ObserveBatch warm-up, completed behind a barrier before the load clock starts; \
         backpressure replies are structured refusals \
         (zero silent drops: sent == decisions + superseded + backpressure); sessions are \
         assigned to tenants zipf(1)-skewed; leaky sessions paste tenant secrets and must \
         produce block decisions\"\n}}\n",
        host_cores(),
        knobs.tenants,
        knobs.sessions,
        knobs.workers,
        knobs.queue_capacity,
        knobs.max_in_flight,
        ledger.sent,
        ledger.decisions,
        ledger.superseded,
        ledger.backpressure,
        ledger.blocked,
        ingest_us.len(),
        percentile(&ingest_us, 50.0),
        percentile(&ingest_us, 99.0),
        ingest_us.last().copied().unwrap_or(0),
        keystroke_us.len(),
        percentile(&keystroke_us, 50.0),
        percentile(&keystroke_us, 99.0),
        keystroke_us.last().copied().unwrap_or(0),
        recheck_us.len(),
        percentile(&recheck_us, 50.0),
        percentile(&recheck_us, 99.0),
        recheck_us.last().copied().unwrap_or(0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {path}");
    println!("PASS: zero silent drops; every tenant drained cleanly");
}
