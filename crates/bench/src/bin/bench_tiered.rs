//! Restart-latency microbench for the tiered persistence redesign.
//!
//! Sweeps the store sizes in [`algorithm1::STORE_SIZES`], persisting each
//! synthetic store as a plain v2 directory and as a v3 cold-shard
//! directory, then times a restart two ways per format: the open alone
//! (v2 full decode vs v3 checksum-validate-and-map) and the open plus the
//! first document-wide disclosure check. Asserts the CI cold-open speedup
//! floor on the largest store and writes `BENCH_tiered.json` at the repo
//! root.
//!
//! The floor defaults to 10.0x and can be overridden with `BF_TIER_FLOOR`
//! (e.g. for debug builds, where relative timings differ).

use browserflow_bench::{algorithm1, host_cores, print_header, tiered};

fn write_report(results: &[tiered::SizeResult]) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"paragraphs\": {}, \"v2_open_ms\": {:.3}, \"cold_open_ms\": {:.3}, \
                 \"open_speedup\": {:.2}, \"v2_first_check_ms\": {:.3}, \
                 \"cold_first_check_ms\": {:.3}, \"first_check_speedup\": {:.2}, \
                 \"reports\": {}, \"cold_shards\": {}, \"shard_count\": {}, \
                 \"cold_mapped_shards\": {}, \"cold_segments\": {}, \"cold_sightings\": {}}}",
                r.paragraphs,
                r.v2_open_ms,
                r.cold_open_ms,
                r.open_speedup(),
                r.v2_first_check_ms,
                r.cold_first_check_ms,
                r.first_check_speedup(),
                r.reports,
                r.cold_stats.cold_shards,
                r.cold_stats.shard_count,
                r.cold_stats.cold_mapped_shards,
                r.cold_stats.cold_segments,
                r.cold_stats.cold_sightings
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tiered\",\n  \
         \"note\": \"daemon-restart cost per snapshot format; 'v2_open' decodes every \
         record into the hot tier (StoreOpenOptions, TierMode::Hot), 'cold_open' \
         validates v3 shard headers and CRCs and maps the files in place \
         (TierMode::Cold); '*_first_check' adds one document-wide disclosure check \
         on top of the open; cold reports are asserted identical to the hot \
         reference before timing\",\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiered.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let floor: f64 = std::env::var("BF_TIER_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    print_header(
        "Tiered persistence: v2 full-decode open vs v3 cold (mapped) open",
        &format!(
            "restart cost per snapshot format over the Algorithm 1 corpus; host_cores = {}",
            host_cores()
        ),
    );
    println!(
        "{:>12} {:>11} {:>13} {:>9} {:>15} {:>17} {:>9}",
        "paragraphs",
        "v2_open_ms",
        "cold_open_ms",
        "speedup",
        "v2_first_chk_ms",
        "cold_first_chk_ms",
        "speedup"
    );

    let results = tiered::run(algorithm1::STORE_SIZES);
    for r in &results {
        println!(
            "{:>12} {:>11.3} {:>13.3} {:>8.2}x {:>15.3} {:>17.3} {:>8.2}x",
            r.paragraphs,
            r.v2_open_ms,
            r.cold_open_ms,
            r.open_speedup(),
            r.v2_first_check_ms,
            r.cold_first_check_ms,
            r.first_check_speedup()
        );
    }

    let largest = results.last().expect("STORE_SIZES is non-empty");
    println!(
        "\nlargest store ({} paragraphs): {}/{} shards cold ({} mapped), \
         {} cold segments, {} cold sightings",
        largest.paragraphs,
        largest.cold_stats.cold_shards,
        largest.cold_stats.shard_count,
        largest.cold_stats.cold_mapped_shards,
        largest.cold_stats.cold_segments,
        largest.cold_stats.cold_sightings
    );
    let speedup = largest.open_speedup();
    println!(
        "largest store cold open: {speedup:.2}x faster than v2 full decode (floor {floor:.1}x)"
    );

    write_report(&results);

    assert!(
        speedup >= floor,
        "v3 cold open must be >= {floor:.1}x faster than v2 full decode on the \
         largest store; measured {speedup:.2}x"
    );
    println!("PASS: cold-open speedup floor met");
}
