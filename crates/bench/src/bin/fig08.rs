//! Regenerates **Figure 8**: cumulative distribution of the relative
//! difference of article content sizes between the oldest and most recent
//! Wikipedia revision.
//!
//! The paper uses this heuristic to split articles into low- and
//! high-length-variation groups for Figure 9.

use browserflow_bench::{print_header, Scale};
use browserflow_corpus::datasets::{ChurnLevel, WikipediaCheckpoints};

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Figure 8: Changes in article length (CDF)",
        &format!("scale = {scale:?}; x = |len(newest) - len(base)| / len(base)"),
    );

    // Only the base and newest revision matter for the length heuristic;
    // snapshot-only storage keeps the paper scale within memory.
    let revisions = scale.wikipedia().revisions;
    let wikipedia = WikipediaCheckpoints::generate(1, &scale.wikipedia(), &[0, revisions]);
    let mut changes: Vec<(f64, &str, ChurnLevel)> = wikipedia
        .articles()
        .iter()
        .map(|a| (a.chain.relative_length_change(), a.name.as_str(), a.churn))
        .collect();
    changes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    println!(
        "{:>24} {:>14} {:>12}  churn-group",
        "article", "rel-change(%)", "CDF"
    );
    let n = changes.len() as f64;
    for (i, (change, name, churn)) in changes.iter().enumerate() {
        println!(
            "{:>24} {:>14.1} {:>12.3}  {:?}",
            name,
            change * 100.0,
            (i + 1) as f64 / n,
            churn
        );
    }

    let mean = |level: ChurnLevel| {
        let vals: Vec<f64> = changes
            .iter()
            .filter(|(_, _, c)| *c == level)
            .map(|(v, _, _)| *v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!();
    println!(
        "mean relative change: low-churn {:.1}%  high-churn {:.1}%",
        mean(ChurnLevel::Low) * 100.0,
        mean(ChurnLevel::High) * 100.0
    );
    println!(
        "(paper shape: low-variation articles cluster near zero; high-variation tail is long)"
    );
}
