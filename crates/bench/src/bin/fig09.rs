//! Regenerates **Figures 9a/9b**: the percentage of paragraphs from the
//! oldest article revision that BrowserFlow detects to be disclosed by
//! newer revisions, for articles with low (9a) and high (9b) length
//! variation.
//!
//! Configuration per §6.1: 32-bit hashes, 15-char n-grams, window 30,
//! `Tpar = 0.5`, paragraph granularity.

use browserflow_bench::{disclosed_fraction, paper_fingerprinter, print_header, Scale};
use browserflow_corpus::datasets::{ChurnLevel, WikiArticleCheckpoints, WikipediaCheckpoints};
use browserflow_fingerprint::Fingerprint;

const TPAR: f64 = 0.5;

fn series(article: &WikiArticleCheckpoints) -> Vec<f64> {
    let fp = paper_fingerprinter();
    let base: Vec<Fingerprint> = article
        .chain
        .base()
        .paragraphs()
        .iter()
        .map(|p| fp.fingerprint(&p.text()))
        .collect();
    article
        .chain
        .snapshots()
        .iter()
        .map(|(_, document)| {
            let revision = fp.fingerprint(&document.text());
            disclosed_fraction(&base, &revision, TPAR) * 100.0
        })
        .collect()
}

fn print_group(title: &str, articles: Vec<&WikiArticleCheckpoints>, checkpoints: &[usize]) {
    println!();
    println!("{title}");
    print!("{:>24}", "revisions-from-base:");
    for c in checkpoints {
        print!(" {c:>7}");
    }
    println!();
    for article in articles {
        let values = series(article);
        print!("{:>24}", article.name);
        for v in values {
            print!(" {v:>6.1}%");
        }
        println!();
    }
}

fn main() {
    let scale = Scale::from_env();
    let config = scale.wikipedia();
    print_header(
        "Figure 9: Paragraph disclosure across Wikipedia revisions (Tpar = 0.5)",
        &format!(
            "scale = {scale:?}; {} articles x {} revisions",
            config.articles, config.revisions
        ),
    );
    // Checkpoints spread across the revision range (the paper samples the
    // full 0..1000 x-axis); snapshot-only storage keeps the paper scale
    // within memory.
    let steps = 6usize;
    let checkpoints: Vec<usize> = (0..=steps).map(|i| i * config.revisions / steps).collect();
    let wikipedia = WikipediaCheckpoints::generate(1, &config, &checkpoints);

    print_group(
        "(a) Articles with low length variations — expected: stays near 100%",
        wikipedia.by_churn(ChurnLevel::Low).collect(),
        &checkpoints,
    );
    print_group(
        "(b) Articles with high length variations — expected: decays with revision distance",
        wikipedia.by_churn(ChurnLevel::High).collect(),
        &checkpoints,
    );
}
