//! Regenerates **Figures 10a–10d**: paragraph disclosure per manual
//! chapter version, BrowserFlow vs ground truth.
//!
//! The paper's ground truth is a human expert; ours is the corpus's exact
//! provenance oracle (see DESIGN.md §4): a base paragraph counts as
//! disclosed by a version while at least half of its original tokens
//! survive verbatim.

use browserflow_bench::{disclosed_fraction, paper_fingerprinter, print_header};
use browserflow_corpus::datasets::ManualsDataset;
use browserflow_fingerprint::Fingerprint;

const TPAR: f64 = 0.5;
const GROUND_TRUTH_CUTOFF: f64 = 0.5;

fn main() {
    print_header(
        "Figure 10: Paragraph disclosure (Manuals dataset), BrowserFlow vs ground truth",
        "Tpar = 0.5; ground truth = provenance oracle at 50% token survival",
    );
    let fp = paper_fingerprinter();
    let manuals = ManualsDataset::generate(2);

    for chapter in manuals.chapters() {
        let labels = chapter.kind.version_labels();
        let base: Vec<Fingerprint> = chapter
            .chain
            .base()
            .paragraphs()
            .iter()
            .map(|p| fp.fingerprint(&p.text()))
            .collect();
        println!();
        println!("({}) — disclosing paragraphs (%)", chapter.kind.name());
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "version", "ground-truth", "BrowserFlow", "abs-diff"
        );
        for (version, label) in labels.iter().enumerate() {
            let truth = chapter
                .ground_truth(version, GROUND_TRUTH_CUTOFF)
                .disclosed_fraction()
                * 100.0;
            let revision_print = fp.fingerprint(&chapter.chain.revision(version).text());
            let detected = disclosed_fraction(&base, &revision_print, TPAR) * 100.0;
            println!(
                "{:>10} {:>13.1}% {:>13.1}% {:>11.1}%",
                label,
                truth,
                detected,
                (truth - detected).abs()
            );
        }
    }
    println!();
    println!(
        "(paper shape: iPhone chapters decay to ~0 by iOS7; MySQL \"New Features\" drops \
         after 4.1; \"What's MySQL\" stays at 100%)"
    );
}
