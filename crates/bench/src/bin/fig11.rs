//! Regenerates **Figure 11**: the impact of the paragraph disclosure
//! threshold `Tpar`.
//!
//! For each `Tpar` the ratio of the total number of paragraphs BrowserFlow
//! reports as disclosed in newer chapter versions over the number reported
//! by the ground truth is printed: 1 means agreement; above/below 1 means
//! false positives/negatives. Paragraphs with empty fingerprints are
//! ignored, as in §6.1.

use browserflow_bench::{disclosed_indices, paper_fingerprinter, print_header};
use browserflow_corpus::datasets::ManualsDataset;
use browserflow_fingerprint::Fingerprint;

const GROUND_TRUTH_CUTOFF: f64 = 0.5;

fn main() {
    print_header(
        "Figure 11: Impact of paragraph disclosure threshold",
        "ratio of detected disclosure over ground truth; Manuals dataset",
    );
    let fp = paper_fingerprinter();
    let manuals = ManualsDataset::generate(2);

    println!(
        "{:>6} {:>10} {:>14} {:>10} {:>12}",
        "Tpar", "detected", "ground-truth", "ratio", "agreement"
    );
    for step in 0..=10 {
        let tpar = step as f64 / 10.0;
        let mut detected_total = 0usize;
        let mut truth_total = 0usize;
        let mut agree = 0usize;
        let mut considered = 0usize;
        for chapter in manuals.chapters() {
            let base: Vec<Fingerprint> = chapter
                .chain
                .base()
                .paragraphs()
                .iter()
                .map(|p| fp.fingerprint(&p.text()))
                .collect();
            for version in 1..chapter.chain.len() {
                let truth = chapter.ground_truth(version, GROUND_TRUTH_CUTOFF);
                let revision_print = fp.fingerprint(&chapter.chain.revision(version).text());
                let detected = disclosed_indices(&base, &revision_print, tpar);
                let detected_set: std::collections::HashSet<usize> =
                    detected.iter().copied().collect();
                for (index, paragraph) in base.iter().enumerate() {
                    if paragraph.is_empty() {
                        continue; // systematic error excluded, as in §6.1
                    }
                    considered += 1;
                    let truly = truth.is_disclosed(index);
                    let found = detected_set.contains(&index);
                    if truly {
                        truth_total += 1;
                    }
                    if found {
                        detected_total += 1;
                    }
                    if truly == found {
                        agree += 1;
                    }
                }
            }
        }
        let ratio = detected_total as f64 / truth_total.max(1) as f64;
        let agreement = agree as f64 / considered.max(1) as f64;
        println!(
            "{tpar:>6.1} {detected_total:>10} {truth_total:>14} {ratio:>10.3} {:>11.1}%",
            agreement * 100.0
        );
    }
    println!();
    println!(
        "(paper shape: ratio ~1 and agreement >90% for Tpar in [0.2, 0.8]; false positives \
         below 0.2, false negatives above 0.8)"
    );
}
