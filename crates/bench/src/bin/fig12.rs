//! Regenerates **Figure 12**: the distribution of response times for
//! disclosure decisions under three editing workflows in a Google-Docs-like
//! editor, with the e-book corpus loaded into the fingerprint database.
//!
//! - **W1 creation-with-overlap**: a user creates a new document and types
//!   a page from an existing e-book.
//! - **W2 creation-without-overlap**: a user types an article that shares
//!   no text with the corpus.
//! - **W3 modification**: a user edits a previously-modified version of an
//!   e-book page to make it match the original.
//! - **W1i creation-with-overlap, incremental**: W1 again, but each
//!   keystroke is submitted as a [`TextEdit`] splice through the
//!   incremental session path instead of re-sending the whole paragraph.
//!
//! Decisions run asynchronously on a worker thread (as in the plug-in);
//! each sample is the end-to-end latency from keystroke to decision.
//! Run with `--release`; set `BF_SCALE=paper` for the 90 MB / ~10 M hash
//! corpus.

use browserflow::{
    AsyncDecider, BrowserFlow, ConcurrencyMetrics, EnforcementMode, ResponseTimes, TextEdit,
};
use browserflow_bench::{print_header, warn_if_single_core, Scale};
use browserflow_corpus::datasets::EbooksDataset;
use browserflow_corpus::TextGen;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};
use std::time::Duration;

/// Keystrokes simulated per workflow (one disclosure check each).
const KEYSTROKES: usize = 600;

fn load_corpus(scale: Scale) -> (BrowserFlow, EbooksDataset) {
    let lib = Tag::new("library").expect("valid tag");
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Advisory)
        .service(
            Service::new("library", "Corporate Library")
                .with_privilege(TagSet::from_iter([lib.clone()]))
                .with_confidentiality(TagSet::from_iter([lib])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .expect("policy builds");
    let ebooks = EbooksDataset::generate(3, &scale.ebooks());
    let library: ServiceId = "library".into();
    for (book_index, book) in ebooks.books().iter().enumerate() {
        let doc = format!("book-{book_index}");
        for (par_index, paragraph) in book.paragraphs().iter().enumerate() {
            flow.index_paragraph(&library, &doc, par_index, &paragraph.text())
                .expect("library registered");
        }
    }
    (flow, ebooks)
}

/// Types `text` into paragraph 0 of a fresh document, checking after every
/// keystroke chunk, and returns the latency samples.
fn type_and_measure(decider: &AsyncDecider, document: &str, text: &str, times: &mut ResponseTimes) {
    let gdocs: ServiceId = "gdocs".into();
    let chars: Vec<char> = text.chars().collect();
    let step = (chars.len() / KEYSTROKES).max(1);
    let mut typed = String::new();
    let mut i = 0;
    while i < chars.len() {
        let end = (i + step).min(chars.len());
        typed.extend(&chars[i..end]);
        let timed = decider
            .check(&gdocs, document, 0, typed.as_str())
            .expect("gdocs registered");
        times.record(timed.latency);
        // The paragraph's new content is observed (asynchronously in the
        // plug-in; sequentially here to keep the state realistic).
        decider
            .observe(&gdocs, document, 0, typed.as_str())
            .expect("gdocs registered");
        i = end;
    }
}

/// Like [`type_and_measure`], but each keystroke chunk travels as a
/// [`TextEdit`] splice through the incremental keystroke session — the
/// observation is implicit (the session *is* the tracked state).
fn type_and_measure_incremental(
    decider: &AsyncDecider,
    document: &str,
    text: &str,
    times: &mut ResponseTimes,
) {
    let gdocs: ServiceId = "gdocs".into();
    let chars: Vec<char> = text.chars().collect();
    let step = (chars.len() / KEYSTROKES).max(1);
    let mut at = 0usize;
    let mut i = 0;
    while i < chars.len() {
        let end = (i + step).min(chars.len());
        let chunk: String = chars[i..end].iter().collect();
        let edit = TextEdit::insert(at, chunk.as_str());
        at += chunk.len();
        let timed = decider
            .submit_keystroke_edit(&gdocs, document, 0, edit)
            .expect("queue accepts sequential keystrokes")
            .wait()
            .expect("worker replies");
        times.record(timed.latency);
        i = end;
    }
}

fn report(label: &str, times: &ResponseTimes) {
    println!(
        "{label:>28}: n={:<5} p50={:>9.3?} p85={:>9.3?} p99={:>9.3?} max={:>9.3?}  \
         <=30ms {:>5.1}%  <=200ms {:>5.1}%",
        times.len(),
        times.percentile(0.50),
        times.percentile(0.85),
        times.percentile(0.99),
        times.max().unwrap_or_default(),
        times.fraction_within(Duration::from_millis(30)) * 100.0,
        times.fraction_within(Duration::from_millis(200)) * 100.0,
    );
}

fn main() {
    warn_if_single_core();
    let scale = Scale::from_env();
    print_header(
        "Figure 12: Distribution of response times for disclosure decisions",
        &format!("scale = {scale:?}; {KEYSTROKES} checks per workflow; async worker decisions"),
    );
    let (flow, ebooks) = load_corpus(scale);
    println!(
        "corpus loaded: {} books, {} paragraphs, {} distinct hashes",
        ebooks.books().len(),
        flow.engine().paragraph_count(),
        flow.engine().paragraph_hash_count()
    );
    let decider = AsyncDecider::spawn(flow);

    // W1: a page (~4 paragraphs) from an existing book.
    let book = &ebooks.books()[ebooks.books().len() / 2];
    let page: String = book
        .paragraphs()
        .iter()
        .take(4)
        .map(|p| p.text())
        .collect::<Vec<_>>()
        .join(" ");
    let mut w1 = ResponseTimes::new();
    type_and_measure(&decider, "w1-doc", &page, &mut w1);

    // W2: novel text of the same length.
    let mut gen = TextGen::new(999);
    let mut novel = String::new();
    while novel.len() < page.len() {
        novel.push_str(&gen.sentence());
        novel.push(' ');
    }
    let mut w2 = ResponseTimes::new();
    type_and_measure(&decider, "w2-doc", &novel, &mut w2);

    // W3: edit a modified book page back towards the original.
    let original = book.paragraphs()[0].text();
    let mut w3 = ResponseTimes::new();
    {
        let gdocs: ServiceId = "gdocs".into();
        // Build the modified version: ~30% of words replaced.
        let mut modified = browserflow_corpus::Paragraph::fresh(
            original.split_whitespace().map(|w| w.to_string()),
        );
        let mut edit_gen = TextGen::new(1234);
        browserflow_corpus::edits::replace_words(&mut modified, 0.3, &mut edit_gen);
        let modified_words: Vec<String> = modified
            .tokens()
            .iter()
            .map(|t| t.word().to_string())
            .collect();
        let original_words: Vec<String> = original
            .split_whitespace()
            .map(|w| w.trim_matches('.').to_string())
            .collect();
        decider
            .observe(&gdocs, "w3-doc", 0, modified_words.join(" "))
            .expect("gdocs registered");
        // Word by word, restore the original.
        let mut current = modified_words.clone();
        let steps = current.len().min(original_words.len());
        for i in 0..steps {
            current[i] = original_words[i].clone();
            let text = current.join(" ");
            let timed = decider
                .check(&gdocs, "w3-doc", 0, text.as_str())
                .expect("gdocs registered");
            w3.record(timed.latency);
            decider
                .observe(&gdocs, "w3-doc", 0, text.as_str())
                .expect("gdocs registered");
        }
    }

    // W1i: the same overlapping page, typed as incremental edit splices.
    let mut w1i = ResponseTimes::new();
    type_and_measure_incremental(&decider, "w1i-doc", &page, &mut w1i);

    println!();
    report("W1 creation-with-overlap", &w1);
    report("W2 creation-without-overlap", &w2);
    report("W3 modification", &w3);
    report("W1i incremental edits", &w1i);

    println!();
    println!("response-time CDF (ms at cumulative fraction):");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "fraction", "W1", "W2", "W3", "W1i"
    );
    for p in [0.1, 0.25, 0.5, 0.75, 0.85, 0.95, 0.99, 1.0] {
        println!(
            "{:>10.2} {:>12.3?} {:>12.3?} {:>12.3?} {:>12.3?}",
            p,
            w1.percentile(p),
            w2.percentile(p),
            w3.percentile(p),
            w1i.percentile(p)
        );
    }
    println!();
    println!(
        "(paper shape: 99% of decisions within 200 ms; ~85% under 30 ms thanks to \
         fingerprint-digest caching; overlap workflows W1/W3 slower than W2)"
    );
    let stats = decider.stats();
    println!();
    println!(
        "pipeline: submitted={} completed={} coalesced={} rejected={} timeouts={} \
         batches={} mean_batch={:.2} max_batch={} queue_depth={}",
        stats.submitted,
        stats.completed,
        stats.coalesced,
        stats.rejected,
        stats.timeouts,
        stats.batches,
        stats.mean_batch(),
        stats.max_batch,
        stats.queue_depth,
    );

    let flow = decider.shutdown().expect("pipeline shuts down cleanly");
    let metrics = ConcurrencyMetrics::of(flow.engine()).with_pipeline(stats);
    let mode = metrics.fingerprint_mode;
    println!(
        "fingerprint mode: full={} incremental={} absorbed={} (incremental fraction {})",
        mode.full_checks,
        mode.incremental_checks,
        mode.incremental_absorbs,
        mode.incremental_fraction()
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "n/a".into()),
    );
    let (sweeps, scanned, evicted) = metrics.eviction_totals();
    println!(
        "store locks: contended acquisitions={} across {} hash shards \
         (per-shard max {}); eviction sweeps={} scanned={} evicted={}",
        metrics.total_lock_contention(),
        metrics.paragraphs.shard_count,
        metrics
            .paragraphs
            .hash_shard_contention
            .iter()
            .max()
            .copied()
            .unwrap_or(0),
        sweeps,
        scanned,
        evicted,
    );
    let (batched, batch_hashes, batch_locks) = metrics.batch_totals();
    println!(
        "batched ingest: observations={batched} hashes_recorded={batch_hashes} \
         lock_acquisitions={batch_locks} (per-observation ingest would have paid \
         one round-trip per hash)",
    );
}
