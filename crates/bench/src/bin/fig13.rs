//! Regenerates **Figure 13**: response time when varying the size of the
//! hashes database.
//!
//! For each database size, a new empty document is created and a
//! 500-character paragraph from an existing book is pasted, triggering the
//! disclosure calculation; the 95th percentile of the response time is
//! reported. The paper sweeps 1 M – 10 M distinct hashes (90 MB of
//! e-books); `BF_SCALE=paper` reproduces that range, the default a scaled
//! version. Run with `--release`.

use browserflow::{AsyncDecider, BrowserFlow, ConcurrencyMetrics, EnforcementMode, ResponseTimes};
use browserflow_bench::{print_header, warn_if_single_core, Scale};
use browserflow_corpus::datasets::EbooksDataset;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};

/// Paste repetitions per database size (the p95 is taken over these).
const REPETITIONS: usize = 40;
/// Number of database sizes swept.
const STEPS: usize = 10;

fn fresh_flow() -> BrowserFlow {
    let lib = Tag::new("library").expect("valid tag");
    BrowserFlow::builder()
        .mode(EnforcementMode::Advisory)
        .service(
            Service::new("library", "Corporate Library")
                .with_privilege(TagSet::from_iter([lib.clone()]))
                .with_confidentiality(TagSet::from_iter([lib])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .expect("policy builds")
}

fn main() {
    warn_if_single_core();
    let scale = Scale::from_env();
    print_header(
        "Figure 13: Response time when varying the size of the hashes database",
        &format!("scale = {scale:?}; paste of a 500-char paragraph; p95 over {REPETITIONS} pastes"),
    );
    let ebooks = EbooksDataset::generate(3, &scale.ebooks());
    let library: ServiceId = "library".into();
    let gdocs: ServiceId = "gdocs".into();
    let books = ebooks.books();

    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12}",
        "books", "hashes", "p50", "p95", "max"
    );
    for step in 1..=STEPS {
        let count = (books.len() * step).div_ceil(STEPS).max(1);
        let flow = fresh_flow();
        for (book_index, book) in books.iter().take(count).enumerate() {
            let doc = format!("book-{book_index}");
            // Whole books land through the batched ingest pipeline (one
            // stripe-lock round-trip per touched stripe).
            let texts: Vec<String> = book.paragraphs().iter().map(|p| p.text()).collect();
            let slots: Vec<(usize, &str)> = texts
                .iter()
                .enumerate()
                .map(|(par_index, text)| (par_index, text.as_str()))
                .collect();
            flow.observe_paragraphs(&library, &doc, &slots)
                .expect("library registered");
        }
        let hash_count = flow.engine().paragraph_hash_count();
        let decider = AsyncDecider::spawn(flow);

        // Paste paragraphs drawn from loaded books into fresh documents.
        let mut times = ResponseTimes::new();
        for repetition in 0..REPETITIONS {
            let book = &books[repetition % count];
            let paragraph = &book.paragraphs()[repetition % book.paragraphs().len()];
            let text: String = paragraph.text().chars().take(500).collect();
            let document = format!("paste-target-{repetition}");
            let timed = decider
                .check(&gdocs, document, 0, text)
                .expect("gdocs registered");
            times.record(timed.latency);
        }
        let stats = decider.stats();
        let flow = decider.shutdown().expect("pipeline shuts down cleanly");
        // Trim segments older than "now" so the sweep counters show the
        // cost of an eviction pass at this database size.
        flow.engine().evict_paragraphs_older_than_now();
        let metrics = ConcurrencyMetrics::of(flow.engine());
        let (sweeps, scanned, evicted) = metrics.eviction_totals();
        let (batched, _, batch_locks) = metrics.batch_totals();
        println!(
            "{:>8} {:>14} {:>12.3?} {:>12.3?} {:>12.3?}  (pipeline {}/{} ok; \
             contended locks {}; batch ingest {} obs {} locks; \
             eviction sweeps {} scanned {} evicted {})",
            count,
            hash_count,
            times.percentile(0.50),
            times.percentile(0.95),
            times.max().unwrap_or_default(),
            stats.completed,
            stats.submitted,
            metrics.total_lock_contention(),
            batched,
            batch_locks,
            sweeps,
            scanned,
            evicted,
        );
    }
    println!();
    println!(
        "(paper shape: p95 grows sub-linearly with the hash count and stays below \
         ~200 ms even at 10 M hashes, thanks to the hashtable indexes)"
    );
}
