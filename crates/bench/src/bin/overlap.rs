//! Ablation: authoritative fingerprints on vs. off (beyond the paper).
//!
//! §4.3 motivates the authoritative-fingerprint adjustment with Figure 7's
//! worked example but does not quantify it. This experiment measures the
//! effect: a corpus where a fraction of paragraphs are near-duplicates
//! (quotes of earlier paragraphs plus new text), probed with pastes of the
//! *original* paragraphs.
//!
//! - **with compensation** (the shipped Algorithm 1): candidates are the
//!   authoritative owners of the probe's hashes, so each paste reports its
//!   one true source.
//! - **without compensation** (naive pairwise `D` of §4.2 against every
//!   stored paragraph): the duplicates also exceed the threshold and are
//!   reported as additional "sources" — false attributions.

use browserflow_bench::print_header;
use browserflow_corpus::TextGen;
use browserflow_fingerprint::{Fingerprint, Fingerprinter};
use browserflow_store::{disclosure_between, FingerprintStore, SegmentId};

const TPAR: f64 = 0.5;
const ORIGINALS: usize = 200;

fn main() {
    print_header(
        "Ablation: overlap compensation (authoritative fingerprints) on vs off",
        "corpus of originals + quoting duplicates; probes paste each original; Tpar = 0.5",
    );
    let fingerprinter = Fingerprinter::default();
    let mut gen = TextGen::new(4242);
    let originals: Vec<String> = (0..ORIGINALS).map(|_| gen.paragraph(7)).collect();

    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>16}",
        "dup-ratio", "paragraphs", "reports(with)", "reports(w/o)", "false-attrib(w/o)"
    );
    for dup_percent in [0usize, 25, 50, 100] {
        let mut store = FingerprintStore::new();
        let mut stored_prints: Vec<(SegmentId, Fingerprint)> = Vec::new();
        let mut next_id = 0u64;
        let mut put = |store: &mut FingerprintStore,
                       stored: &mut Vec<(SegmentId, Fingerprint)>,
                       text: &str| {
            let id = SegmentId::new(next_id);
            next_id += 1;
            let print = fingerprinter.fingerprint(text);
            store.observe(id, &print, TPAR);
            stored.push((id, print));
        };
        for original in &originals {
            put(&mut store, &mut stored_prints, original);
        }
        // Duplicates quote an original in full and append fresh text.
        let dup_count = ORIGINALS * dup_percent / 100;
        for i in 0..dup_count {
            let quoted = format!("{} {}", originals[i % ORIGINALS], gen.paragraph(2));
            put(&mut store, &mut stored_prints, quoted.as_str());
        }

        // Probe: paste each original into a fresh document.
        let mut with_compensation = 0usize;
        let mut without_compensation = 0usize;
        for (probe_index, original) in originals.iter().enumerate() {
            let probe = fingerprinter.fingerprint(original);
            let target = SegmentId::new(1_000_000 + probe_index as u64);
            with_compensation += store.disclosing_sources(target, &probe).len();
            // Naive §4.2 pairwise metric against every stored paragraph.
            let probe_hashes = probe.hash_set();
            without_compensation += stored_prints
                .iter()
                .filter(|(id, stored_print)| {
                    *id != target
                        && disclosure_between(&stored_print.hash_set(), &probe_hashes) >= TPAR
                })
                .count();
        }
        println!(
            "{:>9}% {:>12} {:>14} {:>14} {:>16}",
            dup_percent,
            ORIGINALS + dup_count,
            with_compensation,
            without_compensation,
            without_compensation.saturating_sub(ORIGINALS)
        );
    }
    println!();
    println!(
        "(expected: with compensation, exactly one report per paste regardless of the \
         duplicate ratio; without it, every quoting duplicate is falsely attributed too)"
    );
}
