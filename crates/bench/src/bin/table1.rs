//! Regenerates **Table 1**: the dataset inventory used for the
//! information-disclosure evaluation.

use browserflow_bench::{print_header, Scale};
use browserflow_corpus::datasets::{
    table1_rows, EbooksDataset, ManualsDataset, NewsDataset, WikipediaCheckpoints, WikipediaDataset,
};

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Table 1: Datasets used for information disclosure evaluation",
        &format!("scale = {scale:?} (set BF_SCALE=paper for the paper's sizes)"),
    );

    // The Wikipedia row is computed from revision snapshots so the paper's
    // 1000-revision chains fit in memory; averages are over the snapshots.
    let config = scale.wikipedia();
    let checkpoints: Vec<usize> = (0..=4).map(|i| i * config.revisions / 4).collect();
    let wikipedia = WikipediaCheckpoints::generate(1, &config, &checkpoints);
    let manuals = ManualsDataset::generate(2);
    let news = NewsDataset::generate(4);
    let ebooks = EbooksDataset::generate(3, &scale.ebooks());

    println!(
        "{:<12} {:<22} {:>9} {:>9} {:>11} {:>10}",
        "Dataset", "Item", "Documents", "Versions", "Paragraphs", "Size(KiB)"
    );
    let mut paragraphs = 0usize;
    let mut bytes = 0usize;
    let mut snapshots = 0usize;
    for article in wikipedia.articles() {
        for (_, document) in article.chain.snapshots() {
            paragraphs += document.paragraphs().len();
            bytes += document.byte_len();
            snapshots += 1;
        }
    }
    println!(
        "{:<12} {:<22} {:>9} {:>9} {:>11.1} {:>10.1}",
        "Wikipedia",
        "Articles",
        wikipedia.articles().len(),
        config.revisions + 1,
        paragraphs as f64 / snapshots.max(1) as f64,
        bytes as f64 / snapshots.max(1) as f64 / 1024.0
    );
    let empty_wiki = WikipediaDataset::generate(
        1,
        &browserflow_corpus::datasets::WikipediaConfig {
            articles: 0,
            ..config
        },
    );
    for row in table1_rows(&empty_wiki, &manuals, &news, &ebooks) {
        println!(
            "{:<12} {:<22} {:>9} {:>9} {:>11.1} {:>10.1}",
            row.dataset, row.item, row.documents, row.versions, row.paragraphs, row.size_kib
        );
    }
}
