//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper's evaluation (§6) has a binary in
//! `src/bin` that regenerates it:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 (dataset inventory) |
//! | `fig08`  | Figure 8 (CDF of article-length change) |
//! | `fig09`  | Figure 9a/9b (paragraph disclosure across Wikipedia revisions) |
//! | `fig10`  | Figure 10a–d (manual chapters vs ground truth) |
//! | `fig11`  | Figure 11 (impact of the paragraph disclosure threshold) |
//! | `fig12`  | Figure 12 (response-time CDF for three editing workflows) |
//! | `fig13`  | Figure 13 (response time vs hash-database size) |
//!
//! Each binary prints a self-describing table to stdout. Scale is
//! controlled by the `BF_SCALE` environment variable: `small` (default,
//! laptop-friendly) or `paper` (the sizes reported in the paper — the
//! e-book corpus then reaches ~10 M distinct hashes and takes several
//! minutes to load).

use browserflow_corpus::datasets::{EbooksConfig, WikipediaConfig};
use browserflow_fingerprint::{Fingerprint, Fingerprinter};
use browserflow_store::disclosure_between;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly sizes; shapes match the paper, absolute counts are
    /// smaller.
    Small,
    /// The paper's dataset sizes.
    Paper,
}

impl Scale {
    /// Reads `BF_SCALE` from the environment (`paper` or `small`).
    pub fn from_env() -> Self {
        match std::env::var("BF_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The Wikipedia dataset configuration at this scale.
    pub fn wikipedia(&self) -> WikipediaConfig {
        match self {
            Scale::Small => WikipediaConfig {
                articles: 8,
                revisions: 100,
                paragraphs: 20,
                sentences: 4,
                high_churn_fraction: 0.5,
            },
            Scale::Paper => WikipediaConfig::paper_scale(),
        }
    }

    /// The e-books dataset configuration at this scale.
    pub fn ebooks(&self) -> EbooksConfig {
        match self {
            Scale::Small => EbooksConfig {
                books: 12,
                min_bytes: 30_000,
                max_bytes: 120_000,
                size_skew: 1,
            },
            Scale::Paper => EbooksConfig::paper_scale(),
        }
    }
}

/// The evaluation's fingerprint configuration (§6.1): 32-bit hashes over
/// 15-character n-grams, window 30.
pub fn paper_fingerprinter() -> Fingerprinter {
    Fingerprinter::default()
}

/// Fraction of `base_paragraphs` that `revision_print` discloses at
/// threshold `tpar`, ignoring paragraphs whose fingerprint is empty
/// (§6.1 excludes them as systematic errors).
///
/// This is the per-revision quantity plotted in Figures 9 and 10: for a
/// base paragraph `Ap` and revision document `B`, disclosure is
/// `Dpar(Ap, B) = |F(Ap) ∩ F(B)| / |F(Ap)| ≥ Tpar`.
pub fn disclosed_fraction(
    base_paragraphs: &[Fingerprint],
    revision_print: &Fingerprint,
    tpar: f64,
) -> f64 {
    let revision_hashes = revision_print.hash_set();
    let mut considered = 0usize;
    let mut disclosed = 0usize;
    for paragraph in base_paragraphs {
        let hashes = paragraph.hash_set();
        if hashes.is_empty() {
            continue;
        }
        considered += 1;
        let d = disclosure_between(&hashes, &revision_hashes);
        if d >= tpar && d > 0.0 {
            disclosed += 1;
        }
    }
    if considered == 0 {
        return 0.0;
    }
    disclosed as f64 / considered as f64
}

/// Indices of base paragraphs disclosed by `revision_print` at `tpar`
/// (same rules as [`disclosed_fraction`]; empty-fingerprint paragraphs are
/// never reported).
pub fn disclosed_indices(
    base_paragraphs: &[Fingerprint],
    revision_print: &Fingerprint,
    tpar: f64,
) -> Vec<usize> {
    let revision_hashes = revision_print.hash_set();
    base_paragraphs
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            let hashes = p.hash_set();
            if hashes.is_empty() {
                return false;
            }
            let d = disclosure_between(&hashes, &revision_hashes);
            d >= tpar && d > 0.0
        })
        .map(|(i, _)| i)
        .collect()
}

/// Prints a horizontal rule and a titled header for experiment output.
pub fn print_header(title: &str, detail: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_small() {
        // Note: avoid mutating the environment in tests; just check the
        // default path when BF_SCALE is unset or unrecognised.
        if std::env::var("BF_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
        assert!(Scale::Small.wikipedia().articles <= Scale::Paper.wikipedia().articles);
        assert!(Scale::Small.ebooks().books <= Scale::Paper.ebooks().books);
    }

    #[test]
    fn disclosed_fraction_full_and_none() {
        let fp = paper_fingerprinter();
        let text = "a reasonably long paragraph with enough characters to fingerprint well \
                    and then some more text to be safe";
        let base = vec![fp.fingerprint(text)];
        let same = fp.fingerprint(text);
        assert_eq!(disclosed_fraction(&base, &same, 0.5), 1.0);
        let other = fp.fingerprint(
            "totally different content about completely unrelated topics and words \
             that share nothing with the base paragraph at all",
        );
        assert_eq!(disclosed_fraction(&base, &other, 0.5), 0.0);
        assert_eq!(disclosed_indices(&base, &same, 0.5), vec![0]);
    }

    #[test]
    fn empty_fingerprints_are_ignored() {
        let fp = paper_fingerprinter();
        let base = vec![fp.fingerprint("tiny"), fp.fingerprint("also tiny")];
        let revision = fp.fingerprint("tiny");
        // All base paragraphs have empty fingerprints -> fraction 0, not NaN.
        assert_eq!(disclosed_fraction(&base, &revision, 0.0), 0.0);
    }
}
