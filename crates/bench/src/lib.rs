//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper's evaluation (§6) has a binary in
//! `src/bin` that regenerates it:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 (dataset inventory) |
//! | `fig08`  | Figure 8 (CDF of article-length change) |
//! | `fig09`  | Figure 9a/9b (paragraph disclosure across Wikipedia revisions) |
//! | `fig10`  | Figure 10a–d (manual chapters vs ground truth) |
//! | `fig11`  | Figure 11 (impact of the paragraph disclosure threshold) |
//! | `fig12`  | Figure 12 (response-time CDF for three editing workflows) |
//! | `fig13`  | Figure 13 (response time vs hash-database size) |
//!
//! Each binary prints a self-describing table to stdout. Scale is
//! controlled by the `BF_SCALE` environment variable: `small` (default,
//! laptop-friendly) or `paper` (the sizes reported in the paper — the
//! e-book corpus then reaches ~10 M distinct hashes and takes several
//! minutes to load).

use browserflow_corpus::datasets::{EbooksConfig, WikipediaConfig};
use browserflow_fingerprint::{Fingerprint, Fingerprinter};
use browserflow_store::disclosure_between;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly sizes; shapes match the paper, absolute counts are
    /// smaller.
    Small,
    /// The paper's dataset sizes.
    Paper,
}

impl Scale {
    /// Reads `BF_SCALE` from the environment (`paper` or `small`).
    pub fn from_env() -> Self {
        match std::env::var("BF_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The Wikipedia dataset configuration at this scale.
    pub fn wikipedia(&self) -> WikipediaConfig {
        match self {
            Scale::Small => WikipediaConfig {
                articles: 8,
                revisions: 100,
                paragraphs: 20,
                sentences: 4,
                high_churn_fraction: 0.5,
            },
            Scale::Paper => WikipediaConfig::paper_scale(),
        }
    }

    /// The e-books dataset configuration at this scale.
    pub fn ebooks(&self) -> EbooksConfig {
        match self {
            Scale::Small => EbooksConfig {
                books: 12,
                min_bytes: 30_000,
                max_bytes: 120_000,
                size_skew: 1,
            },
            Scale::Paper => EbooksConfig::paper_scale(),
        }
    }
}

/// The evaluation's fingerprint configuration (§6.1): 32-bit hashes over
/// 15-character n-grams, window 30.
pub fn paper_fingerprinter() -> Fingerprinter {
    Fingerprinter::default()
}

/// Fraction of `base_paragraphs` that `revision_print` discloses at
/// threshold `tpar`, ignoring paragraphs whose fingerprint is empty
/// (§6.1 excludes them as systematic errors).
///
/// This is the per-revision quantity plotted in Figures 9 and 10: for a
/// base paragraph `Ap` and revision document `B`, disclosure is
/// `Dpar(Ap, B) = |F(Ap) ∩ F(B)| / |F(Ap)| ≥ Tpar`.
pub fn disclosed_fraction(
    base_paragraphs: &[Fingerprint],
    revision_print: &Fingerprint,
    tpar: f64,
) -> f64 {
    let revision_hashes = revision_print.hash_set();
    let mut considered = 0usize;
    let mut disclosed = 0usize;
    for paragraph in base_paragraphs {
        let hashes = paragraph.hash_set();
        if hashes.is_empty() {
            continue;
        }
        considered += 1;
        let d = disclosure_between(&hashes, &revision_hashes);
        if d >= tpar && d > 0.0 {
            disclosed += 1;
        }
    }
    if considered == 0 {
        return 0.0;
    }
    disclosed as f64 / considered as f64
}

/// Indices of base paragraphs disclosed by `revision_print` at `tpar`
/// (same rules as [`disclosed_fraction`]; empty-fingerprint paragraphs are
/// never reported).
pub fn disclosed_indices(
    base_paragraphs: &[Fingerprint],
    revision_print: &Fingerprint,
    tpar: f64,
) -> Vec<usize> {
    let revision_hashes = revision_print.hash_set();
    base_paragraphs
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            let hashes = p.hash_set();
            if hashes.is_empty() {
                return false;
            }
            let d = disclosure_between(&hashes, &revision_hashes);
            d >= tpar && d > 0.0
        })
        .map(|(i, _)| i)
        .collect()
}

/// Prints a horizontal rule and a titled header for experiment output.
pub fn print_header(title: &str, detail: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("{}", "=".repeat(72));
}

/// The host's core count as seen by `std::thread::available_parallelism`.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Prints a one-line warning when the host has a single core: every
/// parallel-scaling series (checker threads, Algorithm 1 fan-out, parallel
/// decode) is then flat by construction, and the numbers reflect the
/// hardware rather than the implementation.
pub fn warn_if_single_core() {
    if host_cores() == 1 {
        eprintln!(
            "warning: single-core host; parallel speedups will be flat — \
             thread/worker scaling series reflect the hardware, not the implementation"
        );
    }
}

/// Old-vs-new microbench for Algorithm 1's candidate evaluation.
///
/// Builds synthetic stores at several paragraph counts and times one
/// document-wide disclosure check two ways over identical data: the
/// pre-index reference ([`browserflow_store::probe_disclosing_sources`],
/// which derives each candidate's authoritative set by probing `DBhash`
/// once per stored hash) against the production path (incrementally
/// maintained authoritative index + sorted-slice intersection kernel).
///
/// The synthetic corpus models the paper's accidental-disclosure setting:
/// every paragraph carries [`OWN_HASHES`] hashes of its own plus
/// [`SHARED_HASHES`] hashes drawn from a common boilerplate pool whose
/// authoritative owners are the oldest paragraphs. The shared tail is what
/// the pre-index path pays for — it probes `DBhash` for *every* stored
/// hash of every candidate — while the indexed path intersects only the
/// (smaller) authoritative sets.
pub mod algorithm1 {
    use browserflow_fingerprint::{Fingerprint, SelectedHash};
    use browserflow_store::{probe_disclosing_sources, FingerprintStore, SegmentId};
    use std::collections::HashSet;
    use std::time::Instant;

    /// Store sizes (paragraph counts) the microbench sweeps.
    pub const STORE_SIZES: &[usize] = &[1_500, 15_000, 150_000];
    /// Hashes unique to each paragraph.
    pub const OWN_HASHES: usize = 48;
    /// Hashes each paragraph draws from the shared boilerplate pool.
    pub const SHARED_HASHES: usize = 144;
    /// Size of the shared boilerplate pool.
    const POOL: usize = 4_096;
    /// Paragraphs sampled into the document-wide target check.
    pub const TARGET_SOURCES: usize = 200;
    /// Own-hashes each sampled paragraph contributes to the target: the
    /// document quotes a quarter of each source, the partial-overlap shape
    /// §4.3's threshold test exists for.
    pub const TARGET_HASHES_PER_SOURCE: usize = 12;
    /// Observation threshold; 0.25 of each source is quoted, so 0.2 keeps
    /// every sampled source reporting.
    const THRESHOLD: f64 = 0.2;
    /// Measured passes per implementation (best-of, after one warm-up).
    const ROUNDS: usize = 3;

    /// One store size's old-vs-new comparison.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeResult {
        /// Paragraphs stored.
        pub paragraphs: usize,
        /// Distinct hashes in the target document.
        pub target_hashes: usize,
        /// Sources both implementations report.
        pub reports: usize,
        /// Best-of-[`ROUNDS`] wall time of the probe-based reference, ms.
        pub probe_ms: f64,
        /// Best-of-[`ROUNDS`] wall time of the indexed production path, ms.
        pub indexed_ms: f64,
    }

    impl SizeResult {
        /// probe/indexed wall-time ratio.
        pub fn speedup(&self) -> f64 {
            self.probe_ms / self.indexed_ms
        }
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn pool_hash(k: usize) -> u32 {
        (splitmix64(0x00B0_11E4_0000 + k as u64) >> 32) as u32
    }

    fn own_hash(paragraph: usize, j: usize) -> u32 {
        (splitmix64(paragraph as u64 * 1_000_003 + j as u64) >> 32) as u32
    }

    /// The synthetic fingerprint of one paragraph: its own hashes plus a
    /// paragraph-dependent slice of the boilerplate pool.
    fn paragraph_fingerprint(paragraph: usize) -> Fingerprint {
        let mut entries = Vec::with_capacity(OWN_HASHES + SHARED_HASHES);
        for j in 0..OWN_HASHES {
            entries.push(SelectedHash::new(own_hash(paragraph, j), j, j..j + 15));
        }
        for k in 0..SHARED_HASHES {
            let pos = OWN_HASHES + k;
            let pool_index = (paragraph.wrapping_mul(7) + k.wrapping_mul(13)) % POOL;
            entries.push(SelectedHash::new(pool_hash(pool_index), pos, pos..pos + 15));
        }
        Fingerprint::from_entries(entries)
    }

    /// The synthetic fingerprints of paragraphs `0..paragraphs`, in id
    /// order (the corpus [`build_store`] observes, materialised for
    /// callers that need the same fingerprints more than once).
    pub fn paragraph_fingerprints(paragraphs: usize) -> Vec<Fingerprint> {
        (0..paragraphs).map(paragraph_fingerprint).collect()
    }

    /// The corpus's observation threshold (what [`build_store`] passes).
    pub const fn threshold() -> f64 {
        THRESHOLD
    }

    /// Builds the store: `paragraphs` observations at threshold 0.5, in
    /// id order, so pool hashes are authoritative to the oldest holders.
    pub fn build_store(paragraphs: usize) -> FingerprintStore {
        let store = FingerprintStore::new();
        for i in 0..paragraphs {
            store.observe(
                SegmentId::new(i as u64),
                &paragraph_fingerprint(i),
                THRESHOLD,
            );
        }
        store
    }

    /// The target document's hash set: [`TARGET_HASHES_PER_SOURCE`]
    /// own-hashes from each of [`TARGET_SOURCES`] paragraphs sampled
    /// evenly across the store — a document quoting part of many stored
    /// sources at once, so candidate evaluation (not discovery) is the
    /// dominant cost.
    pub fn target_hashes(paragraphs: usize) -> HashSet<u32> {
        let step = (paragraphs / TARGET_SOURCES).max(1);
        let mut hashes = HashSet::new();
        for source in (0..paragraphs).step_by(step).take(TARGET_SOURCES) {
            for j in 0..TARGET_HASHES_PER_SOURCE {
                hashes.insert(own_hash(source, j));
            }
        }
        hashes
    }

    /// Runs one store size: builds the store, then times the probe-based
    /// reference against the indexed path on the identical check, keeping
    /// the best of [`ROUNDS`] passes each. Panics if the two
    /// implementations ever disagree on the reports.
    pub fn run_size(paragraphs: usize) -> SizeResult {
        let store = build_store(paragraphs);
        let target = target_hashes(paragraphs);
        let target_id = SegmentId::new(u64::MAX);

        let best_of = |f: &dyn Fn() -> f64| {
            f(); // warm-up
            (0..ROUNDS).map(|_| f()).fold(f64::INFINITY, f64::min)
        };

        let probe_reports = probe_disclosing_sources(&store, target_id, &target);
        let indexed_reports = store.disclosing_sources_of_hashes(target_id, &target);
        assert_eq!(
            probe_reports, indexed_reports,
            "probe and indexed implementations must agree"
        );

        let probe_ms = best_of(&|| {
            let start = Instant::now();
            std::hint::black_box(probe_disclosing_sources(&store, target_id, &target));
            start.elapsed().as_secs_f64() * 1e3
        });
        let indexed_ms = best_of(&|| {
            let start = Instant::now();
            std::hint::black_box(store.disclosing_sources_of_hashes(target_id, &target));
            start.elapsed().as_secs_f64() * 1e3
        });

        SizeResult {
            paragraphs,
            target_hashes: target.len(),
            reports: indexed_reports.len(),
            probe_ms,
            indexed_ms,
        }
    }

    /// Sweeps `sizes` (use [`STORE_SIZES`]) and returns one result each.
    pub fn run(sizes: &[usize]) -> Vec<SizeResult> {
        sizes.iter().map(|&n| run_size(n)).collect()
    }
}

/// Bulk-ingest microbench: the per-paragraph `observe` loop against one
/// [`FingerprintStore::observe_batch`] call over the same corpus.
///
/// Reuses [`algorithm1`]'s synthetic corpus so the hash distribution
/// (own hashes plus a shared boilerplate pool) matches the rest of the
/// evaluation. Each pass ingests into a fresh store; the batched store is
/// asserted observation-equivalent to the sequential one (same clock,
/// same sighting count, same segment count, same disclosure reports on
/// the Algorithm 1 target) before any timing is reported.
///
/// Two metrics come out per store size:
///
/// - wall time (best-of after a warm-up), where the batched path's win is
///   host-dependent — on a single core both paths are bound by the same
///   per-hash map work, so expect parity there and real wins only with
///   cores to spread stripes over;
/// - stripe lock round-trips, where the win is *deterministic*: the
///   per-paragraph loop pays one `DBhash` round-trip per hash plus one
///   `DBpar` round-trip per paragraph, while the batched pass pays one
///   per touched stripe. This is the ratio the CI floor gates.
pub mod ingest {
    use super::algorithm1;
    use browserflow_fingerprint::Fingerprint;
    use browserflow_store::{FingerprintStore, SegmentId};
    use std::time::Instant;

    /// Measured passes per implementation (best-of, after one warm-up).
    const ROUNDS: usize = 3;

    /// One store size's per-paragraph vs batched comparison.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeResult {
        /// Paragraphs ingested per pass.
        pub paragraphs: usize,
        /// First-sighting records each pass writes.
        pub hashes_recorded: u64,
        /// Best-of wall time of the per-paragraph `observe` loop, ms.
        pub per_paragraph_ms: f64,
        /// Best-of wall time of one `observe_batch` call, ms.
        pub batched_ms: f64,
        /// Stripe lock round-trips the per-paragraph loop pays (one per
        /// hash sighting plus one per segment upsert).
        pub per_paragraph_locks: u64,
        /// Stripe lock round-trips the batched pass paid (measured via
        /// the store's `batch_lock_acquisitions` counter).
        pub batched_locks: u64,
    }

    impl SizeResult {
        /// Wall-time ratio (>1 means batched is faster).
        pub fn wall_speedup(&self) -> f64 {
            self.per_paragraph_ms / self.batched_ms
        }

        /// Lock round-trip ratio (>1 means batched takes fewer).
        pub fn lock_reduction(&self) -> f64 {
            self.per_paragraph_locks as f64 / self.batched_locks as f64
        }
    }

    fn sequential_pass(prints: &[Fingerprint]) -> (FingerprintStore, f64) {
        let store = FingerprintStore::new();
        let start = Instant::now();
        for (i, print) in prints.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), print, algorithm1::threshold());
        }
        (store, start.elapsed().as_secs_f64() * 1e3)
    }

    fn batched_pass(prints: &[Fingerprint]) -> (FingerprintStore, f64) {
        let store = FingerprintStore::new();
        let entries: Vec<(SegmentId, &Fingerprint, f64)> = prints
            .iter()
            .enumerate()
            .map(|(i, print)| (SegmentId::new(i as u64), print, algorithm1::threshold()))
            .collect();
        let start = Instant::now();
        store.observe_batch(&entries);
        (store, start.elapsed().as_secs_f64() * 1e3)
    }

    fn assert_equivalent(batched: &FingerprintStore, sequential: &FingerprintStore, n: usize) {
        assert_eq!(batched.now(), sequential.now(), "clock advance differs");
        let b = batched.stats();
        let s = sequential.stats();
        assert_eq!(b.total_hashes(), s.total_hashes(), "DBhash size differs");
        assert_eq!(b.total_entries(), s.total_entries(), "DBpar size differs");
        let target = algorithm1::target_hashes(n);
        let target_id = SegmentId::new(u64::MAX);
        assert_eq!(
            batched.disclosing_sources_of_hashes(target_id, &target),
            sequential.disclosing_sources_of_hashes(target_id, &target),
            "disclosure reports differ between batched and sequential ingest"
        );
    }

    /// Runs one store size; panics if batched ingest is not
    /// observation-equivalent to the sequential loop.
    pub fn run_size(paragraphs: usize) -> SizeResult {
        let prints = algorithm1::paragraph_fingerprints(paragraphs);
        let hashes_recorded: u64 = prints
            .iter()
            .map(|p| p.distinct_hashes().len() as u64)
            .sum();

        // Warm-up pass of each shape, with the equivalence check on the
        // warm-up stores (every later pass repeats identical work).
        let (sequential_store, _) = sequential_pass(&prints);
        let (batched_store, _) = batched_pass(&prints);
        assert_equivalent(&batched_store, &sequential_store, paragraphs);
        let batched_locks = batched_store.stats().batch_lock_acquisitions;
        drop(sequential_store);
        drop(batched_store);

        let mut per_paragraph_ms = f64::INFINITY;
        let mut batched_ms = f64::INFINITY;
        for _ in 0..ROUNDS {
            per_paragraph_ms = per_paragraph_ms.min(sequential_pass(&prints).1);
            batched_ms = batched_ms.min(batched_pass(&prints).1);
        }

        SizeResult {
            paragraphs,
            hashes_recorded,
            per_paragraph_ms,
            batched_ms,
            // One DBhash round-trip per sighting, one DBpar round-trip
            // per upsert; the corpus is displacement-free, so no revokes.
            per_paragraph_locks: hashes_recorded + paragraphs as u64,
            batched_locks,
        }
    }

    /// Sweeps `sizes` (use [`algorithm1::STORE_SIZES`]).
    pub fn run(sizes: &[usize]) -> Vec<SizeResult> {
        sizes.iter().map(|&n| run_size(n)).collect()
    }
}

/// Restart-latency microbench for the tiered persistence redesign.
///
/// Persists one synthetic store (reusing [`algorithm1`]'s corpus) twice —
/// as a plain v2 directory and as a v3 cold-shard directory — then times
/// what a daemon restart actually pays two ways: the open alone, and the
/// open plus the first document-wide disclosure check. The v2 path decodes
/// every record into the hot tier; the v3 path validates headers and CRCs
/// and maps the shard files in place ([`TierMode::Cold`]), so its open
/// cost is checksum-bound rather than decode-bound.
///
/// Every run also asserts that the cold store's disclosure reports are
/// identical to the in-memory reference the files were persisted from —
/// the speedup is only meaningful if the mapped tier answers exactly like
/// the decoded one.
pub mod tiered {
    use super::algorithm1;
    use browserflow_store::{
        FingerprintStore, PersistOptions, SegmentId, StoreFormat, StoreOpenOptions, StoreStats,
        TierMode,
    };
    use std::path::{Path, PathBuf};
    use std::time::Instant;

    /// Measured passes per open path (best-of, after one warm-up).
    const ROUNDS: usize = 3;

    /// One store size's v2-decode vs v3-map restart comparison.
    #[derive(Debug, Clone)]
    pub struct SizeResult {
        /// Paragraphs persisted.
        pub paragraphs: usize,
        /// Best-of-[`ROUNDS`] full-decode open of the v2 directory, ms.
        pub v2_open_ms: f64,
        /// Best-of-[`ROUNDS`] cold (mapped) open of the v3 directory, ms.
        pub cold_open_ms: f64,
        /// v2 open plus first document-wide check, ms (best-of).
        pub v2_first_check_ms: f64,
        /// Cold open plus first document-wide check, ms (best-of).
        pub cold_first_check_ms: f64,
        /// Sources the check reports (identical hot and cold, asserted).
        pub reports: usize,
        /// Store stats of the cold-opened store (occupancy proxy: how much
        /// of the snapshot is served from mapped files vs decoded memory).
        pub cold_stats: StoreStats,
    }

    impl SizeResult {
        /// v2-decode / v3-map open-time ratio — the CI-gated number.
        pub fn open_speedup(&self) -> f64 {
            self.v2_open_ms / self.cold_open_ms
        }

        /// Restart-to-first-verdict ratio (open + first check).
        pub fn first_check_speedup(&self) -> f64 {
            self.v2_first_check_ms / self.cold_first_check_ms
        }
    }

    /// A scratch directory under the system temp dir, unique per process.
    pub fn scratch_dir() -> PathBuf {
        std::env::temp_dir().join(format!("bf-bench-tiered-{}", std::process::id()))
    }

    fn timed_ms(f: &dyn Fn()) -> f64 {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64() * 1e3
    }

    fn best_of(f: &dyn Fn()) -> f64 {
        f(); // warm-up (page cache, allocator)
        (0..ROUNDS)
            .map(|_| timed_ms(f))
            .fold(f64::INFINITY, f64::min)
    }

    /// Runs one store size: builds the corpus, persists it v2 and v3 under
    /// `scratch`, asserts cold/hot report equivalence, then times the four
    /// restart paths. Panics on any persistence or equivalence failure.
    pub fn run_size(paragraphs: usize, scratch: &Path) -> SizeResult {
        let store = algorithm1::build_store(paragraphs);
        let target = algorithm1::target_hashes(paragraphs);
        let target_id = SegmentId::new(u64::MAX);
        let expected = store.disclosing_sources_of_hashes(target_id, &target);

        let v2_dir = scratch.join(format!("v2-{paragraphs}"));
        let v3_dir = scratch.join(format!("v3-{paragraphs}"));
        PersistOptions::new()
            .persist(&store, &v2_dir)
            .expect("persist v2 snapshot");
        PersistOptions::new()
            .format(StoreFormat::V3)
            .persist(&store, &v3_dir)
            .expect("persist v3 snapshot");
        drop(store);

        let open_v2 = || -> FingerprintStore {
            StoreOpenOptions::new()
                .open(&v2_dir)
                .expect("open v2 snapshot")
                .0
        };
        let open_cold = || -> FingerprintStore {
            StoreOpenOptions::new()
                .tier(TierMode::Cold)
                .open(&v3_dir)
                .expect("cold-open v3 snapshot")
                .0
        };

        // Equivalence gate: the mapped tier must answer exactly like the
        // decoded reference before any of its timings count.
        let cold = open_cold();
        let cold_reports = cold.disclosing_sources_of_hashes(target_id, &target);
        assert_eq!(
            expected, cold_reports,
            "cold-tier disclosure reports must match the hot reference"
        );
        let cold_stats = cold.stats();
        assert!(
            cold_stats.cold_shards > 0,
            "v3 cold open must serve at least one mapped shard"
        );
        drop(cold);

        let v2_open_ms = best_of(&|| {
            std::hint::black_box(open_v2().segment_count());
        });
        let cold_open_ms = best_of(&|| {
            std::hint::black_box(open_cold().segment_count());
        });
        let v2_first_check_ms = best_of(&|| {
            let store = open_v2();
            std::hint::black_box(store.disclosing_sources_of_hashes(target_id, &target));
        });
        let cold_first_check_ms = best_of(&|| {
            let store = open_cold();
            std::hint::black_box(store.disclosing_sources_of_hashes(target_id, &target));
        });

        let _ = std::fs::remove_dir_all(&v2_dir);
        let _ = std::fs::remove_dir_all(&v3_dir);

        SizeResult {
            paragraphs,
            v2_open_ms,
            cold_open_ms,
            v2_first_check_ms,
            cold_first_check_ms,
            reports: expected.len(),
            cold_stats,
        }
    }

    /// Sweeps `sizes` (use [`algorithm1::STORE_SIZES`]) under one scratch
    /// directory, removing it afterwards.
    pub fn run(sizes: &[usize]) -> Vec<SizeResult> {
        let scratch = scratch_dir();
        std::fs::create_dir_all(&scratch).expect("create bench scratch dir");
        let results = sizes.iter().map(|&n| run_size(n, &scratch)).collect();
        let _ = std::fs::remove_dir_all(&scratch);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_small() {
        // Note: avoid mutating the environment in tests; just check the
        // default path when BF_SCALE is unset or unrecognised.
        if std::env::var("BF_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
        assert!(Scale::Small.wikipedia().articles <= Scale::Paper.wikipedia().articles);
        assert!(Scale::Small.ebooks().books <= Scale::Paper.ebooks().books);
    }

    #[test]
    fn disclosed_fraction_full_and_none() {
        let fp = paper_fingerprinter();
        let text = "a reasonably long paragraph with enough characters to fingerprint well \
                    and then some more text to be safe";
        let base = vec![fp.fingerprint(text)];
        let same = fp.fingerprint(text);
        assert_eq!(disclosed_fraction(&base, &same, 0.5), 1.0);
        let other = fp.fingerprint(
            "totally different content about completely unrelated topics and words \
             that share nothing with the base paragraph at all",
        );
        assert_eq!(disclosed_fraction(&base, &other, 0.5), 0.0);
        assert_eq!(disclosed_indices(&base, &same, 0.5), vec![0]);
    }

    #[test]
    fn empty_fingerprints_are_ignored() {
        let fp = paper_fingerprinter();
        let base = vec![fp.fingerprint("tiny"), fp.fingerprint("also tiny")];
        let revision = fp.fingerprint("tiny");
        // All base paragraphs have empty fingerprints -> fraction 0, not NaN.
        assert_eq!(disclosed_fraction(&base, &revision, 0.0), 0.0);
    }
}
