//! The browser: tabs, clipboard, service backends, and the global
//! interception points.

use crate::dom::Document;
use crate::forms::{Form, SubmitEvent, SubmitListener};
use crate::mutation::ObserverRegistry;
use crate::services::Backend;
use crate::xhr::{SendResult, XhrPrototype, XhrRequest};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies an open tab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TabId(usize);

/// One browser tab: an origin plus its DOM document and observers.
#[derive(Debug)]
pub struct Tab {
    origin: String,
    document: Document,
    observers: ObserverRegistry,
}

impl Tab {
    /// The tab's origin (e.g. `https://docs.example.com`).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The tab's document.
    pub fn document(&self) -> &Document {
        &self.document
    }

    /// Mutable access to the document.
    pub fn document_mut(&mut self) -> &mut Document {
        &mut self.document
    }

    /// The tab's mutation observer registry.
    pub fn observers_mut(&mut self) -> &mut ObserverRegistry {
        &mut self.observers
    }

    /// Delivers any queued mutations to this tab's observers.
    pub fn flush_mutations(&mut self) {
        self.observers.deliver(&mut self.document);
    }
}

/// The simulated browser instance that BrowserFlow plugs into.
///
/// Owns the open [`Tab`]s, the clipboard, the per-origin service
/// [`Backend`]s (the "remote servers"), the global [`XhrPrototype`]
/// interception point and the form submit-listener chain.
///
/// # Example
///
/// ```rust
/// use browserflow_browser::Browser;
///
/// let mut browser = Browser::new();
/// let tab = browser.open_tab("https://wiki.internal");
/// browser.copy("some paragraph text");
/// assert_eq!(browser.paste(), Some("some paragraph text".to_string()));
/// assert_eq!(browser.tab(tab).origin(), "https://wiki.internal");
/// ```
#[derive(Default)]
pub struct Browser {
    tabs: Vec<Tab>,
    clipboard: Option<String>,
    backends: HashMap<String, Arc<Backend>>,
    xhr: XhrPrototype,
    submit_listeners: Vec<SubmitListener>,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("tabs", &self.tabs.len())
            .field("backends", &self.backends.len())
            .field("xhr", &self.xhr)
            .field("submit_listeners", &self.submit_listeners.len())
            .finish()
    }
}

impl Browser {
    /// Creates a browser with no tabs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a tab on `origin` with an empty document, creating the
    /// origin's backend if it does not exist yet.
    pub fn open_tab(&mut self, origin: impl Into<String>) -> TabId {
        let origin = origin.into();
        self.backend(&origin); // ensure the backend exists
        let id = TabId(self.tabs.len());
        self.tabs.push(Tab {
            origin,
            document: Document::new(),
            observers: ObserverRegistry::new(),
        });
        id
    }

    /// Opens a tab and loads `html` into its document.
    pub fn open_tab_with_html(&mut self, origin: impl Into<String>, html: &str) -> TabId {
        let id = self.open_tab(origin);
        let tab = &mut self.tabs[id.0];
        let root = tab.document.root();
        crate::html::parse_into(&mut tab.document, root, html);
        tab.document.take_mutations(); // page load is not a user mutation
        id
    }

    /// Navigates a tab to a new origin, replacing its document with the
    /// parsed `html`. As in a real browser, navigation tears down the
    /// page's mutation observers — plug-ins must re-attach.
    pub fn navigate(&mut self, tab: TabId, origin: impl Into<String>, html: &str) {
        let origin = origin.into();
        self.backend(&origin); // ensure the backend exists
        let entry = &mut self.tabs[tab.0];
        entry.origin = origin;
        entry.document = Document::new();
        entry.observers = ObserverRegistry::new();
        let root = entry.document.root();
        crate::html::parse_into(&mut entry.document, root, html);
        entry.document.take_mutations();
    }

    /// Number of open tabs.
    pub fn tab_count(&self) -> usize {
        self.tabs.len()
    }

    /// Read access to a tab.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn tab(&self, id: TabId) -> &Tab {
        &self.tabs[id.0]
    }

    /// Mutable access to a tab.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn tab_mut(&mut self, id: TabId) -> &mut Tab {
        &mut self.tabs[id.0]
    }

    /// The backend ("remote server") for `origin`, created on first use.
    pub fn backend(&mut self, origin: &str) -> Arc<Backend> {
        Arc::clone(
            self.backends
                .entry(origin.to_string())
                .or_insert_with(|| Arc::new(Backend::new(origin))),
        )
    }

    /// Copies text to the clipboard.
    pub fn copy(&mut self, text: impl Into<String>) {
        self.clipboard = Some(text.into());
    }

    /// Reads the clipboard.
    pub fn paste(&self) -> Option<String> {
        self.clipboard.clone()
    }

    /// Installs a hook in the `XMLHttpRequest.prototype.send` slot.
    pub fn install_xhr_hook(&mut self, hook: crate::xhr::SendHook) {
        self.xhr.install_hook(hook);
    }

    /// Registers a global form submit listener.
    pub fn add_submit_listener(&mut self, listener: SubmitListener) {
        self.submit_listeners.push(listener);
    }

    /// Sends an XHR through the hook chain; if allowed, the final body is
    /// recorded by the destination origin's backend.
    pub fn xhr_send(&mut self, request: XhrRequest) -> SendResult {
        let url = request.url.clone();
        let result = self.xhr.dispatch(request);
        if let SendResult::Delivered { body } = &result {
            self.backend(&url).record_xhr(body.clone());
        }
        result
    }

    /// Submits a form snapshot: listeners run first (and may cancel or
    /// rewrite); if not cancelled, the encoded form is recorded by the
    /// action origin's backend.
    pub fn submit_form(&mut self, form: Form) -> SendResult {
        let mut event = SubmitEvent::new(form);
        for listener in &mut self.submit_listeners {
            listener(&mut event);
            if event.is_cancelled() {
                return SendResult::Blocked {
                    reason: event
                        .cancel_reason()
                        .unwrap_or("submission suppressed")
                        .to_string(),
                };
            }
        }
        let form = event.into_form();
        let body = form.encode();
        self.backend(&form.action).record_form(body.clone());
        SendResult::Delivered { body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forms::FormField;
    use crate::xhr::XhrDisposition;

    #[test]
    fn open_tabs_and_backends() {
        let mut browser = Browser::new();
        let a = browser.open_tab("https://a");
        let b = browser.open_tab("https://b");
        assert_ne!(a, b);
        assert_eq!(browser.tab_count(), 2);
        assert_eq!(browser.tab(a).origin(), "https://a");
        // Backends are shared per origin.
        let backend_1 = browser.backend("https://a");
        let backend_2 = browser.backend("https://a");
        assert!(Arc::ptr_eq(&backend_1, &backend_2));
    }

    #[test]
    fn xhr_delivery_reaches_backend() {
        let mut browser = Browser::new();
        browser.xhr_send(XhrRequest::post("https://svc", "payload one"));
        let backend = browser.backend("https://svc");
        assert_eq!(backend.upload_count(), 1);
        assert!(backend.saw_text("payload one"));
    }

    #[test]
    fn blocked_xhr_never_reaches_backend() {
        let mut browser = Browser::new();
        browser.install_xhr_hook(Box::new(|r| {
            if r.body.contains("secret") {
                XhrDisposition::Block {
                    reason: "leak".into(),
                }
            } else {
                XhrDisposition::Allow
            }
        }));
        let result = browser.xhr_send(XhrRequest::post("https://svc", "a secret thing"));
        assert!(!result.is_delivered());
        assert_eq!(browser.backend("https://svc").upload_count(), 0);
    }

    #[test]
    fn rewritten_xhr_records_rewritten_body() {
        let mut browser = Browser::new();
        browser.install_xhr_hook(Box::new(|r| XhrDisposition::Rewrite {
            body: format!("enc({})", r.body),
        }));
        browser.xhr_send(XhrRequest::post("https://svc", "plain"));
        let backend = browser.backend("https://svc");
        assert!(backend.saw_text("enc(plain)"));
        assert!(!backend.saw_text_exactly("plain"));
    }

    #[test]
    fn submit_listener_can_cancel() {
        let mut browser = Browser::new();
        browser.add_submit_listener(Box::new(|event| {
            let leaky = event
                .form()
                .visible_fields()
                .any(|f| f.value.contains("confidential"));
            if leaky {
                event.prevent_default("policy violation");
            }
        }));
        let form = Form {
            action: "https://wiki".into(),
            fields: vec![FormField {
                name: "content".into(),
                value: "confidential rubric".into(),
                hidden: false,
            }],
        };
        let result = browser.submit_form(form);
        assert_eq!(
            result,
            SendResult::Blocked {
                reason: "policy violation".into()
            }
        );
        assert_eq!(browser.backend("https://wiki").upload_count(), 0);
    }

    #[test]
    fn clean_submission_is_recorded() {
        let mut browser = Browser::new();
        let form = Form {
            action: "https://wiki".into(),
            fields: vec![FormField {
                name: "content".into(),
                value: "public notes".into(),
                hidden: false,
            }],
        };
        assert!(browser.submit_form(form).is_delivered());
        assert!(browser.backend("https://wiki").saw_text("public notes"));
    }

    #[test]
    fn navigation_resets_document_and_observers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut browser = Browser::new();
        let tab = browser.open_tab_with_html("https://a", "<p>old page</p>");
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_cb = Arc::clone(&fired);
        let root = browser.tab(tab).document().root();
        browser.tab_mut(tab).observers_mut().observe(
            root,
            Box::new(move |_, records| {
                fired_cb.fetch_add(records.len(), Ordering::SeqCst);
            }),
        );
        browser.navigate(tab, "https://b", "<p>new page</p>");
        assert_eq!(browser.tab(tab).origin(), "https://b");
        assert_eq!(
            browser
                .tab(tab)
                .document()
                .text_content(browser.tab(tab).document().root()),
            "new page"
        );
        // The old observer is gone; mutations on the new page fire nothing.
        let new_root = browser.tab(tab).document().root();
        let p = browser.tab_mut(tab).document_mut().create_element("p");
        browser
            .tab_mut(tab)
            .document_mut()
            .append_child(new_root, p);
        browser.tab_mut(tab).flush_mutations();
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn clipboard_roundtrip() {
        let mut browser = Browser::new();
        assert_eq!(browser.paste(), None);
        browser.copy("x");
        assert_eq!(browser.paste(), Some("x".into()));
    }
}
