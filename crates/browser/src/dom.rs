//! An arena-based DOM tree with queued mutation records.
//!
//! Mutations performed through [`Document`] methods are appended to a
//! mutation queue; observers ([`crate::mutation::ObserverRegistry`]) drain that queue
//! asynchronously, exactly like the microtask-based delivery of real DOM
//! mutation observers. This is the property the BrowserFlow plug-in relies
//! on: "since interception occurs in the browser, every modification to
//! the DOM tree is visible" (§5.2).

use std::collections::HashMap;

/// Identifies a node within one [`Document`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw arena index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// What kind of node this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element like `<p>` or `<div>`, with attributes.
    Element {
        /// Lowercase tag name.
        tag: String,
        /// Attribute map (`id`, `class`, ...).
        attrs: HashMap<String, String>,
    },
    /// A text node.
    Text(String),
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    kind: NodeKind,
    detached: bool,
}

/// A queued DOM mutation, in document order of occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationRecord {
    /// A child was appended or inserted under `parent`.
    ChildAdded {
        /// The parent element.
        parent: NodeId,
        /// The node that was added.
        child: NodeId,
    },
    /// A child was removed from `parent`.
    ChildRemoved {
        /// The parent element.
        parent: NodeId,
        /// The node that was removed (now detached).
        child: NodeId,
    },
    /// A text node's content changed.
    TextChanged {
        /// The text node.
        node: NodeId,
    },
}

impl MutationRecord {
    /// The node whose ancestors determine which observers see this record.
    pub fn anchor(&self) -> NodeId {
        match self {
            MutationRecord::ChildAdded { parent, .. } => *parent,
            MutationRecord::ChildRemoved { parent, .. } => *parent,
            MutationRecord::TextChanged { node } => *node,
        }
    }
}

/// A DOM document: an arena of nodes rooted at [`Document::root`].
///
/// # Example
///
/// ```rust
/// use browserflow_browser::dom::Document;
///
/// let mut doc = Document::new();
/// let root = doc.root();
/// let p = doc.create_element("p");
/// let text = doc.create_text("Hello");
/// doc.append_child(p, text);
/// doc.append_child(root, p);
/// assert_eq!(doc.text_content(root), "Hello");
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    pending_mutations: Vec<MutationRecord>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates a document with an empty `<html>` root element.
    pub fn new() -> Self {
        let root_node = Node {
            parent: None,
            children: Vec::new(),
            kind: NodeKind::Element {
                tag: "html".into(),
                attrs: HashMap::new(),
            },
            detached: false,
        };
        Self {
            nodes: vec![root_node],
            root: NodeId(0),
            pending_mutations: Vec::new(),
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, tag: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Element {
            tag: tag.into().to_ascii_lowercase(),
            attrs: HashMap::new(),
        })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text(text.into()))
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            parent: None,
            children: Vec::new(),
            kind,
            detached: true,
        });
        id
    }

    /// Appends `child` as the last child of `parent` and queues a
    /// mutation record.
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent, if `parent` is a text node,
    /// or if either id is stale.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        self.insert_child(parent, child, usize::MAX);
    }

    /// Inserts `child` under `parent` at `index` (clamped to the child
    /// count) and queues a mutation record.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Document::append_child`].
    pub fn insert_child(&mut self, parent: NodeId, child: NodeId, index: usize) {
        assert!(
            matches!(self.node(parent).kind, NodeKind::Element { .. }),
            "parent must be an element"
        );
        assert!(
            self.node(child).parent.is_none(),
            "child already has a parent"
        );
        let index = index.min(self.node(parent).children.len());
        self.nodes[parent.0].children.insert(index, child);
        self.nodes[child.0].parent = Some(parent);
        self.nodes[child.0].detached = false;
        self.pending_mutations
            .push(MutationRecord::ChildAdded { parent, child });
    }

    /// Removes `child` from its parent, detaching its whole subtree, and
    /// queues a mutation record.
    ///
    /// # Panics
    ///
    /// Panics if `child` has no parent.
    pub fn remove_child(&mut self, child: NodeId) {
        let parent = self.node(child).parent.expect("node has no parent");
        self.nodes[parent.0].children.retain(|&c| c != child);
        self.nodes[child.0].parent = None;
        self.mark_detached(child);
        self.pending_mutations
            .push(MutationRecord::ChildRemoved { parent, child });
    }

    fn mark_detached(&mut self, node: NodeId) {
        self.nodes[node.0].detached = true;
        let children = self.nodes[node.0].children.clone();
        for child in children {
            self.mark_detached(child);
        }
    }

    /// Replaces the content of a text node and queues a mutation record.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a text node.
    pub fn set_text(&mut self, node: NodeId, text: impl Into<String>) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Text(content) => *content = text.into(),
            NodeKind::Element { .. } => panic!("set_text on an element node"),
        }
        self.pending_mutations
            .push(MutationRecord::TextChanged { node });
    }

    /// Sets an attribute on an element.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a text node.
    pub fn set_attr(&mut self, node: NodeId, name: impl Into<String>, value: impl Into<String>) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Element { attrs, .. } => {
                attrs.insert(name.into().to_ascii_lowercase(), value.into());
            }
            NodeKind::Text(_) => panic!("set_attr on a text node"),
        }
    }

    /// Reads an attribute.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        match &self.node(node).kind {
            NodeKind::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            NodeKind::Text(_) => None,
        }
    }

    /// The element's tag name, or `None` for text nodes.
    pub fn tag(&self, node: NodeId) -> Option<&str> {
        match &self.node(node).kind {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// The node's kind.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.node(node).kind
    }

    /// The node's parent.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.node(node).parent
    }

    /// The node's children, in order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.node(node).children
    }

    /// Whether the node is detached from the tree.
    pub fn is_detached(&self, node: NodeId) -> bool {
        self.node(node).detached
    }

    /// Whether `ancestor` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut current = Some(node);
        while let Some(id) = current {
            if id == ancestor {
                return true;
            }
            current = self.node(id).parent;
        }
        false
    }

    /// Depth-first iteration over the subtree rooted at `node`.
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &child in self.node(id).children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Concatenated text of all text nodes under `node`, joined with
    /// single spaces where element boundaries separate them.
    pub fn text_content(&self, node: NodeId) -> String {
        let mut parts = Vec::new();
        for id in self.descendants(node) {
            if let NodeKind::Text(text) = &self.node(id).kind {
                if !text.trim().is_empty() {
                    parts.push(text.trim().to_string());
                }
            }
        }
        parts.join(" ")
    }

    /// All elements with the given tag under `node` (inclusive).
    pub fn elements_by_tag(&self, node: NodeId, tag: &str) -> Vec<NodeId> {
        self.descendants(node)
            .into_iter()
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// First element (if any) whose `id` attribute equals `value`.
    pub fn element_by_id(&self, value: &str) -> Option<NodeId> {
        self.descendants(self.root)
            .into_iter()
            .find(|&id| self.attr(id, "id") == Some(value))
    }

    /// Drains the queued mutation records.
    ///
    /// Observers are expected to call this through
    /// [`crate::mutation::ObserverRegistry::deliver`], which routes each
    /// record to the observers watching an ancestor of its anchor.
    pub fn take_mutations(&mut self) -> Vec<MutationRecord> {
        std::mem::take(&mut self.pending_mutations)
    }

    /// Number of queued, undelivered mutation records.
    pub fn pending_mutation_count(&self) -> usize {
        self.pending_mutations.len()
    }

    /// Number of nodes ever created (the arena never shrinks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId) {
        let mut doc = Document::new();
        let p = doc.create_element("p");
        let text = doc.create_text("hello");
        doc.append_child(p, text);
        let root = doc.root();
        doc.append_child(root, p);
        (doc, p, text)
    }

    #[test]
    fn build_and_read_tree() {
        let (doc, p, text) = sample();
        assert_eq!(doc.tag(p), Some("p"));
        assert_eq!(doc.parent(text), Some(p));
        assert_eq!(doc.children(p), &[text]);
        assert_eq!(doc.text_content(doc.root()), "hello");
        assert!(!doc.is_detached(p));
    }

    #[test]
    fn text_content_joins_across_elements() {
        let mut doc = Document::new();
        let root = doc.root();
        for word in ["alpha", "beta"] {
            let span = doc.create_element("span");
            let t = doc.create_text(word);
            doc.append_child(span, t);
            doc.append_child(root, span);
        }
        assert_eq!(doc.text_content(root), "alpha beta");
    }

    #[test]
    fn mutations_are_queued_in_order() {
        let (mut doc, p, text) = sample();
        doc.take_mutations();
        doc.set_text(text, "edited");
        doc.remove_child(p);
        let records = doc.take_mutations();
        assert_eq!(
            records,
            vec![
                MutationRecord::TextChanged { node: text },
                MutationRecord::ChildRemoved {
                    parent: doc.root(),
                    child: p
                },
            ]
        );
        assert_eq!(doc.pending_mutation_count(), 0);
    }

    #[test]
    fn removal_detaches_whole_subtree() {
        let (mut doc, p, text) = sample();
        doc.remove_child(p);
        assert!(doc.is_detached(p));
        assert!(doc.is_detached(text));
        assert_eq!(doc.text_content(doc.root()), "");
    }

    #[test]
    fn insert_child_at_index() {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        doc.append_child(root, a);
        doc.append_child(root, c);
        doc.insert_child(root, b, 1);
        let tags: Vec<&str> = doc
            .children(root)
            .iter()
            .map(|&id| doc.tag(id).unwrap())
            .collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
    }

    #[test]
    fn ancestor_checks() {
        let (doc, p, text) = sample();
        assert!(doc.is_ancestor_or_self(doc.root(), text));
        assert!(doc.is_ancestor_or_self(p, text));
        assert!(doc.is_ancestor_or_self(text, text));
        assert!(!doc.is_ancestor_or_self(text, p));
    }

    #[test]
    fn attributes_and_id_lookup() {
        let (mut doc, p, _) = sample();
        doc.set_attr(p, "ID", "main");
        assert_eq!(doc.attr(p, "id"), Some("main"));
        assert_eq!(doc.element_by_id("main"), Some(p));
        assert_eq!(doc.element_by_id("missing"), None);
    }

    #[test]
    #[should_panic(expected = "child already has a parent")]
    fn double_append_panics() {
        let (mut doc, p, _) = sample();
        let root = doc.root();
        doc.append_child(root, p);
    }

    #[test]
    #[should_panic(expected = "set_text on an element")]
    fn set_text_on_element_panics() {
        let (mut doc, p, _) = sample();
        doc.set_text(p, "nope");
    }
}
