//! Readability-style main-text extraction (§5.1).
//!
//! "The BrowserFlow plug-in inspects the DOM tree of each page after
//! loading, searching for HTML elements with significant text. We apply a
//! set of heuristics to rank elements according to how much 'interesting'
//! text they contain and select the element with the highest score. These
//! heuristics reward the existence of `<p>` tags, text that contains
//! commas, and id attributes which have known representative values such
//! as `article`. Similarly, they penalise bad class attribute names such
//! as `footer` or `meta` and high number of links over text length."

use crate::dom::{Document, NodeId, NodeKind};

/// id/class substrings that suggest main content.
const POSITIVE_HINTS: &[&str] = &[
    "article", "content", "main", "post", "body", "entry", "text", "story",
];

/// id/class substrings that suggest boilerplate.
const NEGATIVE_HINTS: &[&str] = &[
    "footer", "meta", "nav", "sidebar", "comment", "banner", "ad", "menu", "header", "promo",
];

/// Container tags eligible to be "the" content element.
const CANDIDATE_TAGS: &[&str] = &["div", "article", "section", "main", "td", "body"];

/// The scored extraction result.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// The winning element.
    pub element: NodeId,
    /// Its heuristic score.
    pub score: f64,
    /// The extracted text (all HTML structure removed).
    pub text: String,
    /// One entry per `<p>` under the winning element, for paragraph-level
    /// tracking.
    pub paragraphs: Vec<String>,
}

/// Scores one candidate element.
pub fn score_element(doc: &Document, element: NodeId) -> f64 {
    let text = doc.text_content(element);
    if text.len() < 25 {
        return 0.0;
    }
    let mut score = 0.0;

    // Reward <p> descendants.
    let paragraph_count = doc.elements_by_tag(element, "p").len();
    score += paragraph_count as f64 * 25.0;

    // Reward commas (prose marker).
    score += text.matches(',').count() as f64 * 3.0;

    // Reward text mass, capped so one huge blob cannot dominate hints.
    score += (text.len() as f64 / 100.0).min(30.0);

    // id/class hints.
    for attr_name in ["id", "class"] {
        if let Some(value) = doc.attr(element, attr_name) {
            let value = value.to_ascii_lowercase();
            if POSITIVE_HINTS.iter().any(|h| value.contains(h)) {
                score += 40.0;
            }
            if NEGATIVE_HINTS.iter().any(|h| value.contains(h)) {
                score -= 60.0;
            }
        }
    }

    // Penalise link-heavy elements.
    let link_text: usize = doc
        .elements_by_tag(element, "a")
        .iter()
        .map(|&a| doc.text_content(a).len())
        .sum();
    let link_density = link_text as f64 / text.len() as f64;
    score *= 1.0 - link_density.min(1.0);

    score.max(0.0)
}

/// Extracts the most interesting text element of the page, or `None` when
/// no candidate scores above zero.
///
/// # Example
///
/// ```rust
/// use browserflow_browser::{extract, html};
///
/// let doc = html::parse(
///     "<div class='nav'><a href='/'>Home</a> <a href='/x'>More</a></div>\
///      <div id='article'><p>Interesting prose, with commas, and length enough to matter.</p>\
///      <p>Another thoughtful paragraph, also with a comma.</p></div>\
///      <div class='footer'>(c) 2016</div>",
/// );
/// let extraction = extract::extract_main_text(&doc).unwrap();
/// assert!(extraction.text.contains("Interesting prose"));
/// assert_eq!(extraction.paragraphs.len(), 2);
/// ```
pub fn extract_main_text(doc: &Document) -> Option<Extraction> {
    let mut best: Option<(NodeId, f64)> = None;
    for id in doc.descendants(doc.root()) {
        let NodeKind::Element { tag, .. } = doc.kind(id) else {
            continue;
        };
        if !CANDIDATE_TAGS.contains(&tag.as_str()) {
            continue;
        }
        let score = score_element(doc, id);
        if score > 0.0 && best.map(|(_, s)| score > s).unwrap_or(true) {
            best = Some((id, score));
        }
    }
    let (element, score) = best?;
    let paragraphs: Vec<String> = doc
        .elements_by_tag(element, "p")
        .iter()
        .map(|&p| doc.text_content(p))
        .filter(|t| !t.is_empty())
        .collect();
    Some(Extraction {
        element,
        score,
        text: doc.text_content(element),
        paragraphs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse;

    const PROSE: &str = "This paragraph discusses, at considerable length, the internal \
                         interview guidelines, the evaluation criteria, and the scoring rubric.";

    #[test]
    fn prefers_content_div_over_nav_and_footer() {
        let doc = parse(&format!(
            "<div id='nav'><a href='/a'>A</a><a href='/b'>B</a><a href='/c'>C</a></div>\
             <div id='content'><p>{PROSE}</p><p>{PROSE}</p></div>\
             <div class='footer'>Copyright, legal, address, phone, imprint, notices.</div>"
        ));
        let extraction = extract_main_text(&doc).unwrap();
        assert_eq!(doc.attr(extraction.element, "id"), Some("content"));
        assert_eq!(extraction.paragraphs.len(), 2);
    }

    #[test]
    fn link_density_penalises_menus() {
        let doc = parse(&format!(
            "<div id='menu'><a href='/1'>{PROSE}</a><a href='/2'>{PROSE}</a></div>\
             <div id='story'><p>{PROSE}</p></div>"
        ));
        let extraction = extract_main_text(&doc).unwrap();
        assert_eq!(doc.attr(extraction.element, "id"), Some("story"));
    }

    #[test]
    fn returns_none_for_empty_pages() {
        assert!(extract_main_text(&parse("")).is_none());
        assert!(extract_main_text(&parse("<div>tiny</div>")).is_none());
    }

    #[test]
    fn positive_id_hint_beats_plain_div() {
        let doc = parse(&format!(
            "<div><p>{PROSE}</p></div><div id='article-main'><p>{PROSE}</p></div>"
        ));
        let extraction = extract_main_text(&doc).unwrap();
        assert_eq!(doc.attr(extraction.element, "id"), Some("article-main"));
    }

    #[test]
    fn paragraphs_exclude_empty_ps() {
        let doc = parse(&format!(
            "<div id='content'><p>{PROSE}</p><p>  </p><p>{PROSE}</p></div>"
        ));
        let extraction = extract_main_text(&doc).unwrap();
        assert_eq!(extraction.paragraphs.len(), 2);
    }

    #[test]
    fn score_is_zero_for_short_text() {
        let doc = parse("<div id='content'><p>short</p></div>");
        let div = doc.element_by_id("content").unwrap();
        assert_eq!(score_element(&doc, div), 0.0);
    }
}
