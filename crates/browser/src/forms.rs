//! HTML forms with interceptable submit events (§5.1).
//!
//! "BrowserFlow intercepts outgoing data transfers via HTML forms. It adds
//! an event listener for the submit event of the `<form>` elements of web
//! pages. When a user submits a form, the listener suppresses the outgoing
//! web request, inspects all non-hidden `<input>` elements in the form and
//! extracts their value attributes. If the action is not found to leak
//! sensitive data according to the TDM, the listener allows the submit
//! event to trigger the form submission."

use crate::dom::{Document, NodeId};

/// One field of a form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    /// The input's `name` attribute.
    pub name: String,
    /// The input's current `value`.
    pub value: String,
    /// Whether the input is `type="hidden"`. Plug-in listeners only
    /// inspect *non-hidden* inputs, per the paper.
    pub hidden: bool,
}

/// A form snapshot extracted from the DOM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Form {
    /// Destination origin (the form's `action`).
    pub action: String,
    /// The form's fields in document order.
    pub fields: Vec<FormField>,
}

impl Form {
    /// Extracts a form from a `<form>` element: its `action` attribute and
    /// all descendant `<input>` and `<textarea>` elements.
    ///
    /// # Panics
    ///
    /// Panics if `form` is not a `<form>` element.
    pub fn from_dom(doc: &Document, form: NodeId) -> Self {
        assert_eq!(doc.tag(form), Some("form"), "node is not a <form>");
        let action = doc.attr(form, "action").unwrap_or("").to_string();
        let mut fields = Vec::new();
        for id in doc.descendants(form) {
            match doc.tag(id) {
                Some("input") => fields.push(FormField {
                    name: doc.attr(id, "name").unwrap_or("").to_string(),
                    value: doc.attr(id, "value").unwrap_or("").to_string(),
                    hidden: doc.attr(id, "type") == Some("hidden"),
                }),
                Some("textarea") => fields.push(FormField {
                    name: doc.attr(id, "name").unwrap_or("").to_string(),
                    value: doc.text_content(id),
                    hidden: false,
                }),
                _ => {}
            }
        }
        Self { action, fields }
    }

    /// The visible (non-hidden) fields — what plug-in listeners inspect.
    pub fn visible_fields(&self) -> impl Iterator<Item = &FormField> {
        self.fields.iter().filter(|f| !f.hidden)
    }

    /// Encodes the form as an `application/x-www-form-urlencoded`-style
    /// body (without percent-escaping; the simulated transport carries
    /// plain strings).
    pub fn encode(&self) -> String {
        self.fields
            .iter()
            .map(|f| format!("{}={}", f.name, f.value))
            .collect::<Vec<_>>()
            .join("&")
    }
}

/// A cancellable submit event handed to listeners.
#[derive(Debug)]
pub struct SubmitEvent {
    form: Form,
    cancelled: bool,
    cancel_reason: Option<String>,
}

impl SubmitEvent {
    /// Wraps a form snapshot in an event.
    pub fn new(form: Form) -> Self {
        Self {
            form,
            cancelled: false,
            cancel_reason: None,
        }
    }

    /// The form being submitted.
    pub fn form(&self) -> &Form {
        &self.form
    }

    /// Mutable access — listeners may rewrite field values (e.g. encrypt
    /// them) before the submission proceeds.
    pub fn form_mut(&mut self) -> &mut Form {
        &mut self.form
    }

    /// Suppresses the outgoing request.
    pub fn prevent_default(&mut self, reason: impl Into<String>) {
        self.cancelled = true;
        self.cancel_reason = Some(reason.into());
    }

    /// Whether a listener suppressed the submission.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// The suppression reason, if cancelled.
    pub fn cancel_reason(&self) -> Option<&str> {
        self.cancel_reason.as_deref()
    }

    /// Consumes the event, returning the (possibly rewritten) form.
    pub fn into_form(self) -> Form {
        self.form
    }
}

/// A listener for form submissions.
pub type SubmitListener = Box<dyn FnMut(&mut SubmitEvent) + Send>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse;

    fn wiki_form() -> (Document, NodeId) {
        let doc = parse(
            "<form action='https://wiki.internal/save'>\
             <input type='hidden' name='csrf' value='token123'>\
             <input name='title' value='Interview guidelines'>\
             <textarea name='content'>The rubric awards points for clarity.</textarea>\
             </form>",
        );
        let form = doc.elements_by_tag(doc.root(), "form")[0];
        (doc, form)
    }

    #[test]
    fn extracts_action_and_fields() {
        let (doc, node) = wiki_form();
        let form = Form::from_dom(&doc, node);
        assert_eq!(form.action, "https://wiki.internal/save");
        assert_eq!(form.fields.len(), 3);
        assert_eq!(form.fields[0].name, "csrf");
        assert!(form.fields[0].hidden);
        assert_eq!(
            form.fields[2].value,
            "The rubric awards points for clarity."
        );
    }

    #[test]
    fn visible_fields_exclude_hidden() {
        let (doc, node) = wiki_form();
        let form = Form::from_dom(&doc, node);
        let names: Vec<&str> = form.visible_fields().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["title", "content"]);
    }

    #[test]
    fn encode_joins_all_fields() {
        let (doc, node) = wiki_form();
        let encoded = Form::from_dom(&doc, node).encode();
        assert!(encoded.starts_with("csrf=token123&title="));
        assert!(encoded.contains("content=The rubric"));
    }

    #[test]
    fn prevent_default_cancels() {
        let (doc, node) = wiki_form();
        let mut event = SubmitEvent::new(Form::from_dom(&doc, node));
        assert!(!event.is_cancelled());
        event.prevent_default("would leak interview data");
        assert!(event.is_cancelled());
        assert_eq!(event.cancel_reason(), Some("would leak interview data"));
    }

    #[test]
    fn listeners_can_rewrite_values() {
        let (doc, node) = wiki_form();
        let mut event = SubmitEvent::new(Form::from_dom(&doc, node));
        for field in &mut event.form_mut().fields {
            if !field.hidden {
                field.value = format!("enc({})", field.value);
            }
        }
        let form = event.into_form();
        assert!(form.fields[1].value.starts_with("enc("));
        assert_eq!(form.fields[0].value, "token123");
    }

    #[test]
    #[should_panic(expected = "not a <form>")]
    fn from_dom_rejects_non_forms() {
        let doc = parse("<div></div>");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        Form::from_dom(&doc, div);
    }
}
