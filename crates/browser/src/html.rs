//! A small HTML parser and serialiser.
//!
//! Supports the subset of HTML the simulated services emit: nested
//! elements with quoted attributes, text, comments, doctype, and void
//! elements. Mis-nested closing tags are handled by closing up to the
//! nearest matching open element (a simplification of the HTML5 adoption
//! agency algorithm that is adequate for machine-generated pages).

use crate::dom::{Document, NodeId, NodeKind};

const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "source", "track",
    "wbr",
];

/// Parses `html` into a fresh [`Document`] (content appended under the
/// synthetic `<html>` root).
///
/// # Example
///
/// ```rust
/// use browserflow_browser::html::parse;
///
/// let doc = parse("<div id='main'><p>Hello <b>world</b></p></div>");
/// let main = doc.element_by_id("main").unwrap();
/// assert_eq!(doc.text_content(main), "Hello world");
/// ```
pub fn parse(html: &str) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    parse_into(&mut doc, root, html);
    // Parsing is construction, not user-visible mutation.
    doc.take_mutations();
    doc
}

/// Parses `html` and appends the resulting nodes under `parent`.
pub fn parse_into(doc: &mut Document, parent: NodeId, html: &str) {
    let mut stack: Vec<NodeId> = vec![parent];
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if html[i..].starts_with("<!--") {
                // Comment.
                i = html[i..]
                    .find("-->")
                    .map(|j| i + j + 3)
                    .unwrap_or(bytes.len());
                continue;
            }
            if html[i..].starts_with("<!") {
                // Doctype or similar declaration.
                i = html[i..]
                    .find('>')
                    .map(|j| i + j + 1)
                    .unwrap_or(bytes.len());
                continue;
            }
            if html[i..].starts_with("</") {
                let end = html[i..].find('>').map(|j| i + j).unwrap_or(bytes.len());
                let name = html[i + 2..end].trim().to_ascii_lowercase();
                // Close up to the nearest matching open element.
                if let Some(pos) = stack.iter().rposition(|&id| doc.tag(id) == Some(&name)) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
                i = end + 1;
                continue;
            }
            // Opening tag.
            let end = html[i..].find('>').map(|j| i + j).unwrap_or(bytes.len());
            let inner = &html[i + 1..end];
            let self_closing = inner.ends_with('/');
            let inner = inner.trim_end_matches('/').trim();
            let (name, attr_text) = match inner.find(char::is_whitespace) {
                Some(j) => (&inner[..j], &inner[j..]),
                None => (inner, ""),
            };
            let name = name.to_ascii_lowercase();
            if name.is_empty() {
                i = end + 1;
                continue;
            }
            let element = doc.create_element(&name);
            for (attr_name, attr_value) in parse_attrs(attr_text) {
                doc.set_attr(element, attr_name, attr_value);
            }
            let top = *stack.last().expect("stack never empty");
            doc.append_child(top, element);
            if !self_closing && !VOID_ELEMENTS.contains(&name.as_str()) {
                stack.push(element);
            }
            i = if end < bytes.len() {
                end + 1
            } else {
                bytes.len()
            };
        } else {
            let next_tag = html[i..].find('<').map(|j| i + j).unwrap_or(bytes.len());
            let text = &html[i..next_tag];
            if !text.trim().is_empty() {
                let node = doc.create_text(decode_entities(text));
                let top = *stack.last().expect("stack never empty");
                doc.append_child(top, node);
            }
            i = next_tag;
        }
    }
}

fn parse_attrs(text: &str) -> Vec<(String, String)> {
    let mut attrs = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if name_start == i {
            break;
        }
        let name = text[name_start..i].to_ascii_lowercase();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let value = if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let quote = bytes[i];
                i += 1;
                let value_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                let value = text[value_start..i].to_string();
                i = (i + 1).min(bytes.len());
                value
            } else {
                let value_start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                text[value_start..i].to_string()
            }
        } else {
            String::new()
        };
        attrs.push((name, decode_entities(&value)));
    }
    attrs
}

fn decode_entities(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&amp;", "&")
}

fn encode_entities(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Serialises the subtree rooted at `node` back to HTML.
pub fn serialize(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    serialize_into(doc, node, &mut out);
    out
}

fn serialize_into(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text(text) => out.push_str(&encode_entities(text)),
        NodeKind::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            let mut names: Vec<&String> = attrs.keys().collect();
            names.sort();
            for name in names {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&attrs[name].replace('"', "&quot;"));
                out.push('"');
            }
            out.push('>');
            if VOID_ELEMENTS.contains(&tag.as_str()) {
                return;
            }
            for &child in doc.children(node) {
                serialize_into(doc, child, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_text() {
        let doc = parse("<div><p>Hello <b>bold</b> world</p></div>");
        let ps = doc.elements_by_tag(doc.root(), "p");
        assert_eq!(ps.len(), 1);
        assert_eq!(doc.text_content(ps[0]), "Hello bold world");
    }

    #[test]
    fn parses_attributes_in_all_quote_styles() {
        let doc = parse(r#"<a href="x" class='link main' id=plain data-empty>t</a>"#);
        let a = doc.elements_by_tag(doc.root(), "a")[0];
        assert_eq!(doc.attr(a, "href"), Some("x"));
        assert_eq!(doc.attr(a, "class"), Some("link main"));
        assert_eq!(doc.attr(a, "id"), Some("plain"));
        assert_eq!(doc.attr(a, "data-empty"), Some(""));
    }

    #[test]
    fn void_and_self_closing_elements_take_no_children() {
        let doc = parse("<p>before<br>after</p><div><img src='x'/>text</div>");
        let br = doc.elements_by_tag(doc.root(), "br")[0];
        assert!(doc.children(br).is_empty());
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.text_content(p), "before after");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.text_content(div), "text");
    }

    #[test]
    fn skips_comments_and_doctype() {
        let doc = parse("<!DOCTYPE html><!-- a comment --><p>real</p>");
        assert_eq!(doc.text_content(doc.root()), "real");
    }

    #[test]
    fn entities_roundtrip() {
        let doc = parse("<p>a &lt;tag&gt; &amp; more</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.text_content(p), "a <tag> & more");
        let html = serialize(&doc, p);
        assert_eq!(html, "<p>a &lt;tag&gt; &amp; more</p>");
    }

    #[test]
    fn serialize_then_reparse_preserves_text() {
        let original = "<div id=\"main\"><p>One.</p><p>Two, three.</p></div>";
        let doc = parse(original);
        let main = doc.element_by_id("main").unwrap();
        let html = serialize(&doc, main);
        let reparsed = parse(&html);
        assert_eq!(
            reparsed.text_content(reparsed.root()),
            doc.text_content(main)
        );
    }

    #[test]
    fn mismatched_close_tags_do_not_panic() {
        let doc = parse("<div><p>text</div></p><span>tail</span>");
        assert!(doc.text_content(doc.root()).contains("text"));
        assert!(doc.text_content(doc.root()).contains("tail"));
    }

    #[test]
    fn truncated_input_does_not_panic() {
        for html in ["<div", "<div attr=\"x", "<p>text</p", "</", "<"] {
            let _ = parse(html);
        }
    }
}
