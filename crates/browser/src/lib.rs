//! A simulated web-browser substrate for BrowserFlow.
//!
//! The paper implements BrowserFlow as a Google Chrome plug-in (§5). This
//! crate provides an in-process model of exactly the interception surface
//! that plug-in relies on, so the middleware's code paths can be exercised
//! end-to-end without a real browser (see DESIGN.md §4 for the
//! substitution rationale):
//!
//! - a [`dom`] tree whose mutations are observable through
//!   mutation observers ([`mutation::ObserverRegistry`], §5.2),
//! - [`forms`] whose `submit` events can be intercepted and suppressed
//!   (§5.1 "Form-based interception"),
//! - an [`xhr`] object whose `send` is dispatched through a replaceable
//!   prototype slot, exposing a global interception point for all outgoing
//!   requests (§5.2 "JavaScript prototypes"),
//! - a Readability-style main-text [`extract`]or (§5.1 "Text extraction"),
//! - [`services`]: a Google-Docs-like collaborative editor that syncs
//!   every edit via XHR, a form-based wiki, and a static CMS page, each
//!   with a backend that records exactly what reached the "server",
//! - a [`Browser`] tying tabs, a clipboard and the service backends
//!   together.
//!
//! # Example
//!
//! ```rust
//! use browserflow_browser::{Browser, services::DocsApp};
//!
//! let mut browser = Browser::new();
//! let tab = browser.open_tab("https://docs.example.com");
//! let mut docs = DocsApp::attach(&mut browser, tab);
//! docs.create_paragraph(&mut browser);
//! docs.type_text(&mut browser, 0, "hello world");
//! // Every edit was synced to the backend via an (interceptable) XHR.
//! assert!(browser.backend("https://docs.example.com").upload_count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod browser;
pub mod dom;
pub mod extract;
pub mod forms;
pub mod html;
pub mod mutation;
pub mod services;
pub mod xhr;

pub use browser::{Browser, Tab, TabId};
pub use dom::{Document, NodeId};
pub use xhr::{XhrDisposition, XhrRequest};
