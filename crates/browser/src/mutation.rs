//! Mutation observers (§5.2).
//!
//! "A mutation observer is an object that can be attached to an element in
//! the DOM tree and receives notifications when any change occurs in the
//! subtree rooted at that element." BrowserFlow attaches a *document
//! observer* that watches paragraph creation/deletion and a *paragraph
//! observer* that watches paragraph content.
//!
//! Delivery is explicit and batched, mirroring the microtask semantics of
//! the real API: mutations accumulate in the [`crate::dom::Document`]'s
//! queue until [`ObserverRegistry::deliver`] routes them to the observers
//! watching an ancestor of each record's anchor node.

use crate::dom::{Document, MutationRecord, NodeId};

/// Identifies a registered observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverId(usize);

/// A callback invoked with batched mutation records.
///
/// The callback receives mutable document access, as real observers may
/// mutate the DOM in response (e.g. BrowserFlow recolours a paragraph).
/// Mutations made inside a callback are queued and delivered on the
/// *next* flush, which rules out same-flush reentrancy loops.
pub type ObserverCallback = Box<dyn FnMut(&mut Document, &[MutationRecord]) + Send>;

struct Registration {
    id: ObserverId,
    root: NodeId,
    callback: ObserverCallback,
}

/// The registry of mutation observers attached to one document.
///
/// # Example
///
/// ```rust
/// use browserflow_browser::dom::Document;
/// use browserflow_browser::mutation::ObserverRegistry;
/// use std::sync::{Arc, Mutex};
///
/// let mut doc = Document::new();
/// let mut observers = ObserverRegistry::new();
/// let seen = Arc::new(Mutex::new(0usize));
/// let seen_in_callback = Arc::clone(&seen);
/// let root = doc.root();
/// observers.observe(root, Box::new(move |_, records| {
///     *seen_in_callback.lock().unwrap() += records.len();
/// }));
///
/// let p = doc.create_element("p");
/// doc.append_child(root, p);
/// observers.deliver(&mut doc);
/// assert_eq!(*seen.lock().unwrap(), 1);
/// ```
#[derive(Default)]
pub struct ObserverRegistry {
    registrations: Vec<Registration>,
    next_id: usize,
}

impl std::fmt::Debug for ObserverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverRegistry")
            .field("observers", &self.registrations.len())
            .finish()
    }
}

impl ObserverRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observer to the subtree rooted at `root`.
    pub fn observe(&mut self, root: NodeId, callback: ObserverCallback) -> ObserverId {
        let id = ObserverId(self.next_id);
        self.next_id += 1;
        self.registrations.push(Registration { id, root, callback });
        id
    }

    /// Detaches an observer. Returns whether it was registered.
    pub fn disconnect(&mut self, id: ObserverId) -> bool {
        let before = self.registrations.len();
        self.registrations.retain(|r| r.id != id);
        self.registrations.len() != before
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// Whether no observers are attached.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    /// Drains the document's queued mutations and delivers each batch to
    /// every observer whose root is an ancestor-or-self of the record's
    /// anchor. Each observer receives one batched callback per delivery
    /// (like one microtask flush).
    pub fn deliver(&mut self, document: &mut Document) {
        let records = document.take_mutations();
        if records.is_empty() {
            return;
        }
        for registration in &mut self.registrations {
            let relevant: Vec<MutationRecord> = records
                .iter()
                .filter(|record| {
                    let anchor = record.anchor();
                    // Removed subtrees are detached but their ancestors at
                    // removal time are captured through the record's parent
                    // anchor, so ancestor checks still work.
                    document.is_ancestor_or_self(registration.root, anchor)
                })
                .cloned()
                .collect();
            if !relevant.is_empty() {
                (registration.callback)(document, &relevant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counter_callback(counter: Arc<AtomicUsize>) -> ObserverCallback {
        Box::new(move |_, records| {
            counter.fetch_add(records.len(), Ordering::SeqCst);
        })
    }

    #[test]
    fn observer_sees_subtree_mutations_only() {
        let mut doc = Document::new();
        let root = doc.root();
        let section_a = doc.create_element("div");
        let section_b = doc.create_element("div");
        doc.append_child(root, section_a);
        doc.append_child(root, section_b);
        doc.take_mutations(); // discard setup mutations

        let mut observers = ObserverRegistry::new();
        let count_a = Arc::new(AtomicUsize::new(0));
        observers.observe(section_a, counter_callback(Arc::clone(&count_a)));

        // Mutate inside section_b only.
        let t = doc.create_text("x");
        doc.append_child(section_b, t);
        observers.deliver(&mut doc);
        assert_eq!(count_a.load(Ordering::SeqCst), 0);

        // Mutate inside section_a.
        let t2 = doc.create_text("y");
        doc.append_child(section_a, t2);
        observers.deliver(&mut doc);
        assert_eq!(count_a.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn batched_delivery() {
        let mut doc = Document::new();
        let root = doc.root();
        let mut observers = ObserverRegistry::new();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls_cb = Arc::clone(&calls);
        observers.observe(
            root,
            Box::new(move |_, _| {
                calls_cb.fetch_add(1, Ordering::SeqCst);
            }),
        );
        for _ in 0..5 {
            let p = doc.create_element("p");
            doc.append_child(root, p);
        }
        observers.deliver(&mut doc);
        // Five records, one batched callback.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Nothing pending afterwards; idempotent deliver.
        observers.deliver(&mut doc);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn disconnect_stops_delivery() {
        let mut doc = Document::new();
        let root = doc.root();
        let mut observers = ObserverRegistry::new();
        let count = Arc::new(AtomicUsize::new(0));
        let id = observers.observe(root, counter_callback(Arc::clone(&count)));
        assert!(observers.disconnect(id));
        assert!(!observers.disconnect(id));
        let p = doc.create_element("p");
        doc.append_child(root, p);
        observers.deliver(&mut doc);
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert!(observers.is_empty());
    }

    #[test]
    fn multiple_observers_each_get_relevant_records() {
        let mut doc = Document::new();
        let root = doc.root();
        let inner = doc.create_element("div");
        doc.append_child(root, inner);
        doc.take_mutations();

        let mut observers = ObserverRegistry::new();
        let root_count = Arc::new(AtomicUsize::new(0));
        let inner_count = Arc::new(AtomicUsize::new(0));
        observers.observe(root, counter_callback(Arc::clone(&root_count)));
        observers.observe(inner, counter_callback(Arc::clone(&inner_count)));

        let t = doc.create_text("x");
        doc.append_child(inner, t);
        observers.deliver(&mut doc);
        assert_eq!(root_count.load(Ordering::SeqCst), 1);
        assert_eq!(inner_count.load(Ordering::SeqCst), 1);
    }
}
