//! Service backends: the simulated "remote servers".

use parking_lot::Mutex;

/// How an upload reached the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadKind {
    /// Via an asynchronous request (`XMLHttpRequest`).
    Xhr,
    /// Via an HTML form submission.
    Form,
}

/// One recorded upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Upload {
    /// Transport used.
    pub kind: UploadKind,
    /// The body exactly as transmitted.
    pub body: String,
}

/// A cloud service's backend: records every body that was actually
/// transmitted to it.
///
/// Thread-safe; shared as `Arc<Backend>` between the browser and tests.
#[derive(Debug)]
pub struct Backend {
    origin: String,
    uploads: Mutex<Vec<Upload>>,
}

impl Backend {
    /// Creates a backend for `origin`.
    pub fn new(origin: impl Into<String>) -> Self {
        Self {
            origin: origin.into(),
            uploads: Mutex::new(Vec::new()),
        }
    }

    /// The backend's origin.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Records an XHR body.
    pub fn record_xhr(&self, body: String) {
        self.uploads.lock().push(Upload {
            kind: UploadKind::Xhr,
            body,
        });
    }

    /// Records a form submission body.
    pub fn record_form(&self, body: String) {
        self.uploads.lock().push(Upload {
            kind: UploadKind::Form,
            body,
        });
    }

    /// Number of recorded uploads.
    pub fn upload_count(&self) -> usize {
        self.uploads.lock().len()
    }

    /// A snapshot of all uploads.
    pub fn uploads(&self) -> Vec<Upload> {
        self.uploads.lock().clone()
    }

    /// Whether any transmitted body *contains* `needle`.
    ///
    /// This is the evaluation's leak check: after a block decision, the
    /// sensitive text must not appear in any upload.
    pub fn saw_text(&self, needle: &str) -> bool {
        self.uploads.lock().iter().any(|u| u.body.contains(needle))
    }

    /// Whether any transmitted body *equals* `needle`.
    pub fn saw_text_exactly(&self, needle: &str) -> bool {
        self.uploads.lock().iter().any(|u| u.body == needle)
    }

    /// Clears the recorded uploads (test helper).
    pub fn clear(&self) {
        self.uploads.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_kinds() {
        let backend = Backend::new("https://svc");
        backend.record_xhr("one".into());
        backend.record_form("two".into());
        let uploads = backend.uploads();
        assert_eq!(uploads.len(), 2);
        assert_eq!(uploads[0].kind, UploadKind::Xhr);
        assert_eq!(uploads[1].kind, UploadKind::Form);
        assert_eq!(backend.origin(), "https://svc");
    }

    #[test]
    fn saw_text_is_substring_match() {
        let backend = Backend::new("https://svc");
        backend.record_xhr("the full body text".into());
        assert!(backend.saw_text("full body"));
        assert!(!backend.saw_text_exactly("full body"));
        assert!(backend.saw_text_exactly("the full body text"));
        assert!(!backend.saw_text("absent"));
    }

    #[test]
    fn clear_empties() {
        let backend = Backend::new("https://svc");
        backend.record_xhr("x".into());
        backend.clear();
        assert_eq!(backend.upload_count(), 0);
    }
}
