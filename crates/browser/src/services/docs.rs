//! A Google-Docs-like collaborative editor (§5.2).
//!
//! Like the real service, the editor "embeds directly into the DOM tree,
//! uses custom formatting to make elements form paragraphs and pages, and
//! communicates document mutations via AJAX requests each time a character
//! is added or deleted". Paragraphs are `<div class="doc-paragraph">`
//! elements inside `<div id="doc-editor">`; every editing operation
//! queues DOM mutation records (visible to observers) and then syncs the
//! changed paragraph to the backend via an interceptable XHR.

use crate::browser::{Browser, TabId};
use crate::dom::NodeId;
use crate::xhr::{SendResult, XhrRequest};

/// Handle to a docs editor living in one browser tab.
#[derive(Debug, Clone)]
pub struct DocsApp {
    tab: TabId,
    origin: String,
    editor: NodeId,
}

impl DocsApp {
    /// Builds the editor DOM inside `tab` and returns a handle.
    pub fn attach(browser: &mut Browser, tab: TabId) -> Self {
        let origin = browser.tab(tab).origin().to_string();
        let document = browser.tab_mut(tab).document_mut();
        let root = document.root();
        let editor = document.create_element("div");
        document.set_attr(editor, "id", "doc-editor");
        document.append_child(root, editor);
        // Building the editor shell is page setup, not user content.
        document.take_mutations();
        Self {
            tab,
            origin,
            editor,
        }
    }

    /// The tab this editor lives in.
    pub fn tab(&self) -> TabId {
        self.tab
    }

    /// The editor's root element.
    pub fn editor(&self) -> NodeId {
        self.editor
    }

    /// The service origin.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Appends an empty paragraph; returns its index. Syncs the structural
    /// change to the backend.
    pub fn create_paragraph(&mut self, browser: &mut Browser) -> usize {
        let document = browser.tab_mut(self.tab).document_mut();
        let paragraph = document.create_element("div");
        document.set_attr(paragraph, "class", "doc-paragraph");
        let text = document.create_text("");
        document.append_child(paragraph, text);
        document.append_child(self.editor, paragraph);
        let index = document.children(self.editor).len() - 1;
        browser.tab_mut(self.tab).flush_mutations();
        self.sync(browser, index, String::new());
        index
    }

    /// Number of paragraphs.
    pub fn paragraph_count(&self, browser: &Browser) -> usize {
        browser.tab(self.tab).document().children(self.editor).len()
    }

    /// The DOM node of paragraph `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn paragraph_node(&self, browser: &Browser, index: usize) -> NodeId {
        browser.tab(self.tab).document().children(self.editor)[index]
    }

    /// The text of paragraph `index`.
    pub fn paragraph_text(&self, browser: &Browser, index: usize) -> String {
        let node = self.paragraph_node(browser, index);
        browser.tab(self.tab).document().text_content(node)
    }

    /// Appends `text` to paragraph `index` (as a user typing or pasting
    /// at the end), delivers mutation records to observers, then syncs
    /// the paragraph via XHR. Returns the transport outcome.
    pub fn type_text(&mut self, browser: &mut Browser, index: usize, text: &str) -> SendResult {
        let current = self.paragraph_text(browser, index);
        let updated = if current.is_empty() {
            text.to_string()
        } else {
            format!("{current}{text}")
        };
        self.set_paragraph_text(browser, index, &updated)
    }

    /// Replaces the text of paragraph `index`, delivers mutation records,
    /// and syncs via XHR.
    pub fn set_paragraph_text(
        &mut self,
        browser: &mut Browser,
        index: usize,
        text: &str,
    ) -> SendResult {
        let paragraph = self.paragraph_node(browser, index);
        let document = browser.tab_mut(self.tab).document_mut();
        let text_node = document.children(paragraph)[0];
        document.set_text(text_node, text);
        browser.tab_mut(self.tab).flush_mutations();
        self.sync(browser, index, text.to_string())
    }

    /// Deletes paragraph `index` and syncs the structural change.
    pub fn delete_paragraph(&mut self, browser: &mut Browser, index: usize) -> SendResult {
        let paragraph = self.paragraph_node(browser, index);
        browser
            .tab_mut(self.tab)
            .document_mut()
            .remove_child(paragraph);
        browser.tab_mut(self.tab).flush_mutations();
        self.sync(browser, index, String::new())
    }

    /// Issues the mutation-sync XHR for paragraph `index` carrying `text`.
    fn sync(&self, browser: &mut Browser, index: usize, text: String) -> SendResult {
        let body = format!("mutate p{index}: {text}");
        browser.xhr_send(XhrRequest::post(self.origin.clone(), body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xhr::XhrDisposition;

    const ORIGIN: &str = "https://docs.example.com";

    fn setup() -> (Browser, DocsApp) {
        let mut browser = Browser::new();
        let tab = browser.open_tab(ORIGIN);
        let docs = DocsApp::attach(&mut browser, tab);
        (browser, docs)
    }

    #[test]
    fn typing_builds_paragraph_text() {
        let (mut browser, mut docs) = setup();
        let p = docs.create_paragraph(&mut browser);
        docs.type_text(&mut browser, p, "hello");
        docs.type_text(&mut browser, p, " world");
        assert_eq!(docs.paragraph_text(&browser, p), "hello world");
        assert_eq!(docs.paragraph_count(&browser), 1);
    }

    #[test]
    fn every_edit_syncs_to_backend() {
        let (mut browser, mut docs) = setup();
        let p = docs.create_paragraph(&mut browser);
        docs.type_text(&mut browser, p, "alpha");
        docs.type_text(&mut browser, p, " beta");
        let backend = browser.backend(ORIGIN);
        // create + 2 edits
        assert_eq!(backend.upload_count(), 3);
        assert!(backend.saw_text("alpha beta"));
    }

    #[test]
    fn mutations_are_visible_to_observers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let (mut browser, mut docs) = setup();
        let count = Arc::new(AtomicUsize::new(0));
        let count_cb = Arc::clone(&count);
        let editor = docs.editor();
        browser.tab_mut(docs.tab()).observers_mut().observe(
            editor,
            Box::new(move |_, records| {
                count_cb.fetch_add(records.len(), Ordering::SeqCst);
            }),
        );
        let p = docs.create_paragraph(&mut browser);
        docs.type_text(&mut browser, p, "observed");
        assert!(count.load(Ordering::SeqCst) >= 2); // paragraph added + text changed
    }

    #[test]
    fn blocked_sync_leaves_dom_changed_but_backend_clean() {
        let (mut browser, mut docs) = setup();
        browser.install_xhr_hook(Box::new(|r| {
            if r.body.contains("classified") {
                XhrDisposition::Block {
                    reason: "leak".into(),
                }
            } else {
                XhrDisposition::Allow
            }
        }));
        let p = docs.create_paragraph(&mut browser);
        let result = docs.type_text(&mut browser, p, "classified memo");
        assert!(!result.is_delivered());
        // Local DOM reflects the edit...
        assert_eq!(docs.paragraph_text(&browser, p), "classified memo");
        // ...but the backend never saw it.
        assert!(!browser.backend(ORIGIN).saw_text("classified"));
    }

    #[test]
    fn delete_paragraph_removes_node() {
        let (mut browser, mut docs) = setup();
        let p0 = docs.create_paragraph(&mut browser);
        docs.create_paragraph(&mut browser);
        docs.type_text(&mut browser, p0, "first");
        docs.delete_paragraph(&mut browser, 0);
        assert_eq!(docs.paragraph_count(&browser), 1);
        assert_eq!(docs.paragraph_text(&browser, 0), "");
    }
}
