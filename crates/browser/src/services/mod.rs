//! Simulated cloud services.
//!
//! Four service archetypes, matching §5 of the paper:
//!
//! - [`DocsApp`]: a Google-Docs-like collaborative editor that embeds
//!   user text directly into the DOM and syncs every edit to its backend
//!   via an asynchronous request (§5.2 "dynamic web pages").
//! - [`NotesApp`]: an Evernote-like notes editor with its own sync wire
//!   format, showing that supporting further services needs only a
//!   service-specific body parser (§5.2, §4.4).
//! - [`WikiApp`]: a form-based internal wiki in the style of WordPress /
//!   vBulletin, submitting content through an interceptable `<form>`
//!   (§5.1 "static web pages").
//! - [`static_site`]: a static CMS article page generator used to test
//!   Readability-style text extraction.
//!
//! Every service records what actually reached its "remote server" in a
//! [`Backend`], which is what the evaluation asserts against: a blocked
//! upload must leave no trace in the backend.

mod backend;
mod docs;
mod notes;
pub mod static_site;
mod wiki;

pub use backend::{Backend, Upload, UploadKind};
pub use docs::DocsApp;
pub use notes::{parse_notes_sync, NotesApp};
pub use wiki::WikiApp;
