//! An Evernote-like notes service (§5.2).
//!
//! Demonstrates that the interception mechanisms generalise "with minimal
//! effort" beyond Google Docs: the note editor keeps a title field and
//! body blocks directly in the DOM, and syncs every change via XHR — but
//! with its **own wire format** (`note-sync <field>=<text>`), so the
//! middleware needs a service-specific transformation of the service's
//! data to text segments (§4.4).

use crate::browser::{Browser, TabId};
use crate::dom::NodeId;
use crate::xhr::{SendResult, XhrRequest};

/// Handle to a notes editor living in one browser tab.
#[derive(Debug, Clone)]
pub struct NotesApp {
    tab: TabId,
    origin: String,
    editor: NodeId,
    title: NodeId,
}

impl NotesApp {
    /// Builds the note-editor DOM inside `tab`.
    pub fn attach(browser: &mut Browser, tab: TabId) -> Self {
        let origin = browser.tab(tab).origin().to_string();
        let document = browser.tab_mut(tab).document_mut();
        let root = document.root();
        let editor = document.create_element("div");
        document.set_attr(editor, "id", "note-editor");
        let title = document.create_element("div");
        document.set_attr(title, "class", "note-title");
        let title_text = document.create_text("");
        document.append_child(title, title_text);
        document.append_child(editor, title);
        document.append_child(root, editor);
        document.take_mutations(); // page setup
        Self {
            tab,
            origin,
            editor,
            title,
        }
    }

    /// The tab this editor lives in.
    pub fn tab(&self) -> TabId {
        self.tab
    }

    /// The editor's root element.
    pub fn editor(&self) -> NodeId {
        self.editor
    }

    /// The service origin.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Sets the note title and syncs it.
    pub fn set_title(&mut self, browser: &mut Browser, text: &str) -> SendResult {
        let document = browser.tab_mut(self.tab).document_mut();
        let text_node = document.children(self.title)[0];
        document.set_text(text_node, text);
        browser.tab_mut(self.tab).flush_mutations();
        self.sync(browser, "title", text)
    }

    /// Appends a body block; returns its index (0-based among blocks).
    pub fn add_block(&mut self, browser: &mut Browser, text: &str) -> (usize, SendResult) {
        let document = browser.tab_mut(self.tab).document_mut();
        let block = document.create_element("div");
        document.set_attr(block, "class", "note-block");
        let text_node = document.create_text(text);
        document.append_child(block, text_node);
        document.append_child(self.editor, block);
        let index = document.children(self.editor).len() - 2; // title excluded
        browser.tab_mut(self.tab).flush_mutations();
        let result = self.sync(browser, &format!("block{index}"), text);
        (index, result)
    }

    /// Replaces the text of body block `index` and syncs it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_block(&mut self, browser: &mut Browser, index: usize, text: &str) -> SendResult {
        let block = self.block_node(browser, index);
        let document = browser.tab_mut(self.tab).document_mut();
        let text_node = document.children(block)[0];
        document.set_text(text_node, text);
        browser.tab_mut(self.tab).flush_mutations();
        self.sync(browser, &format!("block{index}"), text)
    }

    /// The DOM node of body block `index`.
    pub fn block_node(&self, browser: &Browser, index: usize) -> NodeId {
        browser.tab(self.tab).document().children(self.editor)[index + 1]
    }

    /// The text of body block `index`.
    pub fn block_text(&self, browser: &Browser, index: usize) -> String {
        let node = self.block_node(browser, index);
        browser.tab(self.tab).document().text_content(node)
    }

    /// Number of body blocks.
    pub fn block_count(&self, browser: &Browser) -> usize {
        browser.tab(self.tab).document().children(self.editor).len() - 1
    }

    fn sync(&self, browser: &mut Browser, field: &str, text: &str) -> SendResult {
        // The notes service's own wire format — different from the docs
        // editor's `mutate pN: ...`.
        let body = format!("note-sync {field}={text}");
        browser.xhr_send(XhrRequest::post(self.origin.clone(), body))
    }
}

/// Parses the notes wire format into a (segment index, text) pair:
/// `title` maps to segment 0, `block<i>` to segment `i + 1`.
///
/// Plug-ins register this as the origin's service-specific transformation.
pub fn parse_notes_sync(body: &str) -> Option<(usize, String)> {
    let rest = body.strip_prefix("note-sync ")?;
    let equals = rest.find('=')?;
    let (field, text) = rest.split_at(equals);
    let text = &text[1..];
    let index = if field == "title" {
        0
    } else {
        field.strip_prefix("block")?.parse::<usize>().ok()? + 1
    };
    Some((index, text.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xhr::XhrDisposition;

    const ORIGIN: &str = "https://notes.example.com";

    fn setup() -> (Browser, NotesApp) {
        let mut browser = Browser::new();
        let tab = browser.open_tab(ORIGIN);
        let notes = NotesApp::attach(&mut browser, tab);
        (browser, notes)
    }

    #[test]
    fn title_and_blocks_roundtrip() {
        let (mut browser, mut notes) = setup();
        notes.set_title(&mut browser, "Meeting notes");
        let (index, result) = notes.add_block(&mut browser, "first block");
        assert_eq!(index, 0);
        assert!(result.is_delivered());
        notes.set_block(&mut browser, 0, "edited block");
        assert_eq!(notes.block_text(&browser, 0), "edited block");
        assert_eq!(notes.block_count(&browser), 1);
        let backend = browser.backend(ORIGIN);
        assert!(backend.saw_text("note-sync title=Meeting notes"));
        assert!(backend.saw_text("note-sync block0=edited block"));
    }

    #[test]
    fn wire_format_parses() {
        assert_eq!(
            parse_notes_sync("note-sync title=Hi"),
            Some((0, "Hi".into()))
        );
        assert_eq!(
            parse_notes_sync("note-sync block3=body text = with equals"),
            Some((4, "body text = with equals".into()))
        );
        assert_eq!(parse_notes_sync("mutate p0: x"), None);
        assert_eq!(parse_notes_sync("note-sync blockX=x"), None);
        assert_eq!(parse_notes_sync("note-sync notafield"), None);
    }

    #[test]
    fn blocked_sync_leaves_backend_clean() {
        let (mut browser, mut notes) = setup();
        browser.install_xhr_hook(Box::new(|r| {
            if r.body.contains("classified") {
                XhrDisposition::Block {
                    reason: "leak".into(),
                }
            } else {
                XhrDisposition::Allow
            }
        }));
        let (_, result) = notes.add_block(&mut browser, "classified material");
        assert!(!result.is_delivered());
        assert!(!browser.backend(ORIGIN).saw_text("classified"));
    }
}
