//! Static CMS page generation (§5.1 "static web pages").
//!
//! Produces article pages in the shape emitted by Drupal or WordPress:
//! navigation, an article body with `<p>` paragraphs, a comments block and
//! a footer. Used to exercise the Readability-style extraction heuristics
//! on realistic boilerplate.

/// Renders a full article page.
///
/// # Example
///
/// ```rust
/// use browserflow_browser::services::static_site;
/// use browserflow_browser::{extract, html};
///
/// let page = static_site::article_page(
///     "Quarterly update",
///     &["First paragraph, with a comma and enough length to be prose.".to_string(),
///       "Second paragraph, also comma-rich, also long enough to matter.".to_string()],
/// );
/// let doc = html::parse(&page);
/// let extraction = extract::extract_main_text(&doc).unwrap();
/// assert_eq!(extraction.paragraphs.len(), 2);
/// ```
pub fn article_page(title: &str, paragraphs: &[String]) -> String {
    let mut body = String::new();
    for paragraph in paragraphs {
        body.push_str("<p>");
        body.push_str(paragraph);
        body.push_str("</p>\n");
    }
    format!(
        "<!DOCTYPE html>\n\
         <html>\n\
         <div class=\"site-header\"><a href=\"/\">Home</a> <a href=\"/about\">About</a> \
         <a href=\"/archive\">Archive</a> <a href=\"/contact\">Contact</a></div>\n\
         <div class=\"nav-menu\"><a href=\"/t/1\">Tag one</a><a href=\"/t/2\">Tag two</a>\
         <a href=\"/t/3\">Tag three</a></div>\n\
         <div id=\"article\" class=\"post-content\">\n<h1>{title}</h1>\n{body}</div>\n\
         <div class=\"comment-section\"><p>Nice post!</p><p>Thanks for sharing.</p></div>\n\
         <div class=\"footer\">Copyright. All rights reserved. Imprint. Privacy policy. \
         Terms of service.</div>\n\
         </html>"
    )
}

/// Renders a bare fragment with just paragraphs (no boilerplate), for
/// tests that need a minimal page.
pub fn bare_page(paragraphs: &[String]) -> String {
    let mut body = String::from("<div id=\"content\">");
    for paragraph in paragraphs {
        body.push_str("<p>");
        body.push_str(paragraph);
        body.push_str("</p>");
    }
    body.push_str("</div>");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract, html};

    fn prose(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "Paragraph number {i}, which contains commas, clauses, and plenty of \
                     words so that the extraction heuristics score it as prose."
                )
            })
            .collect()
    }

    #[test]
    fn extraction_finds_article_not_boilerplate() {
        let page = article_page("Title", &prose(3));
        let doc = html::parse(&page);
        let extraction = extract::extract_main_text(&doc).unwrap();
        assert_eq!(doc.attr(extraction.element, "id"), Some("article"));
        assert_eq!(extraction.paragraphs.len(), 3);
        assert!(!extraction.text.contains("Copyright"));
        assert!(!extraction.text.contains("Nice post"));
    }

    #[test]
    fn bare_page_parses() {
        let doc = html::parse(&bare_page(&prose(2)));
        let content = doc.element_by_id("content").unwrap();
        assert_eq!(doc.elements_by_tag(content, "p").len(), 2);
    }
}
