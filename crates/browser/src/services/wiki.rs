//! A form-based internal wiki (§5.1).
//!
//! The edit page carries a `<form>` with a hidden CSRF token, a title
//! input and a content textarea — the shape of WordPress comments or
//! vBulletin posts. Saving goes through [`Browser::submit_form`], so
//! plug-in submit listeners can inspect and suppress it.

use crate::browser::{Browser, TabId};
use crate::dom::NodeId;
use crate::forms::Form;
use crate::xhr::SendResult;

/// Handle to a wiki edit page living in one browser tab.
#[derive(Debug, Clone)]
pub struct WikiApp {
    tab: TabId,
    origin: String,
    form: NodeId,
    title_input: NodeId,
    content_area: NodeId,
}

impl WikiApp {
    /// Builds the edit-page DOM inside `tab` and returns a handle.
    pub fn attach(browser: &mut Browser, tab: TabId) -> Self {
        let origin = browser.tab(tab).origin().to_string();
        let document = browser.tab_mut(tab).document_mut();
        let root = document.root();

        let form = document.create_element("form");
        document.set_attr(form, "action", origin.clone());
        document.set_attr(form, "id", "wiki-edit");

        let csrf = document.create_element("input");
        document.set_attr(csrf, "type", "hidden");
        document.set_attr(csrf, "name", "csrf");
        document.set_attr(csrf, "value", "token-0000");
        document.append_child(form, csrf);

        let title_input = document.create_element("input");
        document.set_attr(title_input, "name", "title");
        document.set_attr(title_input, "value", "");
        document.append_child(form, title_input);

        let content_area = document.create_element("textarea");
        document.set_attr(content_area, "name", "content");
        let text = document.create_text("");
        document.append_child(content_area, text);
        document.append_child(form, content_area);

        document.append_child(root, form);
        document.take_mutations(); // page setup

        Self {
            tab,
            origin,
            form,
            title_input,
            content_area,
        }
    }

    /// The tab this wiki page lives in.
    pub fn tab(&self) -> TabId {
        self.tab
    }

    /// The service origin.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Sets the title field.
    pub fn set_title(&self, browser: &mut Browser, title: &str) {
        let document = browser.tab_mut(self.tab).document_mut();
        document.set_attr(self.title_input, "value", title);
    }

    /// Replaces the content textarea's text.
    pub fn set_content(&self, browser: &mut Browser, content: &str) {
        let document = browser.tab_mut(self.tab).document_mut();
        let text_node = document.children(self.content_area)[0];
        document.set_text(text_node, content);
        browser.tab_mut(self.tab).flush_mutations();
    }

    /// The current content text.
    pub fn content(&self, browser: &Browser) -> String {
        browser
            .tab(self.tab)
            .document()
            .text_content(self.content_area)
    }

    /// Snapshots the form as it would be submitted.
    pub fn form_snapshot(&self, browser: &Browser) -> Form {
        Form::from_dom(browser.tab(self.tab).document(), self.form)
    }

    /// Saves the page: extracts the form from the DOM and submits it
    /// through the browser's (interceptable) submit path.
    pub fn save(&self, browser: &mut Browser) -> SendResult {
        let form = self.form_snapshot(browser);
        browser.submit_form(form)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN: &str = "https://wiki.internal";

    fn setup() -> (Browser, WikiApp) {
        let mut browser = Browser::new();
        let tab = browser.open_tab(ORIGIN);
        let wiki = WikiApp::attach(&mut browser, tab);
        (browser, wiki)
    }

    #[test]
    fn edit_and_save_records_form_upload() {
        let (mut browser, wiki) = setup();
        wiki.set_title(&mut browser, "Guidelines");
        wiki.set_content(&mut browser, "Interview rubric details.");
        let result = wiki.save(&mut browser);
        assert!(result.is_delivered());
        let backend = browser.backend(ORIGIN);
        assert_eq!(backend.upload_count(), 1);
        assert!(backend.saw_text("content=Interview rubric details."));
        assert!(backend.saw_text("csrf=token-0000"));
    }

    #[test]
    fn listener_sees_visible_fields_only() {
        let (mut browser, wiki) = setup();
        wiki.set_content(&mut browser, "secret rubric");
        browser.add_submit_listener(Box::new(|event| {
            let names: Vec<String> = event
                .form()
                .visible_fields()
                .map(|f| f.name.clone())
                .collect();
            assert_eq!(names, vec!["title", "content"]);
            if event
                .form()
                .visible_fields()
                .any(|f| f.value.contains("secret"))
            {
                event.prevent_default("leaks secret");
            }
        }));
        let result = wiki.save(&mut browser);
        assert!(!result.is_delivered());
        assert_eq!(browser.backend(ORIGIN).upload_count(), 0);
    }

    #[test]
    fn content_roundtrip() {
        let (mut browser, wiki) = setup();
        assert_eq!(wiki.content(&browser), "");
        wiki.set_content(&mut browser, "draft text");
        assert_eq!(wiki.content(&browser), "draft text");
        // Overwrite.
        wiki.set_content(&mut browser, "final text");
        assert_eq!(wiki.content(&browser), "final text");
    }
}
