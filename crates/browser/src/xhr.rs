//! `XMLHttpRequest` with a replaceable `send` prototype slot (§5.2).
//!
//! "BrowserFlow intercepts communication to the remote back-end servers by
//! redefining the `send` method in JavaScript's `XMLHttpRequest` object.
//! [...] This permits BrowserFlow to inspect all data that gets
//! transmitted, allowing or preventing the request."
//!
//! The [`XhrPrototype`] models that interception point: middleware
//! installs hooks; every outgoing request is passed through the hook chain
//! before it is delivered to the service backend.

/// An outgoing asynchronous request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XhrRequest {
    /// HTTP method (`POST` for all simulated service syncs).
    pub method: String,
    /// Destination origin, e.g. `https://docs.example.com`.
    pub url: String,
    /// The request body (already decoded; the middleware sees plain text
    /// because interception happens inside the browser, before TLS).
    pub body: String,
}

impl XhrRequest {
    /// Creates a POST request.
    pub fn post(url: impl Into<String>, body: impl Into<String>) -> Self {
        Self {
            method: "POST".into(),
            url: url.into(),
            body: body.into(),
        }
    }
}

/// What a send hook decides to do with a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XhrDisposition {
    /// Let the request through unchanged.
    Allow,
    /// Suppress the request entirely.
    Block {
        /// Human-readable reason surfaced to the user.
        reason: String,
    },
    /// Replace the body before transmission (the "encrypt confidential
    /// data before upload" path).
    Rewrite {
        /// The replacement body.
        body: String,
    },
}

/// A hook installed in the `send` prototype slot.
pub type SendHook = Box<dyn FnMut(&XhrRequest) -> XhrDisposition + Send>;

/// The outcome of sending a request through the prototype chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendResult {
    /// The request reached the backend with this final body.
    Delivered {
        /// The body as transmitted (possibly rewritten).
        body: String,
    },
    /// A hook suppressed the request.
    Blocked {
        /// The blocking hook's reason.
        reason: String,
    },
}

impl SendResult {
    /// Whether the request was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, SendResult::Delivered { .. })
    }
}

/// The shared `XMLHttpRequest.prototype.send` slot.
///
/// Hooks run in installation order; the first [`XhrDisposition::Block`]
/// wins, and [`XhrDisposition::Rewrite`]s compose (each later hook sees
/// the rewritten body).
///
/// # Example
///
/// ```rust
/// use browserflow_browser::xhr::{SendResult, XhrDisposition, XhrPrototype, XhrRequest};
///
/// let mut proto = XhrPrototype::new();
/// proto.install_hook(Box::new(|request: &XhrRequest| {
///     if request.body.contains("secret") {
///         XhrDisposition::Block { reason: "policy violation".into() }
///     } else {
///         XhrDisposition::Allow
///     }
/// }));
/// let blocked = proto.dispatch(XhrRequest::post("https://x", "a secret"));
/// assert_eq!(blocked, SendResult::Blocked { reason: "policy violation".into() });
/// ```
#[derive(Default)]
pub struct XhrPrototype {
    hooks: Vec<SendHook>,
}

impl std::fmt::Debug for XhrPrototype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XhrPrototype")
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

impl XhrPrototype {
    /// Creates a prototype with the native (hook-free) `send`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a hook at the end of the chain.
    pub fn install_hook(&mut self, hook: SendHook) {
        self.hooks.push(hook);
    }

    /// Number of installed hooks.
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Runs the hook chain over `request` and returns the final outcome.
    /// Does not itself deliver anywhere — the [`crate::Browser`] owns
    /// delivery to backends.
    pub fn dispatch(&mut self, mut request: XhrRequest) -> SendResult {
        for hook in &mut self.hooks {
            match hook(&request) {
                XhrDisposition::Allow => {}
                XhrDisposition::Block { reason } => return SendResult::Blocked { reason },
                XhrDisposition::Rewrite { body } => request.body = body,
            }
        }
        SendResult::Delivered { body: request.body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hooks_delivers_unchanged() {
        let mut proto = XhrPrototype::new();
        let result = proto.dispatch(XhrRequest::post("https://x", "payload"));
        assert_eq!(
            result,
            SendResult::Delivered {
                body: "payload".into()
            }
        );
    }

    #[test]
    fn first_block_wins() {
        let mut proto = XhrPrototype::new();
        proto.install_hook(Box::new(|_| XhrDisposition::Block {
            reason: "first".into(),
        }));
        proto.install_hook(Box::new(|_| XhrDisposition::Block {
            reason: "second".into(),
        }));
        assert_eq!(
            proto.dispatch(XhrRequest::post("https://x", "p")),
            SendResult::Blocked {
                reason: "first".into()
            }
        );
    }

    #[test]
    fn rewrites_compose_and_later_hooks_see_rewritten_body() {
        let mut proto = XhrPrototype::new();
        proto.install_hook(Box::new(|r| XhrDisposition::Rewrite {
            body: format!("enc({})", r.body),
        }));
        proto.install_hook(Box::new(|r| {
            assert!(r.body.starts_with("enc("));
            XhrDisposition::Rewrite {
                body: format!("signed({})", r.body),
            }
        }));
        assert_eq!(
            proto.dispatch(XhrRequest::post("https://x", "p")),
            SendResult::Delivered {
                body: "signed(enc(p))".into()
            }
        );
    }

    #[test]
    fn hooks_can_filter_by_url() {
        let mut proto = XhrPrototype::new();
        proto.install_hook(Box::new(|r| {
            if r.url.contains("untrusted") {
                XhrDisposition::Block {
                    reason: "untrusted destination".into(),
                }
            } else {
                XhrDisposition::Allow
            }
        }));
        assert!(proto
            .dispatch(XhrRequest::post("https://trusted", "p"))
            .is_delivered());
        assert!(!proto
            .dispatch(XhrRequest::post("https://untrusted", "p"))
            .is_delivered());
    }
}
