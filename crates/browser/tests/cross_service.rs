//! Browser-level integration across all four service archetypes in one
//! session: backend isolation, clipboard flows, and interception-surface
//! composition (hooks + listeners together).

use browserflow_browser::services::{static_site, DocsApp, NotesApp, WikiApp};
use browserflow_browser::{extract, Browser, XhrDisposition};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const DOCS: &str = "https://docs.example.com";
const NOTES: &str = "https://notes.example.com";
const WIKI: &str = "https://wiki.internal";
const CMS: &str = "https://cms.internal";

#[test]
fn four_service_session_keeps_backends_isolated() {
    let mut browser = Browser::new();

    // Static CMS page.
    let page = static_site::article_page(
        "Weekly update",
        &["The weekly update covers, among other things, roadmap and staffing.".to_string()],
    );
    let cms_tab = browser.open_tab_with_html(CMS, &page);
    let extraction =
        extract::extract_main_text(browser.tab(cms_tab).document()).expect("page has content");
    assert_eq!(extraction.paragraphs.len(), 1);

    // Docs editor.
    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    docs.create_paragraph(&mut browser);
    docs.type_text(&mut browser, 0, "doc content");

    // Notes editor.
    let notes_tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, notes_tab);
    notes.set_title(&mut browser, "note title");
    notes.add_block(&mut browser, "note body");

    // Form wiki.
    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    wiki.set_content(&mut browser, "wiki content");
    assert!(wiki.save(&mut browser).is_delivered());

    // Each backend saw exactly its own traffic.
    assert!(browser.backend(DOCS).saw_text("doc content"));
    assert!(!browser.backend(DOCS).saw_text("note body"));
    assert!(browser.backend(NOTES).saw_text("note body"));
    assert!(!browser.backend(NOTES).saw_text("wiki content"));
    assert!(browser.backend(WIKI).saw_text("wiki content"));
    assert!(!browser.backend(WIKI).saw_text("doc content"));
    assert_eq!(browser.backend(CMS).upload_count(), 0);
    assert_eq!(browser.tab_count(), 4);
}

#[test]
fn clipboard_carries_text_between_service_types() {
    let mut browser = Browser::new();
    let page = static_site::article_page(
        "Source",
        &["A paragraph worth copying, with commas, and enough length to matter.".to_string()],
    );
    let cms_tab = browser.open_tab_with_html(CMS, &page);
    let extraction = extract::extract_main_text(browser.tab(cms_tab).document()).unwrap();
    browser.copy(extraction.paragraphs[0].clone());

    // Paste into the docs editor...
    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    docs.create_paragraph(&mut browser);
    let pasted = browser.paste().unwrap();
    docs.type_text(&mut browser, 0, &pasted);
    assert!(browser.backend(DOCS).saw_text("worth copying"));

    // ...and into a note, from the same clipboard.
    let notes_tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, notes_tab);
    let pasted = browser.paste().unwrap();
    notes.add_block(&mut browser, &pasted);
    assert!(browser.backend(NOTES).saw_text("worth copying"));
}

#[test]
fn one_xhr_hook_sees_traffic_from_every_dynamic_service() {
    let mut browser = Browser::new();
    let seen = Arc::new(AtomicUsize::new(0));
    let seen_hook = Arc::clone(&seen);
    browser.install_xhr_hook(Box::new(move |_| {
        seen_hook.fetch_add(1, Ordering::SeqCst);
        XhrDisposition::Allow
    }));

    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    docs.create_paragraph(&mut browser); // 1 sync
    docs.type_text(&mut browser, 0, "x"); // 1 sync
    let notes_tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, notes_tab);
    notes.set_title(&mut browser, "t"); // 1 sync
    notes.add_block(&mut browser, "b"); // 1 sync
    assert_eq!(seen.load(Ordering::SeqCst), 4);

    // Form submissions do not go through the XHR prototype.
    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    wiki.set_content(&mut browser, "c");
    wiki.save(&mut browser);
    assert_eq!(seen.load(Ordering::SeqCst), 4);
}

#[test]
fn hooks_and_listeners_compose_without_interfering() {
    let mut browser = Browser::new();
    // Hook blocks XHR bodies containing "alpha"; listener blocks form
    // fields containing "beta". Each mechanism is scoped to its transport.
    browser.install_xhr_hook(Box::new(|request| {
        if request.body.contains("alpha") {
            XhrDisposition::Block {
                reason: "alpha".into(),
            }
        } else {
            XhrDisposition::Allow
        }
    }));
    browser.add_submit_listener(Box::new(|event| {
        if event
            .form()
            .visible_fields()
            .any(|f| f.value.contains("beta"))
        {
            event.prevent_default("beta");
        }
    }));

    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, "alpha leak").is_delivered());
    // "beta" in an XHR is NOT blocked (the listener only guards forms).
    assert!(docs
        .set_paragraph_text(&mut browser, 0, "beta is fine here")
        .is_delivered());

    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    wiki.set_content(&mut browser, "beta leak");
    assert!(!wiki.save(&mut browser).is_delivered());
    wiki.set_content(&mut browser, "alpha is fine in a form");
    assert!(wiki.save(&mut browser).is_delivered());
}
