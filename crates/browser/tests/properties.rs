//! Property-based tests for the browser substrate: the HTML parser must
//! never panic on arbitrary input, serialisation must round-trip, and the
//! DOM must preserve its tree invariants under random operations.

use browserflow_browser::dom::{Document, NodeId, NodeKind};
use browserflow_browser::html;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn parse_never_panics(input in ".{0,400}") {
        let _ = html::parse(&input);
    }

    /// HTML-shaped noise never panics either.
    #[test]
    fn parse_tag_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("<div>".to_string()),
            Just("</div>".to_string()),
            Just("<p class='x'>".to_string()),
            Just("</p>".to_string()),
            Just("<br>".to_string()),
            Just("<!-- c -->".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            "[a-z ]{0,12}",
        ],
        0..40,
    )) {
        let soup: String = parts.concat();
        let doc = html::parse(&soup);
        // Whatever was parsed, the tree is well-formed.
        assert_tree_invariants(&doc);
    }

    /// serialize ∘ parse preserves text content.
    #[test]
    fn serialize_parse_preserves_text(words in proptest::collection::vec("[a-zA-Z0-9]{1,10}", 1..20)) {
        let original = format!(
            "<div id='content'><p>{}</p><p>{}</p></div>",
            words.join(" "),
            words.iter().rev().cloned().collect::<Vec<_>>().join(" ")
        );
        let doc = html::parse(&original);
        let rendered = html::serialize(&doc, doc.root());
        let reparsed = html::parse(&rendered);
        prop_assert_eq!(
            doc.text_content(doc.root()),
            reparsed.text_content(reparsed.root())
        );
    }

    /// Random append/remove/set_text sequences keep the tree consistent.
    #[test]
    fn dom_operations_preserve_invariants(ops in proptest::collection::vec(0u8..4, 0..60)) {
        let mut doc = Document::new();
        let mut live: Vec<NodeId> = vec![doc.root()];
        for (step, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    // Append a new element under a random live node.
                    let parent = live[step % live.len()];
                    if matches!(doc.kind(parent), NodeKind::Element { .. }) {
                        let child = doc.create_element("div");
                        doc.append_child(parent, child);
                        live.push(child);
                    }
                }
                1 => {
                    // Append a text node.
                    let parent = live[step % live.len()];
                    if matches!(doc.kind(parent), NodeKind::Element { .. }) {
                        let text = doc.create_text(format!("t{step}"));
                        doc.append_child(parent, text);
                    }
                }
                2 => {
                    // Remove a random non-root live node.
                    if live.len() > 1 {
                        let index = 1 + step % (live.len() - 1);
                        let victim = live[index];
                        if !doc.is_detached(victim) && doc.parent(victim).is_some() {
                            doc.remove_child(victim);
                        }
                        live.remove(index);
                    }
                }
                _ => {
                    // Mutate text of a random text child, if any.
                    let parent = live[step % live.len()];
                    let text_child = doc
                        .children(parent)
                        .iter()
                        .copied()
                        .find(|&c| matches!(doc.kind(c), NodeKind::Text(_)));
                    if let Some(node) = text_child {
                        doc.set_text(node, format!("edited{step}"));
                    }
                }
            }
        }
        assert_tree_invariants(&doc);
        // Every queued mutation record anchors at a known node.
        for record in doc.take_mutations() {
            let _ = record.anchor();
        }
    }
}

/// Structural invariants: children's parent pointers match; no node is its
/// own ancestor; detached flags are consistent for reachable nodes.
fn assert_tree_invariants(doc: &Document) {
    for id in doc.descendants(doc.root()) {
        assert!(
            !doc.is_detached(id),
            "reachable node {id:?} marked detached"
        );
        for &child in doc.children(id) {
            assert_eq!(doc.parent(child), Some(id));
        }
        assert!(doc.is_ancestor_or_self(doc.root(), id));
        if let Some(parent) = doc.parent(id) {
            assert!(doc.children(parent).contains(&id));
        }
    }
}
