//! Command dispatch and rendering.

use crate::options::{parse_options, CliError, FingerprintOptions};
use browserflow::{BrowserFlow, CheckRequest};
use browserflow_fingerprint::{normalize, FingerprintConfig, Fingerprinter};
use browserflow_store::{SealedBytes, StoreKey};
use browserflow_tdm::{Policy, Service, Tag, TagSet};
use std::fmt::Write as _;

const HELP: &str = "\
bfctl — BrowserFlow deployment tooling

USAGE:
    bfctl <command> [arguments]

COMMANDS:
    policy init                      print a template policy JSON
    policy validate <policy.json>    parse and sanity-check a policy file
    policy show <policy.json>        tabulate services and their labels
    audit <policy.json> [--user U] [--tag T]
                                     print the tag-suppression audit log
    fingerprint <file>               fingerprint statistics for a text file
    compare <a> <b>                  pairwise disclosure between two files
    state <file|dir> --key <64-hex> [--save-dir <dir>]
                                     inspect a sealed state file or sharded
                                     state directory; --save-dir re-persists
                                     the loaded state as a sharded directory
    check --policy <policy.json> --source <svc>:<file> [--source ...]
          --dest <svc> <file>        would uploading <file> to <svc> violate?
    help                             this message

OPTIONS (fingerprint/compare):
    --ngram N        n-gram length in characters   (default 15)
    --window W       winnowing window in hashes    (default 30)
    --threshold T    disclosure threshold          (default 0.5, compare)
";

/// Runs a `bfctl` invocation and returns the rendered output.
///
/// # Errors
///
/// Returns [`CliError`] for malformed command lines, unreadable files and
/// invalid policy JSON.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(HELP.to_string()),
        Some("policy") => policy_command(&args[1..]),
        Some("audit") => audit_command(&args[1..]),
        Some("fingerprint") => fingerprint_command(&args[1..]),
        Some("compare") => compare_command(&args[1..]),
        Some("state") => state_command(&args[1..]),
        Some("check") => check_command(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `bfctl help`"
        ))),
    }
}

fn policy_command(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("init") => Ok(template_policy_json()),
        Some("validate") => {
            let policy = load_policy(args.get(1))?;
            let mut report = String::new();
            let services = policy.services().count();
            let mut tags = std::collections::BTreeSet::new();
            for service in policy.services() {
                for tag in service.privilege().iter().chain(service.confidentiality()) {
                    tags.insert(tag.clone());
                }
            }
            writeln!(report, "policy is valid").unwrap();
            writeln!(report, "  services: {services}").unwrap();
            writeln!(report, "  distinct tags: {}", tags.len()).unwrap();
            writeln!(report, "  audit records: {}", policy.audit_log().len()).unwrap();
            // Sanity warnings an administrator wants to see.
            for service in policy.services() {
                if !service.confidentiality().is_subset(service.privilege()) {
                    writeln!(
                        report,
                        "  warning: {} creates data (Lc={}) it is not privileged to \
                         receive back (Lp={})",
                        service.id(),
                        service.confidentiality(),
                        service.privilege()
                    )
                    .unwrap();
                }
            }
            Ok(report)
        }
        Some("show") => {
            let policy = load_policy(args.get(1))?;
            let mut out = String::new();
            writeln!(out, "{:<16} {:<24} {:<24} {:<24}", "id", "name", "Lp", "Lc").unwrap();
            for service in policy.services() {
                writeln!(
                    out,
                    "{:<16} {:<24} {:<24} {:<24}",
                    service.id().to_string(),
                    service.name(),
                    service.privilege().to_string(),
                    service.confidentiality().to_string()
                )
                .unwrap();
            }
            Ok(out)
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown policy subcommand {other:?}; expected init, validate or show"
        ))),
        None => Err(CliError::Usage(
            "policy requires a subcommand: init, validate or show".into(),
        )),
    }
}

fn audit_command(args: &[String]) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut user_filter: Option<&str> = None;
    let mut tag_filter: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--user" => {
                user_filter = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--user requires a value".into()))?,
                );
            }
            "--tag" => {
                tag_filter = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--tag requires a value".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            _ => path = Some(arg),
        }
    }
    let policy = load_policy(path)?;
    let mut out = String::new();
    let records: Vec<_> = policy
        .audit_log()
        .iter()
        .filter(|r| user_filter.is_none_or(|u| r.user().as_str() == u))
        .filter(|r| tag_filter.is_none_or(|t| r.tag().name() == t))
        .collect();
    if records.is_empty() {
        writeln!(out, "audit log is empty (after filters)").unwrap();
        return Ok(out);
    }
    writeln!(
        out,
        "{:<6} {:<20} {:<16} justification",
        "seq", "tag", "user"
    )
    .unwrap();
    for record in records {
        writeln!(
            out,
            "{:<6} {:<20} {:<16} {}",
            record.sequence(),
            record.tag().to_string(),
            record.user().to_string(),
            record.justification()
        )
        .unwrap();
    }
    Ok(out)
}

fn fingerprint_command(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = parse_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "fingerprint requires exactly one file argument".into(),
        ));
    };
    let text = std::fs::read_to_string(path)?;
    let fingerprinter = fingerprinter_for(&options)?;
    let normalized = normalize::normalize(&text);
    let print = fingerprinter.fingerprint(&text);
    let mut out = String::new();
    writeln!(out, "file:           {path}").unwrap();
    writeln!(out, "bytes:          {}", text.len()).unwrap();
    writeln!(out, "normalised:     {} chars", normalized.len()).unwrap();
    writeln!(out, "n-gram length:  {}", options.ngram).unwrap();
    writeln!(out, "window:         {}", options.window).unwrap();
    writeln!(out, "selected:       {} hashes", print.len()).unwrap();
    writeln!(out, "distinct hashes: {}", print.distinct_len()).unwrap();
    if normalized.len() >= options.ngram {
        let grams = normalized.len() - options.ngram + 1;
        writeln!(
            out,
            "density:        {:.4} (expected {:.4})",
            print.len() as f64 / grams as f64,
            2.0 / (options.window as f64 + 1.0)
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "density:        n/a (text shorter than one n-gram; fingerprint is empty)"
        )
        .unwrap();
    }
    Ok(out)
}

fn compare_command(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = parse_options(args)?;
    let [path_a, path_b] = positional.as_slice() else {
        return Err(CliError::Usage(
            "compare requires exactly two file arguments".into(),
        ));
    };
    let text_a = std::fs::read_to_string(path_a)?;
    let text_b = std::fs::read_to_string(path_b)?;
    let fingerprinter = fingerprinter_for(&options)?;
    let print_a = fingerprinter.fingerprint(&text_a);
    let print_b = fingerprinter.fingerprint(&text_b);
    let a_in_b = print_a.containment_in(&print_b);
    let b_in_a = print_b.containment_in(&print_a);
    let mut out = String::new();
    writeln!(out, "D({path_a} -> {path_b}) = {a_in_b:.3}").unwrap();
    writeln!(out, "D({path_b} -> {path_a}) = {b_in_a:.3}").unwrap();
    writeln!(
        out,
        "resemblance         = {:.3}",
        print_a.resemblance(&print_b)
    )
    .unwrap();
    writeln!(out, "threshold           = {:.2}", options.threshold).unwrap();
    if a_in_b >= options.threshold && a_in_b > 0.0 {
        writeln!(
            out,
            "verdict             = DISCLOSURE: {path_b} discloses {path_a}"
        )
        .unwrap();
    } else if b_in_a >= options.threshold && b_in_a > 0.0 {
        writeln!(
            out,
            "verdict             = DISCLOSURE: {path_a} discloses {path_b}"
        )
        .unwrap();
    } else {
        writeln!(out, "verdict             = no disclosure at this threshold").unwrap();
    }
    Ok(out)
}

fn check_command(args: &[String]) -> Result<String, CliError> {
    let mut policy_path: Option<&str> = None;
    let mut sources: Vec<(&str, &str)> = Vec::new();
    let mut dest: Option<&str> = None;
    let mut target: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--policy" => {
                policy_path = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--policy requires a value".into()))?,
                );
            }
            "--source" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--source requires <service>:<file>".into()))?;
                let (service, file) = value.split_once(':').ok_or_else(|| {
                    CliError::Usage(format!("--source must be <service>:<file>, got {value:?}"))
                })?;
                sources.push((service, file));
            }
            "--dest" => {
                dest = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--dest requires a service id".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            positional => target = Some(positional),
        }
    }
    let policy_path =
        policy_path.ok_or_else(|| CliError::Usage("check requires --policy".into()))?;
    let dest = dest.ok_or_else(|| CliError::Usage("check requires --dest <service>".into()))?;
    let target = target.ok_or_else(|| CliError::Usage("check requires a target file".into()))?;
    if sources.is_empty() {
        return Err(CliError::Usage(
            "check requires at least one --source <service>:<file>".into(),
        ));
    }

    let policy: Policy = serde_json::from_str(&std::fs::read_to_string(policy_path)?)?;
    let flow = BrowserFlow::builder()
        .policy(policy)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for (service, file) in &sources {
        let text = std::fs::read_to_string(file)?;
        flow.index_text_document(&(*service).into(), file, &text)
            .map_err(|e| CliError::Usage(e.to_string()))?;
    }
    let text = std::fs::read_to_string(target)?;
    let mut out = String::new();
    let mut any_violation = false;
    let segments = browserflow_fingerprint::segment::split_paragraphs(&text);
    let request = CheckRequest::batch(dest, target, segments.iter().map(|s| s.text));
    let decisions = flow
        .check(&request)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for (index, decision) in decisions.iter().enumerate() {
        for violation in &decision.violations {
            any_violation = true;
            writeln!(
                out,
                "paragraph {index}: discloses {:>5.1}% of {} (missing {})",
                violation.disclosure * 100.0,
                violation.source,
                violation.missing_tags
            )
            .unwrap();
        }
    }
    let document_decision = flow
        .check_document_upload(&dest.into(), target, &text)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for violation in &document_decision.violations {
        any_violation = true;
        writeln!(
            out,
            "document: discloses {:>5.1}% of {} (missing {})",
            violation.disclosure * 100.0,
            violation.source,
            violation.missing_tags
        )
        .unwrap();
    }
    if any_violation {
        writeln!(
            out,
            "verdict: VIOLATION — uploading {target} to {dest} leaks tracked text"
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "verdict: clean — no tracked text from the sources detected"
        )
        .unwrap();
    }
    Ok(out)
}

fn state_command(args: &[String]) -> Result<String, CliError> {
    // Parse `<file|dir> --key <hex> [--save-dir <dir>]` by hand (the
    // shared options do not apply).
    let mut path: Option<&str> = None;
    let mut key_hex: Option<&str> = None;
    let mut save_dir: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--key" => {
                key_hex = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--key requires a value".into()))?,
                );
            }
            "--save-dir" => {
                save_dir = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--save-dir requires a value".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            positional => path = Some(positional),
        }
    }
    let path =
        path.ok_or_else(|| CliError::Usage("state requires a file or directory argument".into()))?;
    let key = parse_key(key_hex.unwrap_or(&"00".repeat(32)))?;
    let mut out = String::new();
    let flow = if std::path::Path::new(path).is_dir() {
        // Sharded state directory: load with torn-write recovery and
        // report any shards that did not survive.
        let (flow, report) = BrowserFlow::load_from_dir(key, std::path::Path::new(path))
            .map_err(|e| CliError::Usage(format!("cannot open state directory: {e}")))?;
        writeln!(out, "state directory:   {path}").unwrap();
        writeln!(out, "paragraph shards:  {}", report.paragraphs).unwrap();
        writeln!(out, "document shards:   {}", report.documents).unwrap();
        if !report.is_complete() {
            writeln!(
                out,
                "WARNING: some shards were lost to corruption; the listed \
                 fingerprints are no longer tracked"
            )
            .unwrap();
        }
        flow
    } else {
        let bytes = std::fs::read(path)?;
        let sealed = SealedBytes::from_bytes(&bytes)
            .map_err(|e| CliError::Usage(format!("not a sealed state file: {e}")))?;
        let flow = BrowserFlow::import_sealed(key, &sealed)
            .map_err(|e| CliError::Usage(format!("cannot open state: {e}")))?;
        writeln!(out, "state file:        {path}").unwrap();
        flow
    };
    writeln!(out, "enforcement mode:  {:?}", flow.mode()).unwrap();
    writeln!(
        out,
        "services:          {}",
        flow.policy().services().count()
    )
    .unwrap();
    writeln!(
        out,
        "tracked paragraphs: {}",
        flow.engine().paragraph_count()
    )
    .unwrap();
    writeln!(out, "tracked documents: {}", flow.engine().document_count()).unwrap();
    writeln!(
        out,
        "distinct hashes:   {}",
        flow.engine().paragraph_hash_count()
    )
    .unwrap();
    writeln!(out, "short secrets:     {}", flow.short_secret_count()).unwrap();
    writeln!(
        out,
        "audit records:     {}",
        flow.policy().audit_log().len()
    )
    .unwrap();
    out.push('\n');
    out.push_str(&browserflow::report::warning_report(&flow));
    if let Some(dir) = save_dir {
        flow.persist_to_dir(std::path::Path::new(dir))
            .map_err(|e| CliError::Usage(format!("cannot write state directory: {e}")))?;
        writeln!(out, "\nsaved sharded state directory: {dir}").unwrap();
    }
    Ok(out)
}

fn parse_key(hex: &str) -> Result<StoreKey, CliError> {
    let hex = hex.trim();
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(CliError::Usage(
            "--key must be 64 hexadecimal characters (32 bytes)".into(),
        ));
    }
    let mut bytes = [0u8; 32];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let high = (chunk[0] as char).to_digit(16).expect("validated hex");
        let low = (chunk[1] as char).to_digit(16).expect("validated hex");
        bytes[i] = (high * 16 + low) as u8;
    }
    Ok(StoreKey::from_bytes(bytes))
}

fn fingerprinter_for(options: &FingerprintOptions) -> Result<Fingerprinter, CliError> {
    let config = FingerprintConfig::builder()
        .ngram_len(options.ngram)
        .window(options.window)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(Fingerprinter::new(config))
}

fn load_policy(path: Option<&String>) -> Result<Policy, CliError> {
    let path = path.ok_or_else(|| CliError::Usage("expected a policy file argument".into()))?;
    let json = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// The `policy init` template: the paper's three-service example.
fn template_policy_json() -> String {
    let ti = Tag::new("interview-data").expect("static tag");
    let tw = Tag::new("wiki-data").expect("static tag");
    let mut policy = Policy::new();
    policy
        .register(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone()]))
                .with_confidentiality(TagSet::from_iter([ti])),
        )
        .expect("unique id");
    policy
        .register(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .expect("unique id");
    policy
        .register(Service::new("gdocs", "Google Docs"))
        .expect("unique id");
    serde_json::to_string_pretty(&policy).expect("policy serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_policy_has_the_paper_services() {
        let json = template_policy_json();
        let policy: Policy = serde_json::from_str(&json).unwrap();
        let ids: Vec<String> = policy.services().map(|s| s.id().to_string()).collect();
        assert_eq!(ids, vec!["gdocs", "itool", "wiki"]);
    }

    #[test]
    fn state_command_inspects_a_sealed_file() {
        use browserflow::EnforcementMode;
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([0xAB; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        flow.observe_paragraph(
            &"itool".into(),
            "eval",
            0,
            "a paragraph long enough to fingerprint and store for inspection",
        )
        .unwrap();
        let sealed = flow.export_sealed();
        let path = std::env::temp_dir().join("bfctl-test-state.bin");
        std::fs::write(&path, sealed.to_bytes()).unwrap();

        let output = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("enforcement mode:  Block"), "{output}");
        assert!(output.contains("tracked paragraphs: 1"), "{output}");

        // Wrong key fails cleanly.
        let error = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "cd".repeat(32),
        ])
        .unwrap_err();
        assert!(error.to_string().contains("cannot open state"));

        // --save-dir converts the loaded state into a sharded directory,
        // which the same command can then inspect (with shard reporting).
        let state_dir = std::env::temp_dir().join("bfctl-test-state-dir");
        std::fs::remove_dir_all(&state_dir).ok();
        let output = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
            "--save-dir".to_string(),
            state_dir.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert!(output.contains("saved sharded state directory"), "{output}");

        let output = run(&[
            "state".to_string(),
            state_dir.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("state directory:"), "{output}");
        assert!(output.contains("paragraph shards:"), "{output}");
        assert!(output.contains("tracked paragraphs: 1"), "{output}");
        assert!(!output.contains("WARNING"), "{output}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn check_command_detects_cross_file_disclosure() {
        let dir = std::env::temp_dir();
        let policy_path = dir.join("bfctl-check-policy.json");
        std::fs::write(&policy_path, template_policy_json()).unwrap();
        let source_path = dir.join("bfctl-check-source.txt");
        let secret = "the interview rubric awards extra points for candidates who ask                       incisive clarifying questions early in the conversation";
        std::fs::write(&source_path, secret).unwrap();
        let target_path = dir.join("bfctl-check-target.txt");
        std::fs::write(
            &target_path,
            format!(
                "notes for the blog post

fyi {secret} ok"
            ),
        )
        .unwrap();

        let run_check = |target: &std::path::Path| {
            run(&[
                "check".to_string(),
                "--policy".to_string(),
                policy_path.to_str().unwrap().to_string(),
                "--source".to_string(),
                format!("itool:{}", source_path.to_str().unwrap()),
                "--dest".to_string(),
                "gdocs".to_string(),
                target.to_str().unwrap().to_string(),
            ])
            .unwrap()
        };
        let output = run_check(&target_path);
        assert!(output.contains("VIOLATION"), "{output}");
        assert!(output.contains("paragraph 1"), "{output}");
        assert!(output.contains("#interview-data"), "{output}");

        // A clean file passes.
        let clean_path = dir.join("bfctl-check-clean.txt");
        std::fs::write(
            &clean_path,
            "gardening club minutes about tulips and daffodils",
        )
        .unwrap();
        let output = run_check(&clean_path);
        assert!(output.contains("verdict: clean"), "{output}");

        for p in [&policy_path, &source_path, &target_path, &clean_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn audit_filters_by_user_and_tag() {
        use browserflow_tdm::{SegmentLabel, UserId};
        let mut policy: Policy = serde_json::from_str(&template_policy_json()).unwrap();
        let ti = Tag::new("interview-data").unwrap();
        let tw = Tag::new("wiki-data").unwrap();
        let mut label_a = SegmentLabel::from_confidentiality(&TagSet::from_iter([ti.clone()]));
        let mut label_b = SegmentLabel::from_confidentiality(&TagSet::from_iter([tw.clone()]));
        policy.suppress_tag(&mut label_a, &ti, &UserId::new("alice"), "r1");
        policy.suppress_tag(&mut label_b, &tw, &UserId::new("bob"), "r2");
        let path = std::env::temp_dir().join("bfctl-audit-policy.json");
        std::fs::write(&path, serde_json::to_string(&policy).unwrap()).unwrap();

        let all = run(&["audit".into(), path.to_str().unwrap().into()]).unwrap();
        assert!(all.contains("alice") && all.contains("bob"));
        let alice_only = run(&[
            "audit".into(),
            path.to_str().unwrap().into(),
            "--user".into(),
            "alice".into(),
        ])
        .unwrap();
        assert!(alice_only.contains("alice") && !alice_only.contains("bob"));
        let none = run(&[
            "audit".into(),
            path.to_str().unwrap().into(),
            "--tag".into(),
            "missing".into(),
        ])
        .unwrap();
        assert!(none.contains("empty"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_command_usage_errors() {
        assert!(matches!(
            run(&["check".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "check".to_string(),
                "--source".to_string(),
                "nocolon".to_string()
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_key_validates_hex() {
        assert!(parse_key(&"ab".repeat(32)).is_ok());
        assert!(parse_key("short").is_err());
        assert!(parse_key(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn validate_warns_on_inconsistent_labels() {
        // A service that creates data it cannot receive back.
        let tx = Tag::new("x").unwrap();
        let mut policy = Policy::new();
        policy
            .register(
                Service::new("odd", "Odd Service").with_confidentiality(TagSet::from_iter([tx])),
            )
            .unwrap();
        let path = std::env::temp_dir().join("bfctl-odd-policy.json");
        std::fs::write(&path, serde_json::to_string(&policy).unwrap()).unwrap();
        let report = run(&[
            "policy".to_string(),
            "validate".to_string(),
            path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert!(report.contains("warning"), "{report}");
        std::fs::remove_file(&path).ok();
    }
}
