//! Command dispatch: argument vector → handler → typed data → renderer.
//!
//! `run` strips the global `--json` flag, routes the command to its
//! handler (which returns a [`crate::data::Report`]), then renders the
//! report as text or JSON. Handlers never format output and renderers
//! never compute — see [`crate::handlers`] and [`crate::render`].

use crate::daemon::daemon_command;
use crate::data::Report;
use crate::handlers::{
    audit_command, check_command, compare_command, fingerprint_command, policy_command,
    state_command,
};
use crate::options::CliError;
use crate::render;

/// Runs a `bfctl` invocation and returns the rendered output.
///
/// # Errors
///
/// Returns [`CliError`] for malformed command lines, unreadable files,
/// invalid policy JSON, and daemon-side failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    // `--json` is global: accepted anywhere on the command line.
    let json = args.iter().any(|arg| arg == "--json");
    let args: Vec<String> = args
        .iter()
        .filter(|arg| *arg != "--json")
        .cloned()
        .collect();
    let report = dispatch(&args)?;
    render::render(&report, json)
}

fn dispatch(args: &[String]) -> Result<Report, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Report::Help),
        Some("policy") => policy_command(&args[1..]),
        Some("audit") => audit_command(&args[1..]),
        Some("fingerprint") => fingerprint_command(&args[1..]),
        Some("compare") => compare_command(&args[1..]),
        Some("state") => state_command(&args[1..]),
        Some("check") => check_command(&args[1..]),
        Some("daemon") => daemon_command(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `bfctl help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::handlers::{parse_key, template_policy_json};
    use crate::options::CliError;
    use browserflow::BrowserFlow;
    use browserflow_store::StoreKey;
    use browserflow_tdm::{Policy, Service, Tag, TagSet};

    #[test]
    fn template_policy_has_the_paper_services() {
        let json = template_policy_json();
        let policy: Policy = serde_json::from_str(&json).unwrap();
        let ids: Vec<String> = policy.services().map(|s| s.id().to_string()).collect();
        assert_eq!(ids, vec!["gdocs", "itool", "wiki"]);
    }

    #[test]
    fn state_command_inspects_a_sealed_file() {
        use browserflow::EnforcementMode;
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([0xAB; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        flow.observe_paragraph(
            &"itool".into(),
            "eval",
            0,
            "a paragraph long enough to fingerprint and store for inspection",
        )
        .unwrap();
        let sealed = flow.export_sealed();
        let path = std::env::temp_dir().join("bfctl-test-state.bin");
        std::fs::write(&path, sealed.to_bytes()).unwrap();

        let output = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("enforcement mode:  Block"), "{output}");
        assert!(output.contains("tracked paragraphs: 1"), "{output}");

        // The same inspection as machine-readable JSON.
        let output = run(&[
            "--json".to_string(),
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("\"tracked_paragraphs\""), "{output}");
        assert!(output.contains("\"mode\""), "{output}");

        // Wrong key fails cleanly.
        let error = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "cd".repeat(32),
        ])
        .unwrap_err();
        assert!(error.to_string().contains("cannot open state"));

        // --save-dir converts the loaded state into a sharded directory,
        // which the same command can then inspect (with shard reporting).
        let state_dir = std::env::temp_dir().join("bfctl-test-state-dir");
        std::fs::remove_dir_all(&state_dir).ok();
        let output = run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
            "--save-dir".to_string(),
            state_dir.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert!(output.contains("saved sharded state directory"), "{output}");

        let output = run(&[
            "state".to_string(),
            state_dir.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("state directory:"), "{output}");
        assert!(output.contains("paragraph shards:"), "{output}");
        assert!(output.contains("tracked paragraphs: 1"), "{output}");
        assert!(output.contains("tier (paragraphs):"), "{output}");
        assert!(!output.contains("WARNING"), "{output}");

        // --save-dir --tiered re-persists as a plain v3 tiered layout;
        // inspecting that directory shows cold-mapped occupancy.
        let tiered_dir = std::env::temp_dir().join("bfctl-test-state-tiered");
        std::fs::remove_dir_all(&tiered_dir).ok();
        run(&[
            "state".to_string(),
            path.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
            "--save-dir".to_string(),
            tiered_dir.to_str().unwrap().to_string(),
            "--tiered".to_string(),
        ])
        .unwrap();
        let output = run(&[
            "state".to_string(),
            tiered_dir.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(output.contains("shards cold"), "{output}");
        assert!(output.contains("tracked paragraphs: 1"), "{output}");
        let json_output = run(&[
            "--json".to_string(),
            "state".to_string(),
            tiered_dir.to_str().unwrap().to_string(),
            "--key".to_string(),
            "ab".repeat(32),
        ])
        .unwrap();
        assert!(json_output.contains("\"cold_shards\""), "{json_output}");

        // --tiered without --save-dir is a usage error.
        assert!(matches!(
            run(&[
                "state".to_string(),
                path.to_str().unwrap().to_string(),
                "--tiered".to_string(),
            ]),
            Err(CliError::Usage(_))
        ));

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&state_dir).ok();
        std::fs::remove_dir_all(&tiered_dir).ok();
    }

    #[test]
    fn check_command_detects_cross_file_disclosure() {
        let dir = std::env::temp_dir();
        let policy_path = dir.join("bfctl-check-policy.json");
        std::fs::write(&policy_path, template_policy_json()).unwrap();
        let source_path = dir.join("bfctl-check-source.txt");
        let secret = "the interview rubric awards extra points for candidates who ask                       incisive clarifying questions early in the conversation";
        std::fs::write(&source_path, secret).unwrap();
        let target_path = dir.join("bfctl-check-target.txt");
        std::fs::write(
            &target_path,
            format!(
                "notes for the blog post

fyi {secret} ok"
            ),
        )
        .unwrap();

        let run_check = |target: &std::path::Path, json: bool| {
            let mut args = vec![
                "check".to_string(),
                "--policy".to_string(),
                policy_path.to_str().unwrap().to_string(),
                "--source".to_string(),
                format!("itool:{}", source_path.to_str().unwrap()),
                "--dest".to_string(),
                "gdocs".to_string(),
                target.to_str().unwrap().to_string(),
            ];
            if json {
                args.push("--json".to_string());
            }
            run(&args).unwrap()
        };
        let output = run_check(&target_path, false);
        assert!(output.contains("VIOLATION"), "{output}");
        assert!(output.contains("paragraph 1"), "{output}");
        assert!(output.contains("#interview-data"), "{output}");

        // The same verdict as machine-readable JSON.
        let output = run_check(&target_path, true);
        assert!(output.contains("\"violation\": true"), "{output}");
        assert!(output.contains("\"paragraph\": 1"), "{output}");

        // A clean file passes.
        let clean_path = dir.join("bfctl-check-clean.txt");
        std::fs::write(
            &clean_path,
            "gardening club minutes about tulips and daffodils",
        )
        .unwrap();
        let output = run_check(&clean_path, false);
        assert!(output.contains("verdict: clean"), "{output}");

        for p in [&policy_path, &source_path, &target_path, &clean_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn audit_filters_by_user_and_tag() {
        use browserflow_tdm::{SegmentLabel, UserId};
        let mut policy: Policy = serde_json::from_str(&template_policy_json()).unwrap();
        let ti = Tag::new("interview-data").unwrap();
        let tw = Tag::new("wiki-data").unwrap();
        let mut label_a = SegmentLabel::from_confidentiality(&TagSet::from_iter([ti.clone()]));
        let mut label_b = SegmentLabel::from_confidentiality(&TagSet::from_iter([tw.clone()]));
        policy.suppress_tag(&mut label_a, &ti, &UserId::new("alice"), "r1");
        policy.suppress_tag(&mut label_b, &tw, &UserId::new("bob"), "r2");
        let path = std::env::temp_dir().join("bfctl-audit-policy.json");
        std::fs::write(&path, serde_json::to_string(&policy).unwrap()).unwrap();

        let all = run(&["audit".into(), path.to_str().unwrap().into()]).unwrap();
        assert!(all.contains("alice") && all.contains("bob"));
        let alice_only = run(&[
            "audit".into(),
            path.to_str().unwrap().into(),
            "--user".into(),
            "alice".into(),
        ])
        .unwrap();
        assert!(alice_only.contains("alice") && !alice_only.contains("bob"));
        let none = run(&[
            "audit".into(),
            path.to_str().unwrap().into(),
            "--tag".into(),
            "missing".into(),
        ])
        .unwrap();
        assert!(none.contains("empty"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_command_usage_errors() {
        assert!(matches!(
            run(&["check".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&[
                "check".to_string(),
                "--source".to_string(),
                "nocolon".to_string()
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_key_validates_hex() {
        assert!(parse_key(&"ab".repeat(32)).is_ok());
        assert!(parse_key("short").is_err());
        assert!(parse_key(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn validate_warns_on_inconsistent_labels() {
        // A service that creates data it cannot receive back.
        let tx = Tag::new("x").unwrap();
        let mut policy = Policy::new();
        policy
            .register(
                Service::new("odd", "Odd Service").with_confidentiality(TagSet::from_iter([tx])),
            )
            .unwrap();
        let path = std::env::temp_dir().join("bfctl-odd-policy.json");
        std::fs::write(&path, serde_json::to_string(&policy).unwrap()).unwrap();
        let report = run(&[
            "policy".to_string(),
            "validate".to_string(),
            path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        assert!(report.contains("warning"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_flag_renders_machine_readable_reports() {
        // `policy init --json` is already JSON and passes through.
        let template = run(&["policy".into(), "init".into(), "--json".into()]).unwrap();
        let _policy: Policy = serde_json::from_str(&template).unwrap();

        // `policy validate --json` returns the structured validation.
        let path = std::env::temp_dir().join("bfctl-json-policy.json");
        std::fs::write(&path, template_policy_json()).unwrap();
        let output = run(&[
            "--json".into(),
            "policy".into(),
            "validate".into(),
            path.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(output.contains("\"services\": 3"), "{output}");
        assert!(output.contains("\"distinct_tags\""), "{output}");

        // Daemon subcommands refuse to run without a socket.
        assert!(matches!(
            run(&["daemon".into(), "ping".into()]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
