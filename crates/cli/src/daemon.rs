//! `bfctl daemon …` — handlers that talk to a running `bfd` over its
//! Unix socket.
//!
//! Every subcommand is one framed request→reply exchange; `observe`
//! ships the whole document's paragraph slots in a single
//! `ObserveBatch` frame so ingest cost does not scale with round
//! trips. Replies come back as typed [`Report`] data, so `--json`
//! emits the daemon's wire reply verbatim and the text renderer
//! formats it for humans.
//! Backpressure replies are data, not errors: a refused check exits 0
//! with a `Backpressure` report the caller can script against.

use crate::data::{ObserveSummary, Report};
use crate::options::CliError;
use browserflow_daemon::{DaemonClient, ParagraphSlot, Reply, Request};

pub(crate) fn daemon_command(args: &[String]) -> Result<Report, CliError> {
    let parsed = DaemonArgs::parse(args)?;
    let socket = parsed
        .socket
        .as_deref()
        .ok_or_else(|| CliError::Usage("daemon commands require --socket <path>".into()))?;
    let mut client = DaemonClient::connect(socket).map_err(|e| CliError::Daemon(e.to_string()))?;
    let mut positional = parsed.positional.iter().map(String::as_str);
    let sub = positional.next().ok_or_else(|| {
        CliError::Usage(
            "daemon requires a subcommand: ping, create, tenants, observe, check, \
             keystroke, stats, lineage, alerts or drain"
                .into(),
        )
    })?;
    match sub {
        "ping" => forward(&mut client, &Request::Ping),
        "tenants" => forward(&mut client, &Request::TenantList),
        "create" => {
            let tenant = expect(positional.next(), "create requires a tenant id")?;
            let policy_path = parsed
                .policy
                .ok_or_else(|| CliError::Usage("create requires --policy <file>".into()))?;
            let policy_json = std::fs::read_to_string(policy_path)?;
            forward(
                &mut client,
                &Request::TenantCreate {
                    tenant: tenant.to_string(),
                    mode: parsed.mode.unwrap_or_else(|| "block".to_string()),
                    policy_json,
                    max_in_flight: parsed.max_in_flight,
                    queue_capacity: parsed.queue_capacity,
                },
            )
        }
        "observe" => {
            let tenant = expect(positional.next(), "observe requires a tenant id")?;
            let service = expect(positional.next(), "observe requires a service id")?;
            let document = expect(positional.next(), "observe requires a document id")?;
            let text = read_document_text(&parsed, positional.next())?;
            let paragraphs: Vec<ParagraphSlot> =
                browserflow_fingerprint::segment::split_paragraphs(&text)
                    .iter()
                    .enumerate()
                    .map(|(index, segment)| ParagraphSlot {
                        index,
                        text: segment.text.to_string(),
                    })
                    .collect();
            let observed = paragraphs.len();
            client
                .observe_batch(tenant, service, document, paragraphs)
                .map_err(|e| CliError::Daemon(e.to_string()))?;
            Ok(Report::DaemonObserved(ObserveSummary {
                tenant: tenant.to_string(),
                observed,
            }))
        }
        "check" => {
            let [tenant, service, document, file] = take4(
                &mut positional,
                "check requires <tenant> <service> <document> <file>",
            )?;
            let text = std::fs::read_to_string(file)?;
            let paragraphs = browserflow_fingerprint::segment::split_paragraphs(&text)
                .iter()
                .enumerate()
                .map(|(index, segment)| ParagraphSlot {
                    index,
                    text: segment.text.to_string(),
                })
                .collect();
            let reply = client
                .check(tenant, service, document, paragraphs)
                .map_err(|e| CliError::Daemon(e.to_string()))?;
            reply_to_report(reply)
        }
        "keystroke" => {
            let [tenant, service, document, index] = take4(
                &mut positional,
                "keystroke requires <tenant> <service> <document> <index>",
            )?;
            let index: usize = index.parse().map_err(|_| {
                CliError::Usage(format!("keystroke index must be an integer, got {index:?}"))
            })?;
            let text = parsed
                .text
                .ok_or_else(|| CliError::Usage("keystroke requires --text <text>".into()))?;
            let reply = client
                .keystroke(tenant, service, document, index, &text)
                .map_err(|e| CliError::Daemon(e.to_string()))?;
            reply_to_report(reply)
        }
        "stats" => {
            let tenant = expect(positional.next(), "stats requires a tenant id")?;
            forward(
                &mut client,
                &Request::Stats {
                    tenant: tenant.to_string(),
                },
            )
        }
        "lineage" => {
            let tenant = expect(positional.next(), "lineage requires a tenant id")?;
            forward(
                &mut client,
                &Request::Lineage {
                    tenant: tenant.to_string(),
                },
            )
        }
        "alerts" => {
            let tenant = expect(positional.next(), "alerts requires a tenant id")?;
            forward(
                &mut client,
                &Request::Alerts {
                    tenant: tenant.to_string(),
                },
            )
        }
        "drain" => forward(&mut client, &Request::Drain),
        other => Err(CliError::Usage(format!(
            "unknown daemon subcommand {other:?}; run `bfctl help`"
        ))),
    }
}

/// Resolves the document body for `observe`: `--file <path>`,
/// `--stdin`, or a trailing positional path (the historical form).
fn read_document_text(parsed: &DaemonArgs, trailing: Option<&str>) -> Result<String, CliError> {
    if parsed.stdin {
        if parsed.file.is_some() || trailing.is_some() {
            return Err(CliError::Usage(
                "observe takes --stdin or a file, not both".into(),
            ));
        }
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)?;
        return Ok(text);
    }
    let path = parsed
        .file
        .as_deref()
        .or(trailing)
        .ok_or_else(|| CliError::Usage("observe requires --file <path> or --stdin".into()))?;
    Ok(std::fs::read_to_string(path)?)
}

/// Flags shared by the daemon subcommands.
struct DaemonArgs {
    socket: Option<String>,
    mode: Option<String>,
    policy: Option<String>,
    text: Option<String>,
    file: Option<String>,
    stdin: bool,
    max_in_flight: u64,
    queue_capacity: u64,
    positional: Vec<String>,
}

impl DaemonArgs {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = Self {
            socket: None,
            mode: None,
            policy: None,
            text: None,
            file: None,
            stdin: false,
            max_in_flight: 0,
            queue_capacity: 0,
            positional: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--socket" => parsed.socket = Some(take_value(&mut iter, "--socket")?),
                "--mode" => parsed.mode = Some(take_value(&mut iter, "--mode")?),
                "--policy" => parsed.policy = Some(take_value(&mut iter, "--policy")?),
                "--text" => parsed.text = Some(take_value(&mut iter, "--text")?),
                "--file" => parsed.file = Some(take_value(&mut iter, "--file")?),
                "--stdin" => parsed.stdin = true,
                "--max-in-flight" => {
                    parsed.max_in_flight = take_count(&mut iter, "--max-in-flight")?;
                }
                "--queue" => parsed.queue_capacity = take_count(&mut iter, "--queue")?,
                flag if flag.starts_with("--") => {
                    return Err(CliError::Usage(format!("unknown option {flag}")));
                }
                _ => parsed.positional.push(arg.clone()),
            }
        }
        Ok(parsed)
    }
}

fn take_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    iter.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

fn take_count(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, CliError> {
    let raw = take_value(iter, flag)?;
    raw.parse::<u64>().map_err(|_| {
        CliError::Usage(format!(
            "{flag} requires a non-negative integer, got {raw:?}"
        ))
    })
}

fn expect<'a>(value: Option<&'a str>, message: &str) -> Result<&'a str, CliError> {
    value.ok_or_else(|| CliError::Usage(message.into()))
}

fn take4<'a>(
    iter: &mut impl Iterator<Item = &'a str>,
    message: &str,
) -> Result<[&'a str; 4], CliError> {
    let a = expect(iter.next(), message)?;
    let b = expect(iter.next(), message)?;
    let c = expect(iter.next(), message)?;
    let d = expect(iter.next(), message)?;
    Ok([a, b, c, d])
}

/// Sends one request and converts the reply into a report; daemon-side
/// `Error` replies become [`CliError::Daemon`].
fn forward(client: &mut DaemonClient, request: &Request) -> Result<Report, CliError> {
    let reply = client
        .request(request)
        .map_err(|e| CliError::Daemon(e.to_string()))?;
    reply_to_report(reply)
}

fn reply_to_report(reply: Reply) -> Result<Report, CliError> {
    match reply {
        Reply::Error { message } => Err(CliError::Daemon(message)),
        other => Ok(Report::Daemon(other)),
    }
}
