//! Typed command results — the "data" layer of the handler → data →
//! renderer split.
//!
//! Every `bfctl` command computes one of these structures before a
//! single byte of output exists. The renderer ([`crate::render`]) then
//! turns the same value into either the human-readable report or
//! machine-readable JSON (`--json`), so the two views can never drift
//! apart.

use browserflow_daemon::Reply;
use serde::Serialize;

/// The result of one `bfctl` invocation, ready to render.
#[derive(Debug)]
pub enum Report {
    /// The help screen.
    Help,
    /// `policy init`: the template policy, already JSON.
    PolicyTemplate(String),
    /// `policy validate`.
    PolicyValidate(PolicyValidation),
    /// `policy show`.
    PolicyShow(PolicyTable),
    /// `audit`.
    Audit(AuditTable),
    /// `fingerprint`.
    Fingerprint(FingerprintReport),
    /// `compare`.
    Compare(CompareReport),
    /// `check`.
    Check(CheckReport),
    /// `state`.
    State(StateReport),
    /// A `daemon …` subcommand that forwards one wire reply.
    Daemon(Reply),
    /// `daemon observe`: a document batch-ingested into a tenant's flow.
    DaemonObserved(ObserveSummary),
}

/// A service whose confidentiality labels exceed its privilege.
#[derive(Debug, Serialize)]
pub struct LabelWarning {
    /// The inconsistent service id.
    pub service: String,
    /// Its privilege label (`Lp`).
    pub privilege: String,
    /// Its confidentiality label (`Lc`).
    pub confidentiality: String,
}

/// `policy validate` summary.
#[derive(Debug, Serialize)]
pub struct PolicyValidation {
    /// Registered services.
    pub services: usize,
    /// Distinct tags across all labels.
    pub distinct_tags: usize,
    /// Records in the suppression audit log.
    pub audit_records: usize,
    /// Label-consistency warnings.
    pub warnings: Vec<LabelWarning>,
}

/// One row of `policy show`.
#[derive(Debug, Serialize)]
pub struct ServiceRow {
    /// Service id.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Privilege label.
    pub privilege: String,
    /// Confidentiality label.
    pub confidentiality: String,
}

/// `policy show` output.
#[derive(Debug, Serialize)]
pub struct PolicyTable {
    /// One row per service, in policy order.
    pub services: Vec<ServiceRow>,
}

/// One suppression audit record.
#[derive(Debug, Serialize)]
pub struct AuditRow {
    /// Monotonic sequence number.
    pub sequence: u64,
    /// The suppressed tag.
    pub tag: String,
    /// Who suppressed it.
    pub user: String,
    /// Their justification.
    pub justification: String,
}

/// `audit` output (already filtered).
#[derive(Debug, Serialize)]
pub struct AuditTable {
    /// Matching records in sequence order.
    pub records: Vec<AuditRow>,
}

/// Fingerprint density relative to the winnowing expectation.
#[derive(Debug, Serialize)]
pub struct DensityReport {
    /// Selected hashes per n-gram.
    pub actual: f64,
    /// The winnowing expectation `2/(w+1)`.
    pub expected: f64,
}

/// `fingerprint` statistics.
#[derive(Debug, Serialize)]
pub struct FingerprintReport {
    /// The file that was fingerprinted.
    pub file: String,
    /// Raw size in bytes.
    pub bytes: usize,
    /// Normalised length in characters.
    pub normalized_chars: usize,
    /// n-gram length used.
    pub ngram: usize,
    /// Winnowing window used.
    pub window: usize,
    /// Hashes the winnowing pass selected.
    pub selected: usize,
    /// Distinct hashes among them.
    pub distinct_hashes: usize,
    /// Density, absent when the text is shorter than one n-gram.
    pub density: Option<DensityReport>,
}

/// A disclosure verdict from `compare`.
#[derive(Debug, Serialize)]
pub struct DisclosureVerdict {
    /// The file doing the disclosing (contains the other's text).
    pub disclosing: String,
    /// The file being disclosed.
    pub disclosed: String,
}

/// `compare` output.
#[derive(Debug, Serialize)]
pub struct CompareReport {
    /// First file.
    pub path_a: String,
    /// Second file.
    pub path_b: String,
    /// Containment of `a` in `b`.
    pub a_in_b: f64,
    /// Containment of `b` in `a`.
    pub b_in_a: f64,
    /// Symmetric resemblance.
    pub resemblance: f64,
    /// The threshold applied.
    pub threshold: f64,
    /// Present when either direction crossed the threshold.
    pub disclosure: Option<DisclosureVerdict>,
}

/// One paragraph-level violation from `check`.
#[derive(Debug, Serialize)]
pub struct ParagraphViolation {
    /// Index of the offending paragraph in the target file.
    pub paragraph: usize,
    /// The tracked source it discloses.
    pub source: String,
    /// Fraction of the source disclosed (0..=1).
    pub disclosure: f64,
    /// Tags the destination lacks, rendered as a label.
    pub missing_tags: String,
}

/// One document-level violation from `check`.
#[derive(Debug, Serialize)]
pub struct DocumentViolation {
    /// The tracked source the whole document discloses.
    pub source: String,
    /// Fraction of the source disclosed (0..=1).
    pub disclosure: f64,
    /// Tags the destination lacks, rendered as a label.
    pub missing_tags: String,
}

/// `check` output.
#[derive(Debug, Serialize)]
pub struct CheckReport {
    /// The file whose upload was simulated.
    pub target: String,
    /// The destination service.
    pub dest: String,
    /// Paragraph-granularity violations.
    pub paragraph_violations: Vec<ParagraphViolation>,
    /// Document-granularity violations.
    pub document_violations: Vec<DocumentViolation>,
    /// Whether any violation was found.
    pub violation: bool,
}

/// Shard recovery summary for a sharded state directory.
#[derive(Debug, Serialize)]
pub struct ShardSummary {
    /// Paragraph-store shard outcome (rendered).
    pub paragraphs: String,
    /// Document-store shard outcome (rendered).
    pub documents: String,
    /// Whether every shard survived.
    pub complete: bool,
}

/// Hot/cold tier occupancy of one fingerprint store.
#[derive(Debug, Serialize)]
pub struct TierRow {
    /// Which store ("paragraphs" or "documents").
    pub store: String,
    /// Stripes currently backed by a cold (mmap'd) shard file.
    pub cold_shards: usize,
    /// Total stripes in the store.
    pub shard_count: usize,
    /// Segment records served in place from cold files.
    pub cold_segments: usize,
    /// Segment records resident in the mutable hot tier.
    pub hot_segments: usize,
    /// Cold records copied into the hot tier by mutating writes.
    pub promoted_segments: u64,
}

/// `state` output.
#[derive(Debug, Serialize)]
pub struct StateReport {
    /// The inspected file or directory.
    pub path: String,
    /// Present when the path was a sharded state directory.
    pub shards: Option<ShardSummary>,
    /// Per-store tier occupancy (cold-mapped vs hot-resident records).
    pub tier: Vec<TierRow>,
    /// Enforcement mode of the stored flow.
    pub mode: String,
    /// Services in the stored policy.
    pub services: usize,
    /// Tracked paragraph fingerprints.
    pub tracked_paragraphs: usize,
    /// Tracked document fingerprints.
    pub tracked_documents: usize,
    /// Distinct paragraph hashes.
    pub distinct_hashes: usize,
    /// Registered short secrets.
    pub short_secrets: usize,
    /// Suppression audit records.
    pub audit_records: usize,
    /// The warning report for the stored flow.
    pub warnings: String,
    /// Where `--save-dir` re-persisted the state, when requested.
    pub saved_dir: Option<String>,
}

/// `daemon observe` summary.
#[derive(Debug, Serialize)]
pub struct ObserveSummary {
    /// The tenant the paragraphs went to.
    pub tenant: String,
    /// Paragraphs observed and fingerprinted.
    pub observed: usize,
}
