//! Command handlers — the first stage of the handler → data → renderer
//! split.
//!
//! Each handler parses its own arguments, does the work, and returns a
//! typed [`Report`]; nothing here formats output. The renderer decides
//! how the data looks.

use crate::data::{
    AuditRow, AuditTable, CheckReport, CompareReport, DensityReport, DisclosureVerdict,
    DocumentViolation, FingerprintReport, LabelWarning, ParagraphViolation, PolicyTable,
    PolicyValidation, Report, ServiceRow, ShardSummary, StateReport, TierRow,
};
use crate::options::{parse_options, CliError, FingerprintOptions};
use browserflow::{BrowserFlow, CheckRequest};
use browserflow_fingerprint::{normalize, FingerprintConfig, Fingerprinter};
use browserflow_store::{SealedBytes, StoreKey};
use browserflow_tdm::{Policy, Service, Tag, TagSet};

pub(crate) fn policy_command(args: &[String]) -> Result<Report, CliError> {
    match args.first().map(String::as_str) {
        Some("init") => Ok(Report::PolicyTemplate(template_policy_json())),
        Some("validate") => {
            let policy = load_policy(args.get(1))?;
            let services = policy.services().count();
            let mut tags = std::collections::BTreeSet::new();
            for service in policy.services() {
                for tag in service.privilege().iter().chain(service.confidentiality()) {
                    tags.insert(tag.clone());
                }
            }
            // Sanity warnings an administrator wants to see.
            let warnings = policy
                .services()
                .filter(|service| !service.confidentiality().is_subset(service.privilege()))
                .map(|service| LabelWarning {
                    service: service.id().to_string(),
                    privilege: service.privilege().to_string(),
                    confidentiality: service.confidentiality().to_string(),
                })
                .collect();
            Ok(Report::PolicyValidate(PolicyValidation {
                services,
                distinct_tags: tags.len(),
                audit_records: policy.audit_log().len(),
                warnings,
            }))
        }
        Some("show") => {
            let policy = load_policy(args.get(1))?;
            let services = policy
                .services()
                .map(|service| ServiceRow {
                    id: service.id().to_string(),
                    name: service.name().to_string(),
                    privilege: service.privilege().to_string(),
                    confidentiality: service.confidentiality().to_string(),
                })
                .collect();
            Ok(Report::PolicyShow(PolicyTable { services }))
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown policy subcommand {other:?}; expected init, validate or show"
        ))),
        None => Err(CliError::Usage(
            "policy requires a subcommand: init, validate or show".into(),
        )),
    }
}

pub(crate) fn audit_command(args: &[String]) -> Result<Report, CliError> {
    let mut path: Option<&String> = None;
    let mut user_filter: Option<&str> = None;
    let mut tag_filter: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--user" => {
                user_filter = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--user requires a value".into()))?,
                );
            }
            "--tag" => {
                tag_filter = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--tag requires a value".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            _ => path = Some(arg),
        }
    }
    let policy = load_policy(path)?;
    let records = policy
        .audit_log()
        .iter()
        .filter(|r| user_filter.is_none_or(|u| r.user().as_str() == u))
        .filter(|r| tag_filter.is_none_or(|t| r.tag().name() == t))
        .map(|record| AuditRow {
            sequence: record.sequence(),
            tag: record.tag().to_string(),
            user: record.user().to_string(),
            justification: record.justification().to_string(),
        })
        .collect();
    Ok(Report::Audit(AuditTable { records }))
}

pub(crate) fn fingerprint_command(args: &[String]) -> Result<Report, CliError> {
    let (positional, options) = parse_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage(
            "fingerprint requires exactly one file argument".into(),
        ));
    };
    let text = std::fs::read_to_string(path)?;
    let fingerprinter = fingerprinter_for(&options)?;
    let normalized = normalize::normalize(&text);
    let print = fingerprinter.fingerprint(&text);
    let density = (normalized.len() >= options.ngram).then(|| {
        let grams = normalized.len() - options.ngram + 1;
        DensityReport {
            actual: print.len() as f64 / grams as f64,
            expected: 2.0 / (options.window as f64 + 1.0),
        }
    });
    Ok(Report::Fingerprint(FingerprintReport {
        file: (*path).to_string(),
        bytes: text.len(),
        normalized_chars: normalized.len(),
        ngram: options.ngram,
        window: options.window,
        selected: print.len(),
        distinct_hashes: print.distinct_len(),
        density,
    }))
}

pub(crate) fn compare_command(args: &[String]) -> Result<Report, CliError> {
    let (positional, options) = parse_options(args)?;
    let [path_a, path_b] = positional.as_slice() else {
        return Err(CliError::Usage(
            "compare requires exactly two file arguments".into(),
        ));
    };
    let text_a = std::fs::read_to_string(path_a)?;
    let text_b = std::fs::read_to_string(path_b)?;
    let fingerprinter = fingerprinter_for(&options)?;
    let print_a = fingerprinter.fingerprint(&text_a);
    let print_b = fingerprinter.fingerprint(&text_b);
    let a_in_b = print_a.containment_in(&print_b);
    let b_in_a = print_b.containment_in(&print_a);
    let disclosure = if a_in_b >= options.threshold && a_in_b > 0.0 {
        Some(DisclosureVerdict {
            disclosing: (*path_b).to_string(),
            disclosed: (*path_a).to_string(),
        })
    } else if b_in_a >= options.threshold && b_in_a > 0.0 {
        Some(DisclosureVerdict {
            disclosing: (*path_a).to_string(),
            disclosed: (*path_b).to_string(),
        })
    } else {
        None
    };
    Ok(Report::Compare(CompareReport {
        path_a: (*path_a).to_string(),
        path_b: (*path_b).to_string(),
        a_in_b,
        b_in_a,
        resemblance: print_a.resemblance(&print_b),
        threshold: options.threshold,
        disclosure,
    }))
}

pub(crate) fn check_command(args: &[String]) -> Result<Report, CliError> {
    let mut policy_path: Option<&str> = None;
    let mut sources: Vec<(&str, &str)> = Vec::new();
    let mut dest: Option<&str> = None;
    let mut target: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--policy" => {
                policy_path = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--policy requires a value".into()))?,
                );
            }
            "--source" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--source requires <service>:<file>".into()))?;
                let (service, file) = value.split_once(':').ok_or_else(|| {
                    CliError::Usage(format!("--source must be <service>:<file>, got {value:?}"))
                })?;
                sources.push((service, file));
            }
            "--dest" => {
                dest = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--dest requires a service id".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            positional => target = Some(positional),
        }
    }
    let policy_path =
        policy_path.ok_or_else(|| CliError::Usage("check requires --policy".into()))?;
    let dest = dest.ok_or_else(|| CliError::Usage("check requires --dest <service>".into()))?;
    let target = target.ok_or_else(|| CliError::Usage("check requires a target file".into()))?;
    if sources.is_empty() {
        return Err(CliError::Usage(
            "check requires at least one --source <service>:<file>".into(),
        ));
    }

    let policy: Policy = serde_json::from_str(&std::fs::read_to_string(policy_path)?)?;
    let flow = BrowserFlow::builder()
        .policy(policy)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for (service, file) in &sources {
        let text = std::fs::read_to_string(file)?;
        flow.index_text_document(&(*service).into(), file, &text)
            .map_err(|e| CliError::Usage(e.to_string()))?;
    }
    let text = std::fs::read_to_string(target)?;
    let segments = browserflow_fingerprint::segment::split_paragraphs(&text);
    let request = CheckRequest::batch(dest, target, segments.iter().map(|s| s.text));
    let decisions = flow
        .check(&request)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let mut paragraph_violations = Vec::new();
    for (index, decision) in decisions.iter().enumerate() {
        for violation in &decision.violations {
            paragraph_violations.push(ParagraphViolation {
                paragraph: index,
                source: violation.source.to_string(),
                disclosure: violation.disclosure,
                missing_tags: violation.missing_tags.to_string(),
            });
        }
    }
    let document_decision = flow
        .check_document_upload(&dest.into(), target, &text)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let document_violations: Vec<_> = document_decision
        .violations
        .iter()
        .map(|violation| DocumentViolation {
            source: violation.source.to_string(),
            disclosure: violation.disclosure,
            missing_tags: violation.missing_tags.to_string(),
        })
        .collect();
    let violation = !paragraph_violations.is_empty() || !document_violations.is_empty();
    Ok(Report::Check(CheckReport {
        target: target.to_string(),
        dest: dest.to_string(),
        paragraph_violations,
        document_violations,
        violation,
    }))
}

pub(crate) fn state_command(args: &[String]) -> Result<Report, CliError> {
    // Parse `<file|dir> --key <hex> [--save-dir <dir>] [--tiered]` by
    // hand (the shared options do not apply).
    let mut path: Option<&str> = None;
    let mut key_hex: Option<&str> = None;
    let mut save_dir: Option<&str> = None;
    let mut tiered = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--key" => {
                key_hex = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--key requires a value".into()))?,
                );
            }
            "--save-dir" => {
                save_dir = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--save-dir requires a value".into()))?,
                );
            }
            "--tiered" => tiered = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            positional => path = Some(positional),
        }
    }
    if tiered && save_dir.is_none() {
        return Err(CliError::Usage("--tiered requires --save-dir".into()));
    }
    let path =
        path.ok_or_else(|| CliError::Usage("state requires a file or directory argument".into()))?;
    let key = parse_key(key_hex.unwrap_or(&"00".repeat(32)))?;
    let (flow, shards) = if std::path::Path::new(path).is_dir() {
        // Sharded state directory: load with torn-write recovery and
        // report any shards that did not survive.
        let (flow, report) = BrowserFlow::load_from_dir(key, std::path::Path::new(path))
            .map_err(|e| CliError::Usage(format!("cannot open state directory: {e}")))?;
        let shards = ShardSummary {
            paragraphs: report.paragraphs.to_string(),
            documents: report.documents.to_string(),
            complete: report.is_complete(),
        };
        (flow, Some(shards))
    } else {
        let bytes = std::fs::read(path)?;
        let sealed = SealedBytes::from_bytes(&bytes)
            .map_err(|e| CliError::Usage(format!("not a sealed state file: {e}")))?;
        let flow = BrowserFlow::import_sealed(key, &sealed)
            .map_err(|e| CliError::Usage(format!("cannot open state: {e}")))?;
        (flow, None)
    };
    let saved_dir = match save_dir {
        Some(dir) => {
            let target = std::path::Path::new(dir);
            if tiered {
                flow.persist_tiered_to_dir(target)
            } else {
                flow.persist_to_dir(target)
            }
            .map_err(|e| CliError::Usage(format!("cannot write state directory: {e}")))?;
            Some(dir.to_string())
        }
        None => None,
    };
    let tier = vec![
        tier_row("paragraphs", flow.engine().paragraph_store()),
        tier_row("documents", flow.engine().document_store()),
    ];
    Ok(Report::State(StateReport {
        path: path.to_string(),
        shards,
        tier,
        mode: format!("{:?}", flow.mode()),
        services: flow.policy().services().count(),
        tracked_paragraphs: flow.engine().paragraph_count(),
        tracked_documents: flow.engine().document_count(),
        distinct_hashes: flow.engine().paragraph_hash_count(),
        short_secrets: flow.short_secret_count(),
        audit_records: flow.policy().audit_log().len(),
        warnings: browserflow::report::warning_report(&flow),
        saved_dir,
    }))
}

fn tier_row(store: &str, fingerprints: &browserflow_store::FingerprintStore) -> TierRow {
    let stats = fingerprints.stats();
    let total = fingerprints.segment_count();
    TierRow {
        store: store.to_string(),
        cold_shards: stats.cold_shards,
        shard_count: stats.shard_count,
        cold_segments: stats.cold_segments,
        hot_segments: total.saturating_sub(stats.cold_segments),
        promoted_segments: stats.tier_promoted_segments,
    }
}

pub(crate) fn parse_key(hex: &str) -> Result<StoreKey, CliError> {
    let hex = hex.trim();
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(CliError::Usage(
            "--key must be 64 hexadecimal characters (32 bytes)".into(),
        ));
    }
    let mut bytes = [0u8; 32];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let high = (chunk[0] as char).to_digit(16).expect("validated hex");
        let low = (chunk[1] as char).to_digit(16).expect("validated hex");
        bytes[i] = (high * 16 + low) as u8;
    }
    Ok(StoreKey::from_bytes(bytes))
}

fn fingerprinter_for(options: &FingerprintOptions) -> Result<Fingerprinter, CliError> {
    let config = FingerprintConfig::builder()
        .ngram_len(options.ngram)
        .window(options.window)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(Fingerprinter::new(config))
}

fn load_policy(path: Option<&String>) -> Result<Policy, CliError> {
    let path = path.ok_or_else(|| CliError::Usage("expected a policy file argument".into()))?;
    let json = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// The `policy init` template: the paper's three-service example.
pub(crate) fn template_policy_json() -> String {
    let ti = Tag::new("interview-data").expect("static tag");
    let tw = Tag::new("wiki-data").expect("static tag");
    let mut policy = Policy::new();
    policy
        .register(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone()]))
                .with_confidentiality(TagSet::from_iter([ti])),
        )
        .expect("unique id");
    policy
        .register(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .expect("unique id");
    policy
        .register(Service::new("gdocs", "Google Docs"))
        .expect("unique id");
    serde_json::to_string_pretty(&policy).expect("policy serialises")
}
