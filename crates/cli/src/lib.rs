//! `bfctl` — command-line tooling for BrowserFlow deployments.
//!
//! Administrators author the enterprise data disclosure policy as a JSON
//! file (§3: "policies are set by enterprise-wide administrators once");
//! `bfctl` validates and inspects those files, exports audit logs, and
//! offers fingerprint utilities for tuning thresholds on real documents:
//!
//! ```text
//! bfctl policy init                       print a template policy
//! bfctl policy validate <policy.json>     parse + sanity-check a policy
//! bfctl policy show <policy.json>         tabulate services and labels
//! bfctl audit <policy.json>               print the suppression audit log
//! bfctl fingerprint <file> [options]      fingerprint statistics for a text
//! bfctl compare <a> <b> [options]         pairwise disclosure of two texts
//! ```
//!
//! Options: `--ngram N` (default 15), `--window W` (default 30),
//! `--threshold T` (default 0.5, `compare` only). The global `--json`
//! flag renders any command's result as machine-readable JSON.
//!
//! `bfctl daemon <sub> --socket <path>` talks to a running `bfd`
//! disclosure daemon: create tenants, stream observations, run checks
//! and drain the daemon gracefully.
//!
//! Internally every command flows handler → data → renderer: handlers
//! parse and compute, a typed data value holds the result, and the
//! renderer formats it — so the text report and the `--json` view can
//! never disagree.
//!
//! The library entry point [`run`] returns the rendered output, which is
//! what the test suite exercises; the `bfctl` binary prints it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod commands;
mod daemon;
mod data;
mod handlers;
mod options;
mod render;

pub use commands::run;
pub use options::{CliError, FingerprintOptions};

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_lists_all_commands() {
        let output = run_strs(&["help"]).unwrap();
        for command in [
            "policy init",
            "policy validate",
            "policy show",
            "audit",
            "fingerprint",
            "compare",
        ] {
            assert!(output.contains(command), "help lacks {command}");
        }
        // No args behaves like help.
        assert_eq!(run_strs(&[]).unwrap(), output);
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(matches!(run_strs(&["frobnicate"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_strs(&["policy", "bogus"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn policy_init_output_is_a_valid_policy() {
        let template = run_strs(&["policy", "init"]).unwrap();
        let policy: browserflow_tdm::Policy = serde_json::from_str(&template).unwrap();
        assert!(policy.services().count() >= 2);
    }

    #[test]
    fn policy_validate_roundtrip_via_tempfile() {
        let template = run_strs(&["policy", "init"]).unwrap();
        let path = std::env::temp_dir().join("bfctl-test-policy.json");
        std::fs::write(&path, &template).unwrap();
        let report = run_strs(&["policy", "validate", path.to_str().unwrap()]).unwrap();
        assert!(report.contains("policy is valid"));
        let shown = run_strs(&["policy", "show", path.to_str().unwrap()]).unwrap();
        assert!(shown.contains("Lp"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_validate_rejects_garbage() {
        let path = std::env::temp_dir().join("bfctl-test-garbage.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            run_strs(&["policy", "validate", path.to_str().unwrap()]),
            Err(CliError::Json(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            run_strs(&["policy", "validate", "/definitely/missing.json"]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn fingerprint_reports_statistics() {
        let path = std::env::temp_dir().join("bfctl-test-text.txt");
        std::fs::write(
            &path,
            "A reasonably long paragraph of text, with commas and enough \
             content to produce a handful of winnowed fingerprint hashes.",
        )
        .unwrap();
        let output = run_strs(&["fingerprint", path.to_str().unwrap()]).unwrap();
        assert!(output.contains("distinct hashes"));
        assert!(output.contains("n-gram length:  15"));
        // Custom parameters are honoured.
        let output = run_strs(&[
            "fingerprint",
            path.to_str().unwrap(),
            "--ngram",
            "6",
            "--window",
            "4",
        ])
        .unwrap();
        assert!(output.contains("n-gram length:  6"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compare_detects_disclosure_between_files() {
        let dir = std::env::temp_dir();
        let a = dir.join("bfctl-test-a.txt");
        let b = dir.join("bfctl-test-b.txt");
        let secret = "the quarterly revenue figures exceeded the forecast by \
                      twelve percent according to the final consolidated report";
        std::fs::write(&a, secret).unwrap();
        std::fs::write(&b, format!("as discussed: {secret} -- please keep quiet")).unwrap();
        let output = run_strs(&[
            "compare",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--ngram",
            "8",
            "--window",
            "6",
        ])
        .unwrap();
        assert!(output.contains("DISCLOSURE"), "{output}");
        // Unrelated text: no disclosure.
        std::fs::write(&b, "gardening club minutes: tulips along the east fence").unwrap();
        let output = run_strs(&["compare", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(output.contains("no disclosure"), "{output}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn bad_option_values_are_usage_errors() {
        assert!(matches!(
            run_strs(&["fingerprint", "x.txt", "--ngram", "zero"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_strs(&["fingerprint", "x.txt", "--ngram"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_strs(&["compare", "only-one.txt"]),
            Err(CliError::Usage(_))
        ));
    }
}
