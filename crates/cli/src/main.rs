//! The `bfctl` binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match browserflow_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("bfctl: {error}");
            std::process::exit(2);
        }
    }
}
