//! Option parsing and error types for `bfctl`.

use std::fmt;

/// Errors surfaced to the `bfctl` user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line was malformed; the message explains usage.
    Usage(String),
    /// A file could not be read.
    Io(std::io::Error),
    /// A policy file was not valid JSON / not a valid policy.
    Json(serde_json::Error),
    /// A `daemon` subcommand failed: the daemon was unreachable, spoke
    /// a bad frame, or replied with an error.
    Daemon(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "invalid policy file: {e}"),
            CliError::Daemon(message) => write!(f, "daemon: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

/// Fingerprint options shared by `fingerprint` and `compare`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintOptions {
    /// n-gram length (`--ngram`, default 15).
    pub ngram: usize,
    /// Winnowing window (`--window`, default 30).
    pub window: usize,
    /// Disclosure threshold (`--threshold`, default 0.5).
    pub threshold: f64,
}

impl Default for FingerprintOptions {
    fn default() -> Self {
        Self {
            ngram: 15,
            window: 30,
            threshold: 0.5,
        }
    }
}

/// Splits positional arguments from `--flag value` options.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown flags, missing values, or
/// unparsable numbers.
pub(crate) fn parse_options(args: &[String]) -> Result<(Vec<&str>, FingerprintOptions), CliError> {
    let mut positional = Vec::new();
    let mut options = FingerprintOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ngram" => options.ngram = take_number(&mut iter, "--ngram")?,
            "--window" => options.window = take_number(&mut iter, "--window")?,
            "--threshold" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--threshold requires a value".into()))?;
                options.threshold = raw.parse::<f64>().map_err(|_| {
                    CliError::Usage(format!("--threshold requires a number, got {raw:?}"))
                })?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option {flag}")));
            }
            _ => positional.push(arg.as_str()),
        }
    }
    Ok((positional, options))
}

fn take_number(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, CliError> {
    let raw = iter
        .next()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
    raw.parse::<usize>()
        .map_err(|_| CliError::Usage(format!("{flag} requires a positive integer, got {raw:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_paper_configuration() {
        let options = FingerprintOptions::default();
        assert_eq!(options.ngram, 15);
        assert_eq!(options.window, 30);
        assert_eq!(options.threshold, 0.5);
    }

    #[test]
    fn parses_mixed_positionals_and_flags() {
        let args = strings(&["a.txt", "--ngram", "8", "b.txt", "--threshold", "0.3"]);
        let (positional, options) = parse_options(&args).unwrap();
        assert_eq!(positional, vec!["a.txt", "b.txt"]);
        assert_eq!(options.ngram, 8);
        assert_eq!(options.threshold, 0.3);
        assert_eq!(options.window, 30);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_options(&strings(&["--wat"])).is_err());
        assert!(parse_options(&strings(&["--ngram", "-3"])).is_err());
        assert!(parse_options(&strings(&["--window"])).is_err());
        assert!(parse_options(&strings(&["--threshold", "much"])).is_err());
    }
}
