//! Renderers — the final stage of the handler → data → renderer split.
//!
//! Each [`Report`] renders two ways: the human-readable text `bfctl` has
//! always printed, or machine-readable JSON when the global `--json`
//! flag is set. Both views are projections of the same typed data, so a
//! scripted consumer and a human reader can never disagree about what a
//! command found.

use crate::data::{
    AuditTable, CheckReport, CompareReport, FingerprintReport, PolicyTable, PolicyValidation,
    Report, StateReport,
};
use crate::options::CliError;
use browserflow_daemon::Reply;
use serde::Serialize;
use std::fmt::Write as _;

pub(crate) const HELP: &str = "\
bfctl — BrowserFlow deployment tooling

USAGE:
    bfctl [--json] <command> [arguments]

COMMANDS:
    policy init                      print a template policy JSON
    policy validate <policy.json>    parse and sanity-check a policy file
    policy show <policy.json>        tabulate services and their labels
    audit <policy.json> [--user U] [--tag T]
                                     print the tag-suppression audit log
    fingerprint <file>               fingerprint statistics for a text file
    compare <a> <b>                  pairwise disclosure between two files
    state <file|dir> --key <64-hex> [--save-dir <dir> [--tiered]]
                                     inspect a sealed state file or sharded
                                     state directory (tier occupancy is
                                     reported); --save-dir re-persists the
                                     loaded state as a sharded directory,
                                     with --tiered as a plain v3 tiered
                                     layout whose cold shards load mmap'd
    check --policy <policy.json> --source <svc>:<file> [--source ...]
          --dest <svc> <file>        would uploading <file> to <svc> violate?
    daemon <sub> --socket <path>     talk to a running bfd; subcommands:
                                     ping, tenants, stats <tenant>, drain,
                                     create <tenant> --policy <file>
                                            [--mode M] [--max-in-flight N]
                                            [--queue N]
                                     observe <tenant> <svc> <doc> <file>
                                     check <tenant> <svc> <doc> <file>
                                     keystroke <tenant> <svc> <doc> <idx>
                                               --text <text>
                                     lineage <tenant>   cross-service flow edges
                                     alerts <tenant>    exfiltration alerts
    help                             this message

OPTIONS (fingerprint/compare):
    --ngram N        n-gram length in characters   (default 15)
    --window W       winnowing window in hashes    (default 30)
    --threshold T    disclosure threshold          (default 0.5, compare)

GLOBAL OPTIONS:
    --json           emit the result as machine-readable JSON
";

/// Renders a report as text, or as JSON when `json` is set.
pub(crate) fn render(report: &Report, json: bool) -> Result<String, CliError> {
    if json {
        render_json(report)
    } else {
        Ok(render_text(report))
    }
}

// --- JSON -----------------------------------------------------------------

#[derive(Serialize)]
struct HelpJson {
    help: String,
}

fn to_json<T: Serialize>(value: &T) -> Result<String, CliError> {
    let mut out = serde_json::to_string_pretty(value)?;
    out.push('\n');
    Ok(out)
}

fn render_json(report: &Report) -> Result<String, CliError> {
    match report {
        Report::Help => to_json(&HelpJson {
            help: HELP.to_string(),
        }),
        // The template is already JSON; pass it through untouched.
        Report::PolicyTemplate(json) => Ok(json.clone()),
        Report::PolicyValidate(v) => to_json(v),
        Report::PolicyShow(t) => to_json(t),
        Report::Audit(a) => to_json(a),
        Report::Fingerprint(f) => to_json(f),
        Report::Compare(c) => to_json(c),
        Report::Check(c) => to_json(c),
        Report::State(s) => to_json(s),
        Report::Daemon(reply) => to_json(reply),
        Report::DaemonObserved(o) => to_json(o),
    }
}

// --- Text -----------------------------------------------------------------

fn render_text(report: &Report) -> String {
    match report {
        Report::Help => HELP.to_string(),
        Report::PolicyTemplate(json) => json.clone(),
        Report::PolicyValidate(v) => policy_validate_text(v),
        Report::PolicyShow(t) => policy_show_text(t),
        Report::Audit(a) => audit_text(a),
        Report::Fingerprint(f) => fingerprint_text(f),
        Report::Compare(c) => compare_text(c),
        Report::Check(c) => check_text(c),
        Report::State(s) => state_text(s),
        Report::Daemon(reply) => daemon_reply_text(reply),
        Report::DaemonObserved(o) => {
            format!(
                "observed {} paragraphs into tenant {}\n",
                o.observed, o.tenant
            )
        }
    }
}

fn policy_validate_text(v: &PolicyValidation) -> String {
    let mut report = String::new();
    writeln!(report, "policy is valid").unwrap();
    writeln!(report, "  services: {}", v.services).unwrap();
    writeln!(report, "  distinct tags: {}", v.distinct_tags).unwrap();
    writeln!(report, "  audit records: {}", v.audit_records).unwrap();
    for warning in &v.warnings {
        writeln!(
            report,
            "  warning: {} creates data (Lc={}) it is not privileged to \
             receive back (Lp={})",
            warning.service, warning.confidentiality, warning.privilege
        )
        .unwrap();
    }
    report
}

fn policy_show_text(table: &PolicyTable) -> String {
    let mut out = String::new();
    writeln!(out, "{:<16} {:<24} {:<24} {:<24}", "id", "name", "Lp", "Lc").unwrap();
    for service in &table.services {
        writeln!(
            out,
            "{:<16} {:<24} {:<24} {:<24}",
            service.id, service.name, service.privilege, service.confidentiality
        )
        .unwrap();
    }
    out
}

fn audit_text(table: &AuditTable) -> String {
    let mut out = String::new();
    if table.records.is_empty() {
        writeln!(out, "audit log is empty (after filters)").unwrap();
        return out;
    }
    writeln!(
        out,
        "{:<6} {:<20} {:<16} justification",
        "seq", "tag", "user"
    )
    .unwrap();
    for record in &table.records {
        writeln!(
            out,
            "{:<6} {:<20} {:<16} {}",
            record.sequence, record.tag, record.user, record.justification
        )
        .unwrap();
    }
    out
}

fn fingerprint_text(f: &FingerprintReport) -> String {
    let mut out = String::new();
    writeln!(out, "file:           {}", f.file).unwrap();
    writeln!(out, "bytes:          {}", f.bytes).unwrap();
    writeln!(out, "normalised:     {} chars", f.normalized_chars).unwrap();
    writeln!(out, "n-gram length:  {}", f.ngram).unwrap();
    writeln!(out, "window:         {}", f.window).unwrap();
    writeln!(out, "selected:       {} hashes", f.selected).unwrap();
    writeln!(out, "distinct hashes: {}", f.distinct_hashes).unwrap();
    match &f.density {
        Some(density) => writeln!(
            out,
            "density:        {:.4} (expected {:.4})",
            density.actual, density.expected
        )
        .unwrap(),
        None => writeln!(
            out,
            "density:        n/a (text shorter than one n-gram; fingerprint is empty)"
        )
        .unwrap(),
    }
    out
}

fn compare_text(c: &CompareReport) -> String {
    let mut out = String::new();
    writeln!(out, "D({} -> {}) = {:.3}", c.path_a, c.path_b, c.a_in_b).unwrap();
    writeln!(out, "D({} -> {}) = {:.3}", c.path_b, c.path_a, c.b_in_a).unwrap();
    writeln!(out, "resemblance         = {:.3}", c.resemblance).unwrap();
    writeln!(out, "threshold           = {:.2}", c.threshold).unwrap();
    match &c.disclosure {
        Some(verdict) => writeln!(
            out,
            "verdict             = DISCLOSURE: {} discloses {}",
            verdict.disclosing, verdict.disclosed
        )
        .unwrap(),
        None => writeln!(out, "verdict             = no disclosure at this threshold").unwrap(),
    }
    out
}

fn check_text(c: &CheckReport) -> String {
    let mut out = String::new();
    for violation in &c.paragraph_violations {
        writeln!(
            out,
            "paragraph {}: discloses {:>5.1}% of {} (missing {})",
            violation.paragraph,
            violation.disclosure * 100.0,
            violation.source,
            violation.missing_tags
        )
        .unwrap();
    }
    for violation in &c.document_violations {
        writeln!(
            out,
            "document: discloses {:>5.1}% of {} (missing {})",
            violation.disclosure * 100.0,
            violation.source,
            violation.missing_tags
        )
        .unwrap();
    }
    if c.violation {
        writeln!(
            out,
            "verdict: VIOLATION — uploading {} to {} leaks tracked text",
            c.target, c.dest
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "verdict: clean — no tracked text from the sources detected"
        )
        .unwrap();
    }
    out
}

fn state_text(s: &StateReport) -> String {
    let mut out = String::new();
    match &s.shards {
        Some(shards) => {
            writeln!(out, "state directory:   {}", s.path).unwrap();
            writeln!(out, "paragraph shards:  {}", shards.paragraphs).unwrap();
            writeln!(out, "document shards:   {}", shards.documents).unwrap();
            if !shards.complete {
                writeln!(
                    out,
                    "WARNING: some shards were lost to corruption; the listed \
                     fingerprints are no longer tracked"
                )
                .unwrap();
            }
        }
        None => writeln!(out, "state file:        {}", s.path).unwrap(),
    }
    for row in &s.tier {
        writeln!(
            out,
            "tier ({}):   {}/{} shards cold, {} cold + {} hot segments",
            row.store, row.cold_shards, row.shard_count, row.cold_segments, row.hot_segments
        )
        .unwrap();
    }
    writeln!(out, "enforcement mode:  {}", s.mode).unwrap();
    writeln!(out, "services:          {}", s.services).unwrap();
    writeln!(out, "tracked paragraphs: {}", s.tracked_paragraphs).unwrap();
    writeln!(out, "tracked documents: {}", s.tracked_documents).unwrap();
    writeln!(out, "distinct hashes:   {}", s.distinct_hashes).unwrap();
    writeln!(out, "short secrets:     {}", s.short_secrets).unwrap();
    writeln!(out, "audit records:     {}", s.audit_records).unwrap();
    out.push('\n');
    out.push_str(&s.warnings);
    if let Some(dir) = &s.saved_dir {
        writeln!(out, "\nsaved sharded state directory: {dir}").unwrap();
    }
    out
}

fn daemon_reply_text(reply: &Reply) -> String {
    let mut out = String::new();
    match reply {
        Reply::Pong { version } => writeln!(out, "bfd is up ({version})").unwrap(),
        Reply::TenantCreated { tenant } => writeln!(out, "created tenant {tenant}").unwrap(),
        Reply::Tenants { tenants } => {
            writeln!(
                out,
                "{:<24} {:>9} {:>13}",
                "tenant", "in-flight", "max-in-flight"
            )
            .unwrap();
            for t in tenants {
                writeln!(
                    out,
                    "{:<24} {:>9} {:>13}",
                    t.tenant, t.in_flight, t.max_in_flight
                )
                .unwrap();
            }
        }
        Reply::Observed => writeln!(out, "observed").unwrap(),
        Reply::Decisions {
            decisions,
            latency_us,
        } => {
            for (index, decision) in decisions.iter().enumerate() {
                writeln!(out, "paragraph {index}: {}", decision.action).unwrap();
                for violation in &decision.violations {
                    writeln!(
                        out,
                        "  discloses {:>5.1}% of {} (missing {})",
                        violation.disclosure * 100.0,
                        violation.source,
                        violation.missing_tags.join(" ")
                    )
                    .unwrap();
                }
            }
            writeln!(out, "latency: {latency_us}us").unwrap();
        }
        Reply::Backpressure {
            reason,
            in_flight,
            limit,
            retry_after_ms,
            terminal,
        } => writeln!(
            out,
            "refused ({reason}): {in_flight} in flight, limit {limit}; \
             retry after {retry_after_ms}ms{}",
            if *terminal {
                " (terminal: this instance will not accept the request)"
            } else {
                ""
            }
        )
        .unwrap(),
        Reply::Superseded => writeln!(out, "superseded by a newer keystroke").unwrap(),
        Reply::Stats {
            pipeline,
            in_flight,
            max_in_flight,
        } => {
            writeln!(out, "queue depth:   {}", pipeline.queue_depth).unwrap();
            writeln!(out, "submitted:     {}", pipeline.submitted).unwrap();
            writeln!(out, "completed:     {}", pipeline.completed).unwrap();
            writeln!(out, "coalesced:     {}", pipeline.coalesced).unwrap();
            writeln!(out, "rejected:      {}", pipeline.rejected).unwrap();
            writeln!(out, "failed:        {}", pipeline.failed).unwrap();
            writeln!(out, "in flight:     {in_flight} / {max_in_flight}").unwrap();
        }
        Reply::Lineage { edges, clock } => {
            if edges.is_empty() {
                writeln!(out, "no cross-service flows recorded (clock {clock})").unwrap();
            } else {
                writeln!(
                    out,
                    "{:<6} {:<12} {:<24} {:<12} {:<24} operation",
                    "clock", "source", "segment", "sink", "into"
                )
                .unwrap();
                for edge in edges {
                    writeln!(
                        out,
                        "{:<6} {:<12} {:<24} {:<12} {:<24} {}",
                        edge.clock, edge.source, edge.segment, edge.sink, edge.into, edge.operation
                    )
                    .unwrap();
                }
                writeln!(out, "{} edges, graph clock {clock}", edges.len()).unwrap();
            }
        }
        Reply::Alerts { alerts } => {
            if alerts.is_empty() {
                writeln!(out, "no exfiltration alerts").unwrap();
            } else {
                for alert in alerts {
                    writeln!(
                        out,
                        "alert {}: {} hops into {} ({}, discloses {:>5.1}%, missing {})",
                        alert.id,
                        alert.hops.len(),
                        alert.sink,
                        alert.segment,
                        alert.disclosure * 100.0,
                        alert.missing_tags.join(" ")
                    )
                    .unwrap();
                    for (index, hop) in alert.hops.iter().enumerate() {
                        writeln!(
                            out,
                            "  hop {index}: {} -> {} ({} via {}, clock {})",
                            hop.source, hop.sink, hop.segment, hop.operation, hop.clock
                        )
                        .unwrap();
                    }
                    writeln!(
                        out,
                        "  receipt: action={} warning#{} audit-len={} hop-clocks={:?}",
                        alert.receipt.action,
                        alert.receipt.warning_index,
                        alert.receipt.audit_len,
                        alert.receipt.hop_clocks
                    )
                    .unwrap();
                }
            }
        }
        Reply::Drained { reports } => {
            for report in reports {
                if report.error.is_empty() {
                    write!(
                        out,
                        "drained tenant {} ({} checks completed)",
                        report.tenant, report.completed
                    )
                    .unwrap();
                    if report.persisted_to.is_empty() {
                        out.push('\n');
                    } else {
                        writeln!(out, ", persisted to {}", report.persisted_to).unwrap();
                    }
                } else {
                    writeln!(
                        out,
                        "tenant {} drain error: {}",
                        report.tenant, report.error
                    )
                    .unwrap();
                }
            }
            writeln!(out, "daemon is shutting down").unwrap();
        }
        Reply::Error { message } => writeln!(out, "error: {message}").unwrap(),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow::{ContainmentReceipt, ExfiltrationAlert, FlowEdge, FlowOperation};

    fn edge(source: &str, sink: &str, clock: u64) -> FlowEdge {
        FlowEdge {
            source: source.to_string(),
            sink: sink.to_string(),
            segment: format!("{source}/doc#p0"),
            into: format!("{sink}/doc#p0"),
            operation: FlowOperation::Observe,
            clock,
        }
    }

    #[test]
    fn lineage_reply_renders_edges_and_clock() {
        let reply = Reply::Lineage {
            edges: vec![edge("itool", "gdocs", 0), edge("gdocs", "wiki", 1)],
            clock: 2,
        };
        let text = daemon_reply_text(&reply);
        assert!(text.contains("itool"), "{text}");
        assert!(text.contains("2 edges, graph clock 2"), "{text}");

        let empty = daemon_reply_text(&Reply::Lineage {
            edges: Vec::new(),
            clock: 0,
        });
        assert!(empty.contains("no cross-service flows"), "{empty}");
    }

    #[test]
    fn alerts_reply_renders_hops_and_receipt() {
        let reply = Reply::Alerts {
            alerts: vec![ExfiltrationAlert {
                id: 0,
                sink: "itool".to_string(),
                segment: "itool/notes#p0".to_string(),
                missing_tags: vec!["interview-data".to_string()],
                disclosure: 0.8,
                hops: vec![edge("gdocs", "wiki", 0), edge("wiki", "itool", 1)],
                clock: 2,
                receipt: ContainmentReceipt {
                    alert_id: 0,
                    action: "block".to_string(),
                    hop_clocks: vec![0, 1],
                    warning_index: 0,
                    audit_len: 0,
                },
            }],
        };
        let text = daemon_reply_text(&reply);
        assert!(text.contains("alert 0: 2 hops into itool"), "{text}");
        assert!(text.contains("hop 0: gdocs -> wiki"), "{text}");
        assert!(text.contains("receipt: action=block"), "{text}");

        let empty = daemon_reply_text(&Reply::Alerts { alerts: Vec::new() });
        assert!(empty.contains("no exfiltration alerts"), "{empty}");
    }

    #[test]
    fn terminal_backpressure_is_labelled() {
        let text = daemon_reply_text(&Reply::Backpressure {
            reason: "draining".to_string(),
            in_flight: 0,
            limit: 0,
            retry_after_ms: 1000,
            terminal: true,
        });
        assert!(text.contains("retry after 1000ms"), "{text}");
        assert!(text.contains("terminal"), "{text}");
    }
}
