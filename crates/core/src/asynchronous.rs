//! Asynchronous disclosure decisions (§6.2).
//!
//! "When a user modifies a document in Google Docs, BrowserFlow is
//! triggered asynchronously on each key press. This means that users do
//! not perceive any additional delay when typing — independently of
//! BrowserFlow's response time — because the disclosure calculation
//! occurs in a different process."
//!
//! [`AsyncDecider`] runs the middleware on a dedicated worker thread.
//! Callers submit observe/check requests over a channel; each response
//! carries the end-to-end latency (submission to decision), which is the
//! quantity Figures 12 and 13 report.

use crate::middleware::{BrowserFlow, MiddlewareError, UploadDecision};
use browserflow_tdm::ServiceId;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A decision with its end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDecision {
    /// The middleware's decision.
    pub decision: Result<UploadDecision, MiddlewareError>,
    /// Time from request submission to decision availability.
    pub latency: Duration,
}

enum Request {
    Observe {
        service: ServiceId,
        document: String,
        index: usize,
        text: String,
        reply: Sender<Result<(), MiddlewareError>>,
    },
    Check {
        service: ServiceId,
        document: String,
        index: usize,
        text: String,
        submitted: Instant,
        reply: Sender<TimedDecision>,
    },
}

/// Handle to a middleware instance running on a worker thread.
///
/// # Example
///
/// ```rust
/// use browserflow::{AsyncDecider, BrowserFlow};
/// use browserflow_tdm::Service;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flow = BrowserFlow::builder()
///     .service(Service::new("gdocs", "Google Docs"))
///     .build()?;
/// let decider = AsyncDecider::spawn(flow);
/// let timed = decider.check(&"gdocs".into(), "draft", 0, "harmless text");
/// assert!(timed.decision.is_ok());
/// let _flow = decider.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AsyncDecider {
    requests: Sender<Request>,
    worker: Option<JoinHandle<BrowserFlow>>,
}

impl AsyncDecider {
    /// Moves `flow` onto a worker thread and returns the handle.
    pub fn spawn(flow: BrowserFlow) -> Self {
        let (requests, inbox): (Sender<Request>, Receiver<Request>) = unbounded();
        let worker = std::thread::Builder::new()
            .name("browserflow-decider".into())
            .spawn(move || {
                for request in inbox {
                    match request {
                        Request::Observe {
                            service,
                            document,
                            index,
                            text,
                            reply,
                        } => {
                            let result = flow
                                .observe_paragraph(&service, &document, index, &text)
                                .map(|_| ());
                            let _ = reply.send(result);
                        }
                        Request::Check {
                            service,
                            document,
                            index,
                            text,
                            submitted,
                            reply,
                        } => {
                            let decision = flow.check_upload(&service, &document, index, &text);
                            let _ = reply.send(TimedDecision {
                                decision,
                                latency: submitted.elapsed(),
                            });
                        }
                    }
                }
                flow
            })
            .expect("worker thread spawns");
        Self {
            requests,
            worker: Some(worker),
        }
    }

    /// Observes a paragraph on the worker and waits for completion.
    pub fn observe(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        text: &str,
    ) -> Result<(), MiddlewareError> {
        let (reply, response) = bounded(1);
        self.requests
            .send(Request::Observe {
                service: service.clone(),
                document: document.to_string(),
                index,
                text: text.to_string(),
                reply,
            })
            .expect("worker alive");
        response.recv().expect("worker replies")
    }

    /// Submits a disclosure check and blocks until the timed decision
    /// arrives.
    pub fn check(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        text: &str,
    ) -> TimedDecision {
        let (reply, response) = bounded(1);
        self.requests
            .send(Request::Check {
                service: service.clone(),
                document: document.to_string(),
                index,
                text: text.to_string(),
                submitted: Instant::now(),
                reply,
            })
            .expect("worker alive");
        response.recv().expect("worker replies")
    }

    /// Submits a check without waiting; the reply arrives on the returned
    /// channel. This is the fire-and-forget path a keystroke handler uses.
    pub fn check_nonblocking(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        text: &str,
    ) -> Receiver<TimedDecision> {
        let (reply, response) = bounded(1);
        self.requests
            .send(Request::Check {
                service: service.clone(),
                document: document.to_string(),
                index,
                text: text.to_string(),
                submitted: Instant::now(),
                reply,
            })
            .expect("worker alive");
        response
    }

    /// Stops the worker and returns the middleware (with all its state).
    pub fn shutdown(mut self) -> BrowserFlow {
        drop(std::mem::replace(&mut self.requests, unbounded().0));
        self.worker
            .take()
            .expect("worker not yet joined")
            .join()
            .expect("worker exits cleanly")
    }
}

impl Drop for AsyncDecider {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            drop(std::mem::replace(&mut self.requests, unbounded().0));
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::UploadAction;
    use browserflow_tdm::{Service, Tag, TagSet};

    fn flow() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        BrowserFlow::builder()
            .mode(crate::EnforcementMode::Block)
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap()
    }

    const SECRET: &str = "a long enough confidential paragraph about interview scoring \
                          criteria to produce a solid fingerprint for matching";

    #[test]
    fn async_observe_then_check() {
        let decider = AsyncDecider::spawn(flow());
        decider.observe(&"itool".into(), "eval", 0, SECRET).unwrap();
        let timed = decider.check(&"gdocs".into(), "draft", 0, SECRET);
        let decision = timed.decision.unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        assert!(timed.latency > Duration::ZERO);
        let flow = decider.shutdown();
        assert_eq!(flow.warnings().len(), 1);
    }

    #[test]
    fn nonblocking_check_delivers_later() {
        let decider = AsyncDecider::spawn(flow());
        let response = decider.check_nonblocking(&"gdocs".into(), "draft", 0, "public text");
        let timed = response.recv().unwrap();
        assert_eq!(timed.decision.unwrap().action, UploadAction::Allow);
    }

    #[test]
    fn requests_are_processed_in_order() {
        let decider = AsyncDecider::spawn(flow());
        // Observe must complete before the dependent check even when both
        // are queued back to back.
        decider.observe(&"itool".into(), "eval", 0, SECRET).unwrap();
        let pending: Vec<_> = (0..8)
            .map(|i| decider.check_nonblocking(&"gdocs".into(), "draft", i, SECRET))
            .collect();
        for response in pending {
            assert_eq!(
                response.recv().unwrap().decision.unwrap().action,
                UploadAction::Block
            );
        }
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let decider = AsyncDecider::spawn(flow());
        drop(decider);
    }
}
