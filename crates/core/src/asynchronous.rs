//! The asynchronous decision pipeline (§6.2).
//!
//! "When a user modifies a document in Google Docs, BrowserFlow is
//! triggered asynchronously on each key press. This means that users do
//! not perceive any additional delay when typing — independently of
//! BrowserFlow's response time — because the disclosure calculation
//! occurs in a different process."
//!
//! [`AsyncDecider`] runs the middleware on a dedicated worker thread
//! behind a **bounded** request queue:
//!
//! - **Batching** — a [`CheckRequest`] travels through the queue as a
//!   single message regardless of how many paragraphs it carries, so a
//!   document-wide recheck costs one worker round-trip and is served by
//!   the engine's parallel Algorithm 1 fan-out.
//! - **Backpressure** — the queue holds at most
//!   [`DeciderConfig::queue_capacity`] requests. [`AsyncDecider::submit`]
//!   blocks until space frees up; [`AsyncDecider::try_submit`] and
//!   [`AsyncDecider::submit_keystroke`] refuse with
//!   [`TrySubmitError::QueueFull`] instead, which is what a keystroke
//!   handler wants: drop the check, never stall the editor.
//! - **Coalescing** — keystroke checks are keyed by
//!   `(service, document, paragraph)`. When several checks for the same
//!   slot are queued, only the newest runs; the stale ones resolve as
//!   [`DeciderError::Superseded`] without touching the engine.
//! - **Timeouts** — [`DeciderConfig::check_timeout`] bounds how long a
//!   blocking check waits for its reply.
//! - **Typed failure** — every path reports [`DeciderError`] instead of
//!   panicking; dropping the decider fails outstanding replies with
//!   [`DeciderError::Closed`], while [`AsyncDecider::shutdown`] drains
//!   them first.
//!
//! Each successful response carries the end-to-end latency (submission to
//! decision), which is the quantity Figures 12 and 13 report, and the
//! pipeline exposes its health counters through
//! [`AsyncDecider::stats`].

use crate::engine::{panic_detail, WorkerPanic};
use crate::middleware::{BrowserFlow, MiddlewareError, UploadAction, UploadDecision};
use crate::request::CheckRequest;
use browserflow_fingerprint::TextEdit;
use browserflow_tdm::ServiceId;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why an asynchronous decision could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeciderError {
    /// The pipeline has shut down (or shut down before replying).
    Closed,
    /// A newer check for the same `(service, document, paragraph)` slot
    /// superseded this one before it ran.
    Superseded,
    /// The reply did not arrive within the configured timeout.
    Timeout,
    /// The middleware rejected the request (e.g. unknown service).
    Middleware(MiddlewareError),
}

impl fmt::Display for DeciderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => f.write_str("decision pipeline is closed"),
            Self::Superseded => {
                f.write_str("check superseded by a newer keystroke for the same slot")
            }
            Self::Timeout => f.write_str("timed out waiting for a decision"),
            Self::Middleware(e) => write!(f, "middleware error: {e}"),
        }
    }
}

impl std::error::Error for DeciderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Middleware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MiddlewareError> for DeciderError {
    fn from(e: MiddlewareError) -> Self {
        Self::Middleware(e)
    }
}

/// Why a non-blocking submission was refused at the queue boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The bounded request queue is at capacity; retry later or drop the
    /// check (a newer keystroke will re-cover the slot).
    QueueFull,
    /// The pipeline has shut down.
    Closed,
}

impl fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull => f.write_str("decision pipeline queue is full"),
            Self::Closed => f.write_str("decision pipeline is closed"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// Tunables for the asynchronous pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeciderConfig {
    /// Maximum number of requests the queue holds before submissions
    /// block ([`AsyncDecider::submit`]) or are refused
    /// ([`AsyncDecider::try_submit`]).
    pub queue_capacity: usize,
    /// Upper bound on how long blocking checks wait for their reply;
    /// `None` waits indefinitely.
    pub check_timeout: Option<Duration>,
}

impl Default for DeciderConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            check_timeout: None,
        }
    }
}

/// A point-in-time snapshot of the pipeline's health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PipelineStats {
    /// Requests currently queued (or blocked waiting for queue space).
    pub queue_depth: usize,
    /// Requests accepted into the queue since spawn.
    pub submitted: u64,
    /// Check requests that produced decisions.
    pub completed: u64,
    /// Stale keystroke checks skipped because a newer check for the same
    /// slot was already queued.
    pub coalesced: u64,
    /// Non-blocking submissions refused with
    /// [`TrySubmitError::QueueFull`].
    pub rejected: u64,
    /// Blocking waits that gave up with [`DeciderError::Timeout`].
    pub timeouts: u64,
    /// Check batches executed by the worker.
    pub batches: u64,
    /// Total paragraphs across executed batches.
    pub batch_paragraphs: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Checks that failed (middleware error, or abandoned at shutdown).
    pub failed: u64,
}

impl PipelineStats {
    /// Mean paragraphs per executed batch (0 when nothing ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_paragraphs as f64 / self.batches as f64
        }
    }
}

/// A batch of decisions with the end-to-end latency of the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedBatch {
    /// One decision per requested paragraph, in request order.
    pub decisions: Vec<UploadDecision>,
    /// Time from request submission to batch availability.
    pub latency: Duration,
}

impl TimedBatch {
    /// Collapses the batch to its first decision (the single-paragraph
    /// shape); an empty batch allows.
    pub fn into_single(self) -> TimedDecision {
        let decision = self.decisions.into_iter().next().unwrap_or(UploadDecision {
            action: UploadAction::Allow,
            violations: Vec::new(),
        });
        TimedDecision {
            decision,
            latency: self.latency,
        }
    }
}

/// A single decision with its end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDecision {
    /// The middleware's decision.
    pub decision: UploadDecision,
    /// Time from request submission to decision availability.
    pub latency: Duration,
}

type CoalesceKey = (ServiceId, String, usize);
type CheckReply = Result<TimedBatch, DeciderError>;

struct CheckJob {
    request: CheckRequest<'static>,
    /// `Some((key, seq))` for keystroke checks: the job runs only if it
    /// is still the newest submission for `key`.
    coalesce: Option<(CoalesceKey, u64)>,
    submitted: Instant,
    reply: Sender<CheckReply>,
}

/// A keystroke travelling through the queue as an *edit* instead of the
/// full paragraph text. Superseded edits are still absorbed into the
/// middleware's keystroke session (state must see every edit, verdicts
/// only the newest), so coalescing skips the disclosure evaluation — the
/// expensive half — without desynchronising the session.
struct EditJob {
    service: ServiceId,
    document: String,
    index: usize,
    edit: TextEdit,
    coalesce: (CoalesceKey, u64),
    submitted: Instant,
    reply: Sender<CheckReply>,
}

enum Request {
    Observe {
        service: ServiceId,
        document: String,
        index: usize,
        text: String,
        reply: Sender<Result<(), DeciderError>>,
    },
    ObserveBatch {
        service: ServiceId,
        document: String,
        paragraphs: Vec<(usize, String)>,
        reply: Sender<Result<usize, DeciderError>>,
    },
    Check(Box<CheckJob>),
    EditCheck(Box<EditJob>),
    /// Runs a read-only closure against the worker's middleware (lineage
    /// queries, stats, background snapshots) in queue order; the closure
    /// carries its own reply channel.
    Inspect(Box<dyn FnOnce(&BrowserFlow) + Send>),
}

#[derive(Debug, Default)]
struct Counters {
    depth: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    batches: AtomicU64,
    batch_paragraphs: AtomicU64,
    max_batch: AtomicU64,
    failed: AtomicU64,
}

#[derive(Debug, Default)]
struct Shared {
    counters: Counters,
    /// Newest pending sequence number per coalescing key.
    latest: Mutex<HashMap<CoalesceKey, u64>>,
    seq: AtomicU64,
    /// Set when the decider is dropped without a graceful shutdown:
    /// the worker fails remaining replies instead of computing them.
    closing: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> PipelineStats {
        let c = &self.counters;
        PipelineStats {
            queue_depth: c.depth.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batch_paragraphs: c.batch_paragraphs.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
        }
    }
}

/// A check in flight: a receipt for one [`CheckRequest`] travelling
/// through the pipeline.
#[derive(Debug)]
pub struct PendingBatch {
    response: Receiver<CheckReply>,
    shared: Arc<Shared>,
}

impl PendingBatch {
    /// Blocks until the batch decision arrives.
    pub fn wait(self) -> Result<TimedBatch, DeciderError> {
        self.response.recv().map_err(|_| DeciderError::Closed)?
    }

    /// Blocks for at most `timeout`, then gives up with
    /// [`DeciderError::Timeout`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<TimedBatch, DeciderError> {
        match self.response.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.shared
                    .counters
                    .timeouts
                    .fetch_add(1, Ordering::Relaxed);
                Err(DeciderError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(DeciderError::Closed),
        }
    }

    /// Non-blocking probe: `None` while the check is still in flight.
    pub fn poll(&self) -> Option<Result<TimedBatch, DeciderError>> {
        match self.response.try_recv() {
            Ok(result) => Some(result),
            Err(crossbeam::channel::TryRecvError::Empty) => None,
            Err(crossbeam::channel::TryRecvError::Disconnected) => Some(Err(DeciderError::Closed)),
        }
    }
}

/// A single-paragraph check in flight (the keystroke shape).
#[derive(Debug)]
pub struct PendingDecision {
    inner: PendingBatch,
}

impl From<PendingBatch> for PendingDecision {
    fn from(inner: PendingBatch) -> Self {
        Self { inner }
    }
}

impl PendingDecision {
    /// Blocks until the decision arrives.
    pub fn wait(self) -> Result<TimedDecision, DeciderError> {
        self.inner.wait().map(TimedBatch::into_single)
    }

    /// Blocks for at most `timeout`, then gives up with
    /// [`DeciderError::Timeout`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<TimedDecision, DeciderError> {
        self.inner
            .wait_timeout(timeout)
            .map(TimedBatch::into_single)
    }

    /// Non-blocking probe: `None` while the check is still in flight.
    pub fn poll(&self) -> Option<Result<TimedDecision, DeciderError>> {
        self.inner
            .poll()
            .map(|result| result.map(TimedBatch::into_single))
    }
}

/// Handle to a middleware instance running on a worker thread behind a
/// bounded request queue.
///
/// # Example
///
/// ```rust
/// use browserflow::{AsyncDecider, BrowserFlow, CheckRequest, UploadAction};
/// use browserflow_tdm::Service;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flow = BrowserFlow::builder()
///     .service(Service::new("gdocs", "Google Docs"))
///     .build()?;
/// let decider = AsyncDecider::spawn(flow);
///
/// // One keystroke check:
/// let timed = decider.check("gdocs", "draft", 0, "harmless text")?;
/// assert_eq!(timed.decision.action, UploadAction::Allow);
///
/// // A document-wide recheck: one round-trip for the whole batch.
/// let batch = decider.check_request(
///     CheckRequest::batch("gdocs", "draft", ["first paragraph", "second paragraph"]),
/// )?;
/// assert_eq!(batch.decisions.len(), 2);
///
/// let _flow = decider.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AsyncDecider {
    requests: Option<Sender<Request>>,
    worker: Option<JoinHandle<BrowserFlow>>,
    shared: Arc<Shared>,
    config: DeciderConfig,
}

impl AsyncDecider {
    /// Moves `flow` onto a worker thread with the default
    /// [`DeciderConfig`].
    pub fn spawn(flow: BrowserFlow) -> Self {
        Self::spawn_with(flow, DeciderConfig::default())
    }

    /// Moves `flow` onto a worker thread with an explicit configuration.
    pub fn spawn_with(flow: BrowserFlow, config: DeciderConfig) -> Self {
        let (requests, inbox) = bounded(config.queue_capacity.max(1));
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("browserflow-decider".into())
            .spawn(move || run_worker(flow, inbox, worker_shared))
            .expect("worker thread spawns");
        Self {
            requests: Some(requests),
            worker: Some(worker),
            shared,
            config,
        }
    }

    /// The configuration the pipeline was spawned with.
    pub fn config(&self) -> DeciderConfig {
        self.config
    }

    /// A snapshot of the pipeline's health counters.
    pub fn stats(&self) -> PipelineStats {
        self.shared.snapshot()
    }

    fn sender(&self) -> Result<&Sender<Request>, DeciderError> {
        self.requests.as_ref().ok_or(DeciderError::Closed)
    }

    /// Blocking enqueue: waits for queue space under backpressure.
    fn enqueue(&self, request: Request) -> Result<(), DeciderError> {
        let sender = self.sender()?;
        let counters = &self.shared.counters;
        counters.depth.fetch_add(1, Ordering::Relaxed);
        match sender.send(request) {
            Ok(()) => {
                counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                counters.depth.fetch_sub(1, Ordering::Relaxed);
                Err(DeciderError::Closed)
            }
        }
    }

    /// Non-blocking enqueue: refuses instead of waiting.
    fn try_enqueue(&self, request: Request) -> Result<(), TrySubmitError> {
        let sender = self.requests.as_ref().ok_or(TrySubmitError::Closed)?;
        let counters = &self.shared.counters;
        counters.depth.fetch_add(1, Ordering::Relaxed);
        match sender.try_send(request) {
            Ok(()) => {
                counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                counters.depth.fetch_sub(1, Ordering::Relaxed);
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(TrySubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                counters.depth.fetch_sub(1, Ordering::Relaxed);
                Err(TrySubmitError::Closed)
            }
        }
    }

    /// Observes a paragraph on the worker and waits for completion.
    pub fn observe(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<(), DeciderError> {
        let (reply, response) = bounded(1);
        self.enqueue(Request::Observe {
            service: service.into(),
            document: document.into(),
            index,
            text: text.into(),
            reply,
        })?;
        response.recv().map_err(|_| DeciderError::Closed)?
    }

    /// Bulk-ingests a document's paragraph slots on the worker in **one**
    /// queue round-trip ([`BrowserFlow::observe_paragraphs`]) and waits
    /// for completion. Returns the number of paragraphs observed.
    pub fn observe_batch(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        paragraphs: Vec<(usize, String)>,
    ) -> Result<usize, DeciderError> {
        let (reply, response) = bounded(1);
        self.enqueue(Request::ObserveBatch {
            service: service.into(),
            document: document.into(),
            paragraphs,
            reply,
        })?;
        response.recv().map_err(|_| DeciderError::Closed)?
    }

    /// Submits a [`CheckRequest`] without waiting for the reply. Blocks
    /// only for queue space (backpressure).
    pub fn submit(&self, request: CheckRequest<'_>) -> Result<PendingBatch, DeciderError> {
        let (job, pending) = self.make_job(request, None);
        self.enqueue(Request::Check(job))?;
        Ok(pending)
    }

    /// Submits a [`CheckRequest`] without waiting at all: refuses with
    /// [`TrySubmitError::QueueFull`] when the queue is at capacity.
    pub fn try_submit(&self, request: CheckRequest<'_>) -> Result<PendingBatch, TrySubmitError> {
        let (job, pending) = self.make_job(request, None);
        self.try_enqueue(Request::Check(job))?;
        Ok(pending)
    }

    /// Submits a coalescing keystroke check for one
    /// `(service, document, paragraph)` slot.
    ///
    /// When several checks for the same slot pile up in the queue, only
    /// the newest runs; older pending checks resolve as
    /// [`DeciderError::Superseded`]. Never blocks: a full queue refuses
    /// with [`TrySubmitError::QueueFull`].
    pub fn submit_keystroke(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<PendingDecision, TrySubmitError> {
        let service = service.into();
        let document = document.into();
        let key: CoalesceKey = (service.clone(), document.clone(), index);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let request = CheckRequest::paragraph(service, document, index, text.into());
        let (job, pending) = self.make_job(request, Some((key.clone(), seq)));
        // Hold the coalescing map across the enqueue so the worker cannot
        // observe the new sequence number before the job is queued, and
        // so a refused job never becomes the slot's "newest" entry.
        let mut latest = self.shared.latest.lock();
        self.try_enqueue(Request::Check(job))?;
        latest.insert(key, seq);
        drop(latest);
        Ok(PendingDecision::from(pending))
    }

    /// Submits a coalescing keystroke *edit* for one
    /// `(service, document, paragraph)` slot — the incremental counterpart
    /// of [`AsyncDecider::submit_keystroke`].
    ///
    /// The edit crosses the queue instead of the whole paragraph text and
    /// is applied to the middleware's keystroke session
    /// ([`BrowserFlow::check_keystroke`]) on the worker. When several edits
    /// for the same slot pile up, only the newest produces a decision;
    /// older ones are *absorbed* — their splice still reaches the session,
    /// they just skip the disclosure evaluation — and resolve as
    /// [`DeciderError::Superseded`]. Never blocks: a full queue refuses
    /// with [`TrySubmitError::QueueFull`]; a refused edit never touches
    /// the session, so the caller can resubmit it unchanged.
    pub fn submit_keystroke_edit(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        index: usize,
        edit: TextEdit,
    ) -> Result<PendingDecision, TrySubmitError> {
        let service = service.into();
        let document = document.into();
        let key: CoalesceKey = (service.clone(), document.clone(), index);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let (reply, response) = bounded(1);
        let job = Box::new(EditJob {
            service,
            document,
            index,
            edit,
            coalesce: (key.clone(), seq),
            submitted: Instant::now(),
            reply,
        });
        let pending = PendingBatch {
            response,
            shared: Arc::clone(&self.shared),
        };
        // Same ordering discipline as `submit_keystroke`: hold the
        // coalescing map across the enqueue.
        let mut latest = self.shared.latest.lock();
        self.try_enqueue(Request::EditCheck(job))?;
        latest.insert(key, seq);
        drop(latest);
        Ok(PendingDecision::from(pending))
    }

    /// Submits a disclosure check and blocks until the timed decision
    /// arrives (or [`DeciderConfig::check_timeout`] elapses).
    pub fn check(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<TimedDecision, DeciderError> {
        let request = CheckRequest::paragraph(service.into(), document.into(), index, text.into());
        self.check_request(request).map(TimedBatch::into_single)
    }

    /// Runs a closure against the worker's middleware and waits for its
    /// result. The closure runs on the worker thread in queue order —
    /// after every check already queued — with shared (`&`) access, so it
    /// can read lineage, alerts, warnings, or persist a snapshot without
    /// draining the decider.
    ///
    /// # Errors
    ///
    /// Returns [`DeciderError::Closed`] if the decider is shutting down or
    /// the closure panicked (the panic is contained on the worker).
    pub fn with_flow<T: Send + 'static>(
        &self,
        f: impl FnOnce(&BrowserFlow) -> T + Send + 'static,
    ) -> Result<T, DeciderError> {
        let (reply, response) = bounded(1);
        self.enqueue(Request::Inspect(Box::new(move |flow: &BrowserFlow| {
            let _ = reply.send(f(flow));
        })))?;
        response.recv().map_err(|_| DeciderError::Closed)
    }

    /// Submits a [`CheckRequest`] and blocks until the whole batch
    /// resolves (or [`DeciderConfig::check_timeout`] elapses). The batch
    /// crosses the queue as one message and is served by a single
    /// Algorithm 1 fan-out.
    pub fn check_request(&self, request: CheckRequest<'_>) -> Result<TimedBatch, DeciderError> {
        let pending = self.submit(request)?;
        match self.config.check_timeout {
            Some(timeout) => pending.wait_timeout(timeout),
            None => pending.wait(),
        }
    }

    /// Submits a check without waiting; the reply arrives on the returned
    /// [`PendingDecision`]. This is the fire-and-forget path a keystroke
    /// handler uses when it must not coalesce.
    pub fn check_nonblocking(
        &self,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<PendingDecision, DeciderError> {
        let request = CheckRequest::paragraph(service.into(), document.into(), index, text.into());
        self.submit(request).map(PendingDecision::from)
    }

    fn make_job(
        &self,
        request: CheckRequest<'_>,
        coalesce: Option<(CoalesceKey, u64)>,
    ) -> (Box<CheckJob>, PendingBatch) {
        let (reply, response) = bounded(1);
        let job = Box::new(CheckJob {
            request: request.into_owned(),
            coalesce,
            submitted: Instant::now(),
            reply,
        });
        let pending = PendingBatch {
            response,
            shared: Arc::clone(&self.shared),
        };
        (job, pending)
    }

    /// Closes the queue. With `fail_pending`, queued checks resolve as
    /// [`DeciderError::Closed`] instead of being computed.
    fn close(&mut self, fail_pending: bool) -> Option<BrowserFlow> {
        if fail_pending {
            self.shared.closing.store(true, Ordering::Relaxed);
        }
        self.requests.take();
        self.worker.take().and_then(|worker| worker.join().ok())
    }

    /// Gracefully stops the worker — every queued request is still
    /// served — and returns the middleware (with all its state).
    pub fn shutdown(mut self) -> Result<BrowserFlow, DeciderError> {
        self.close(false).ok_or(DeciderError::Closed)
    }
}

impl Drop for AsyncDecider {
    fn drop(&mut self) {
        // Fast path out: pending checks resolve as `Closed` rather than
        // being computed for nobody.
        self.close(true);
    }
}

/// Runs a middleware operation with panic containment: a panicking check
/// resolves as [`MiddlewareError::WorkerPanic`] instead of unwinding the
/// decider's worker thread — which would fail every queued and future
/// request of the tenant with [`DeciderError::Closed`]. parking_lot locks
/// do not poison and check paths only read the stores, so the middleware
/// stays consistent across a contained panic.
fn contain_panic<T>(op: impl FnOnce() -> Result<T, MiddlewareError>) -> Result<T, MiddlewareError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(op)).unwrap_or_else(|payload| {
        Err(MiddlewareError::WorkerPanic(WorkerPanic {
            detail: panic_detail(payload.as_ref()),
        }))
    })
}

fn run_worker(flow: BrowserFlow, inbox: Receiver<Request>, shared: Arc<Shared>) -> BrowserFlow {
    let counters = &shared.counters;
    for request in inbox.iter() {
        counters.depth.fetch_sub(1, Ordering::Relaxed);
        let closing = shared.closing.load(Ordering::Relaxed);
        match request {
            Request::Observe {
                service,
                document,
                index,
                text,
                reply,
            } => {
                if closing {
                    let _ = reply.send(Err(DeciderError::Closed));
                    continue;
                }
                let result = contain_panic(|| {
                    flow.observe_paragraph(&service, &document, index, &text)
                        .map(|_| ())
                })
                .map_err(DeciderError::from);
                let _ = reply.send(result);
            }
            Request::ObserveBatch {
                service,
                document,
                paragraphs,
                reply,
            } => {
                if closing {
                    let _ = reply.send(Err(DeciderError::Closed));
                    continue;
                }
                let result = contain_panic(|| {
                    let slots: Vec<(usize, &str)> = paragraphs
                        .iter()
                        .map(|(index, text)| (*index, text.as_str()))
                        .collect();
                    flow.observe_paragraphs(&service, &document, &slots)
                })
                .map_err(DeciderError::from);
                let _ = reply.send(result);
            }
            Request::Check(job) => {
                if closing {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(DeciderError::Closed));
                    continue;
                }
                if let Some((key, seq)) = &job.coalesce {
                    let mut latest = shared.latest.lock();
                    match latest.get(key) {
                        Some(&newest) if newest != *seq => {
                            drop(latest);
                            counters.coalesced.fetch_add(1, Ordering::Relaxed);
                            let _ = job.reply.send(Err(DeciderError::Superseded));
                            continue;
                        }
                        _ => {
                            latest.remove(key);
                        }
                    }
                }
                let paragraphs = job.request.len() as u64;
                let result = contain_panic(|| flow.check(&job.request));
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .batch_paragraphs
                    .fetch_add(paragraphs, Ordering::Relaxed);
                counters.max_batch.fetch_max(paragraphs, Ordering::Relaxed);
                let reply = match result {
                    Ok(decisions) => {
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(TimedBatch {
                            decisions,
                            latency: job.submitted.elapsed(),
                        })
                    }
                    Err(e) => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        Err(DeciderError::Middleware(e))
                    }
                };
                let _ = job.reply.send(reply);
            }
            Request::EditCheck(job) => {
                if closing {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(DeciderError::Closed));
                    continue;
                }
                let (key, seq) = &job.coalesce;
                let superseded = {
                    let mut latest = shared.latest.lock();
                    match latest.get(key) {
                        Some(&newest) if newest != *seq => true,
                        _ => {
                            latest.remove(key);
                            false
                        }
                    }
                };
                if superseded {
                    // The session must see every edit in order; only the
                    // verdict is skipped. An absorb error (stale session)
                    // resurfaces on the surviving newest edit.
                    let _ = contain_panic(|| {
                        flow.absorb_keystroke(&job.service, &job.document, job.index, &job.edit)
                    });
                    counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(DeciderError::Superseded));
                    continue;
                }
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters.batch_paragraphs.fetch_add(1, Ordering::Relaxed);
                counters.max_batch.fetch_max(1, Ordering::Relaxed);
                let reply = match contain_panic(|| {
                    flow.check_keystroke(&job.service, &job.document, job.index, &job.edit)
                }) {
                    Ok(decision) => {
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(TimedBatch {
                            decisions: vec![decision],
                            latency: job.submitted.elapsed(),
                        })
                    }
                    Err(e) => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        Err(DeciderError::Middleware(e))
                    }
                };
                let _ = job.reply.send(reply);
            }
            Request::Inspect(job) => {
                if closing {
                    // Dropping the closure drops its reply sender; the
                    // caller's recv resolves as Closed.
                    continue;
                }
                let _ = contain_panic(|| {
                    job(&flow);
                    Ok(())
                });
            }
        }
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::UploadAction;
    use browserflow_tdm::{Service, Tag, TagSet};

    fn flow() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        BrowserFlow::builder()
            .mode(crate::EnforcementMode::Block)
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap()
    }

    const SECRET: &str = "a long enough confidential paragraph about interview scoring \
                          criteria to produce a solid fingerprint for matching";

    #[test]
    fn async_observe_then_check() {
        let decider = AsyncDecider::spawn(flow());
        decider.observe("itool", "eval", 0, SECRET).unwrap();
        let timed = decider.check("gdocs", "draft", 0, SECRET).unwrap();
        assert_eq!(timed.decision.action, UploadAction::Block);
        assert!(timed.latency > Duration::ZERO);
        let flow = decider.shutdown().unwrap();
        assert_eq!(flow.warnings().len(), 1);
    }

    #[test]
    fn batch_request_is_one_round_trip() {
        let decider = AsyncDecider::spawn(flow());
        decider.observe("itool", "eval", 0, SECRET).unwrap();
        let texts = vec![SECRET, "harmless paragraph", SECRET];
        let batch = decider
            .check_request(CheckRequest::batch("gdocs", "draft", texts))
            .unwrap();
        assert_eq!(batch.decisions.len(), 3);
        assert_eq!(batch.decisions[0].action, UploadAction::Block);
        assert_eq!(batch.decisions[1].action, UploadAction::Allow);
        assert_eq!(batch.decisions[2].action, UploadAction::Block);
        let stats = decider.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_paragraphs, 3);
        assert_eq!(stats.max_batch, 3);
    }

    #[test]
    fn nonblocking_check_delivers_later() {
        let decider = AsyncDecider::spawn(flow());
        let response = decider
            .check_nonblocking("gdocs", "draft", 0, "public text")
            .unwrap();
        let timed = response.wait().unwrap();
        assert_eq!(timed.decision.action, UploadAction::Allow);
    }

    #[test]
    fn requests_are_processed_in_order() {
        let decider = AsyncDecider::spawn(flow());
        // Observe must complete before the dependent check even when both
        // are queued back to back.
        decider.observe("itool", "eval", 0, SECRET).unwrap();
        let pending: Vec<_> = (0..8)
            .map(|i| {
                decider
                    .check_nonblocking("gdocs", "draft", i, SECRET)
                    .unwrap()
            })
            .collect();
        for response in pending {
            assert_eq!(
                response.wait().unwrap().decision.action,
                UploadAction::Block
            );
        }
    }

    #[test]
    fn unknown_service_is_a_typed_error() {
        let decider = AsyncDecider::spawn(flow());
        let err = decider.check("nope", "draft", 0, "text").unwrap_err();
        assert!(matches!(err, DeciderError::Middleware(_)));
        let stats = decider.stats();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn coalesced_keystrokes_supersede_older_checks() {
        let decider = AsyncDecider::spawn(flow());
        // Stall the worker so the keystrokes pile up behind it.
        let slow = "x ".repeat(100_000);
        let _stall = decider
            .submit(CheckRequest::paragraph("gdocs", "stall", 0, slow))
            .unwrap();
        let first = decider
            .submit_keystroke("gdocs", "draft", 0, "dra")
            .unwrap();
        let second = decider
            .submit_keystroke("gdocs", "draft", 0, "draf")
            .unwrap();
        let third = decider
            .submit_keystroke("gdocs", "draft", 0, "draft")
            .unwrap();
        assert_eq!(first.wait().unwrap_err(), DeciderError::Superseded);
        assert_eq!(second.wait().unwrap_err(), DeciderError::Superseded);
        let timed = third.wait().unwrap();
        assert_eq!(timed.decision.action, UploadAction::Allow);
        let stats = decider.stats();
        assert_eq!(stats.coalesced, 2);
        // The stall check and the surviving keystroke completed.
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn keystroke_edits_coalesce_but_are_all_absorbed() {
        let decider = AsyncDecider::spawn(flow());
        decider.observe("itool", "eval", 0, SECRET).unwrap();
        // Stall the worker so the edits pile up behind it.
        let slow = "x ".repeat(100_000);
        let _stall = decider
            .submit(CheckRequest::paragraph("gdocs", "stall", 0, slow))
            .unwrap();
        // The secret arrives as three consecutive splices; the first two
        // are superseded but their content must still count.
        let bytes: Vec<&str> = {
            let third = SECRET.len() / 3;
            let mut cuts = vec![third, 2 * third];
            cuts.retain(|&c| SECRET.is_char_boundary(c));
            vec![
                &SECRET[..cuts[0]],
                &SECRET[cuts[0]..cuts[1]],
                &SECRET[cuts[1]..],
            ]
        };
        let mut offset = 0;
        let mut pending = Vec::new();
        for piece in &bytes {
            pending.push(
                decider
                    .submit_keystroke_edit("gdocs", "draft", 0, TextEdit::insert(offset, *piece))
                    .unwrap(),
            );
            offset += piece.len();
        }
        let mut results: Vec<_> = pending.into_iter().map(|p| p.wait()).collect();
        let last = results.pop().unwrap().unwrap();
        // Older edits coalesced away...
        for stale in results {
            assert_eq!(stale.unwrap_err(), DeciderError::Superseded);
        }
        // ...yet the surviving decision sees the whole typed secret.
        assert_eq!(last.decision.action, UploadAction::Block);
        let stats = decider.stats();
        assert_eq!(stats.coalesced, 2);
        // Session state on the returned middleware holds the full text.
        let flow = decider.shutdown().unwrap();
        assert!(flow
            .engine()
            .with_keystroke_text(&crate::DocKey::new("gdocs", "draft"), 0, |t| t == SECRET)
            .unwrap());
        let (_, incremental, absorbs) = flow.engine().fingerprint_mode();
        assert_eq!((incremental, absorbs), (1, 2));
    }

    #[test]
    fn queue_full_is_reported_and_recoverable() {
        let decider = AsyncDecider::spawn_with(
            flow(),
            DeciderConfig {
                queue_capacity: 1,
                check_timeout: None,
            },
        );
        // Stall the worker, then saturate the 1-slot queue.
        let slow = "y ".repeat(100_000);
        let _stall = decider
            .submit(CheckRequest::paragraph("gdocs", "stall", 0, slow))
            .unwrap();
        let mut accepted = Vec::new();
        let rejected = loop {
            match decider.try_submit(CheckRequest::paragraph("gdocs", "d", 0, "text")) {
                Ok(pending) => accepted.push(pending),
                Err(e) => break e,
            }
        };
        assert_eq!(rejected, TrySubmitError::QueueFull);
        assert!(decider.stats().rejected >= 1);
        // Accepted requests still resolve, and the queue recovers.
        for pending in accepted {
            pending.wait().unwrap();
        }
        decider
            .check_request(CheckRequest::paragraph("gdocs", "d", 1, "more text"))
            .unwrap();
    }

    #[test]
    fn check_timeout_reports_timeout() {
        let decider = AsyncDecider::spawn_with(
            flow(),
            DeciderConfig {
                queue_capacity: 8,
                check_timeout: Some(Duration::ZERO),
            },
        );
        let _stall = decider
            .submit(CheckRequest::paragraph(
                "gdocs",
                "stall",
                0,
                "z ".repeat(100_000),
            ))
            .unwrap();
        let err = decider.check("gdocs", "draft", 0, "text").unwrap_err();
        assert_eq!(err, DeciderError::Timeout);
        assert_eq!(decider.stats().timeouts, 1);
    }

    #[test]
    fn shutdown_drains_pending_checks() {
        let decider = AsyncDecider::spawn(flow());
        let pending: Vec<_> = (0..4)
            .map(|i| {
                decider
                    .submit(CheckRequest::paragraph("gdocs", "draft", i, "text"))
                    .unwrap()
            })
            .collect();
        decider.shutdown().unwrap();
        for receipt in pending {
            // Graceful shutdown computes queued checks before exiting.
            receipt.wait().unwrap();
        }
    }

    #[test]
    fn drop_fails_pending_checks_with_closed() {
        let decider = AsyncDecider::spawn(flow());
        let _stall = decider
            .submit(CheckRequest::paragraph(
                "gdocs",
                "stall",
                0,
                "w ".repeat(100_000),
            ))
            .unwrap();
        let pending: Vec<_> = (0..4)
            .map(|i| {
                decider
                    .submit(CheckRequest::paragraph("gdocs", "draft", i, "text"))
                    .unwrap()
            })
            .collect();
        drop(decider);
        for receipt in pending {
            // No hang, no panic: a typed Closed (or a served decision if
            // the worker got to it before the flag was set).
            match receipt.wait() {
                Ok(_) | Err(DeciderError::Closed) => {}
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let decider = AsyncDecider::spawn(flow());
        drop(decider);
    }

    #[test]
    fn stats_track_queue_and_submissions() {
        let decider = AsyncDecider::spawn(flow());
        decider.check("gdocs", "draft", 0, "text").unwrap();
        let stats = decider.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.mean_batch(), 1.0);
    }

    #[test]
    fn worker_thread_survives_a_panicking_check() {
        use crate::engine::test_hooks;
        let _guard = test_hooks::lock();
        let decider = AsyncDecider::spawn(flow());
        decider.observe("itool", "eval", 0, SECRET).unwrap();

        test_hooks::set_panic_on_marker(true);
        let poisoned = format!("{SECRET} {}", test_hooks::FAULT_MARKER);
        let err = decider
            .check("gdocs", "draft", 0, &poisoned)
            .expect_err("poisoned check must fail, not hang or abort");
        assert!(matches!(
            err,
            DeciderError::Middleware(MiddlewareError::WorkerPanic(_))
        ));
        test_hooks::set_panic_on_marker(false);

        // The decider's worker thread caught the panic in place, so the
        // pipeline keeps serving: a follow-up check on the same decider
        // completes with a real decision.
        let timed = decider.check("gdocs", "draft", 1, SECRET).unwrap();
        assert_eq!(timed.decision.action, UploadAction::Block);
        let stats = decider.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        // Graceful shutdown still hands the flow back.
        let flow = decider.shutdown().unwrap();
        assert!(!flow.warnings().is_empty());
    }
}
