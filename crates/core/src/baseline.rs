//! An exact-match DLP baseline.
//!
//! Commercial data-leakage-prevention tools commonly match outgoing
//! traffic against exact hashes of registered confidential content
//! (§2.2). This baseline registers the hash of each *whole normalised
//! segment* and flags an upload only when it equals a registered segment
//! verbatim (after normalisation).
//!
//! The comparison benches use it to demonstrate the paper's core claim:
//! exact matching collapses as soon as text is edited, reordered or
//! partially quoted, while imprecise tracking degrades gracefully.

use browserflow_fingerprint::normalize;
use std::collections::HashSet;

/// The exact-match baseline detector.
///
/// # Example
///
/// ```rust
/// use browserflow::baseline::ExactMatchDlp;
///
/// let mut dlp = ExactMatchDlp::new();
/// dlp.register("The launch date is March 1st.");
/// // Verbatim copies (modulo case/punctuation) are caught...
/// assert!(dlp.is_registered("the launch date is march 1st"));
/// // ...but the slightest edit evades it.
/// assert!(!dlp.is_registered("The launch date is now March 1st."));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactMatchDlp {
    segments: HashSet<u64>,
}

impl ExactMatchDlp {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a confidential segment.
    pub fn register(&mut self, text: &str) {
        self.segments.insert(Self::digest(text));
    }

    /// Whether `text` equals a registered segment after normalisation.
    pub fn is_registered(&self, text: &str) -> bool {
        self.segments.contains(&Self::digest(text))
    }

    /// Number of registered segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    fn digest(text: &str) -> u64 {
        // FNV-1a over the normalised text.
        let normalized = normalize::normalize(text);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in normalized.text().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &str = "The quarterly revenue figures exceed forecasts by twelve percent.";

    #[test]
    fn verbatim_and_cosmetic_copies_match() {
        let mut dlp = ExactMatchDlp::new();
        dlp.register(SECRET);
        assert!(dlp.is_registered(SECRET));
        assert!(dlp.is_registered(&SECRET.to_uppercase()));
        assert!(
            dlp.is_registered("the quarterly revenue figures exceed forecasts by twelve percent")
        );
    }

    #[test]
    fn any_content_edit_evades() {
        let mut dlp = ExactMatchDlp::new();
        dlp.register(SECRET);
        assert!(!dlp
            .is_registered("The quarterly revenue figures exceed forecasts by thirteen percent."));
        // Partial quote evades.
        assert!(!dlp.is_registered("revenue figures exceed forecasts"));
        // Embedding evades.
        assert!(!dlp.is_registered(&format!("FYI: {SECRET}")));
    }

    #[test]
    fn counts() {
        let mut dlp = ExactMatchDlp::new();
        assert!(dlp.is_empty());
        dlp.register("a b c d");
        dlp.register("A, b! C? d."); // same normalised content
        assert_eq!(dlp.len(), 1);
    }
}
