//! The disclosure engine: fingerprinting + the two-granularity stores +
//! decision caching, keyed by human-meaningful segment keys.

use browserflow_fingerprint::{
    Fingerprint, FingerprintConfig, Fingerprinter, IncrementalFingerprinter, KernelKind, TextEdit,
};
use browserflow_store::pool::WorkerPool;
use browserflow_store::{
    DecisionCache, FingerprintDigest, FingerprintStore, FxHashMap, IncrementalChecker, SegmentId,
    Timestamp,
};
use browserflow_tdm::ServiceId;
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum batch size before bulk ingest fans fingerprinting out over the
/// worker pool — below this the pool hand-off costs more than it saves
/// (mirrors the candidate-evaluation cutoff in `browserflow-store`).
const INGEST_PARALLEL_CUTOFF: usize = 32;

/// Identifies a document within a service.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DocKey {
    /// The service hosting the document.
    pub service: ServiceId,
    /// Service-local document name.
    pub document: String,
}

impl DocKey {
    /// Creates a document key.
    pub fn new(service: impl Into<ServiceId>, document: impl Into<String>) -> Self {
        Self {
            service: service.into(),
            document: document.into(),
        }
    }
}

/// Which granularity a tracked segment belongs to (§4.1: paragraphs and
/// entire documents are tracked independently).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum SegmentScope {
    /// The `index`-th paragraph of the document.
    Paragraph(usize),
    /// The document as a whole.
    Document,
}

/// A fully-qualified segment key: (service, document, scope).
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SegmentKey {
    /// The document the segment belongs to.
    pub doc: DocKey,
    /// Paragraph index or whole-document scope.
    pub scope: SegmentScope,
}

impl SegmentKey {
    /// Key for a paragraph.
    pub fn paragraph(doc: DocKey, index: usize) -> Self {
        Self {
            doc,
            scope: SegmentScope::Paragraph(index),
        }
    }

    /// Key for a whole document.
    pub fn document(doc: DocKey) -> Self {
        Self {
            doc,
            scope: SegmentScope::Document,
        }
    }
}

impl std::fmt::Display for SegmentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.scope {
            SegmentScope::Paragraph(index) => {
                write!(f, "{}/{}#p{}", self.doc.service, self.doc.document, index)
            }
            SegmentScope::Document => {
                write!(f, "{}/{}", self.doc.service, self.doc.document)
            }
        }
    }
}

/// An edit submitted through the incremental keystroke path does not apply
/// to the engine's view of the paragraph being edited.
///
/// Keystroke sessions replay the editor's edits against engine-held state;
/// an edit whose byte range is out of bounds or off a `char` boundary for
/// that state means the two sides diverged (e.g. the editor was reloaded).
/// The caller should reset the session
/// ([`DisclosureEngine::reset_keystroke_session`]) and reseed it with the
/// paragraph's full text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StaleEditError {
    /// The paragraph whose session rejected the edit.
    pub key: SegmentKey,
}

impl fmt::Display for StaleEditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edit does not apply to the tracked text of {} (session out of sync)",
            self.key
        )
    }
}

impl std::error::Error for StaleEditError {}

/// A worker thread servicing part of a batched check panicked.
///
/// One poisoned paragraph check must not take down the process — in a
/// multi-tenant deployment the same engine serves every tenant's checks.
/// The panic is caught at the join boundary and surfaced as this typed
/// error; the stores are sharded and lock-free to readers, so the engine
/// remains usable for subsequent checks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkerPanic {
    /// The panic payload, when it was a string (the common case).
    pub detail: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a paragraph-check worker panicked: {}", self.detail)
    }
}

impl std::error::Error for WorkerPanic {}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Test-only fault injection for the check path.
///
/// Hidden from docs and disabled by default (one relaxed atomic load on
/// the check path). Integration tests enable a hook, embed the marker in
/// a paragraph, and verify that the engine, middleware, decider and
/// daemon all survive a poisoned check with a typed error instead of a
/// process abort.
#[doc(hidden)]
pub mod test_hooks {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Text marker that triggers the enabled faults.
    pub const FAULT_MARKER: &str = "\u{7f}bf-fault\u{7f}";

    pub(crate) static PANIC_ON_MARKER: AtomicBool = AtomicBool::new(false);
    pub(crate) static DELAY_MS_ON_MARKER: AtomicU64 = AtomicU64::new(0);

    /// When enabled, any checked paragraph containing [`FAULT_MARKER`]
    /// panics inside the check worker.
    pub fn set_panic_on_marker(enabled: bool) {
        PANIC_ON_MARKER.store(enabled, Ordering::SeqCst);
    }

    /// When non-zero, any checked paragraph containing [`FAULT_MARKER`]
    /// sleeps this many milliseconds before being checked (deterministic
    /// worker stalls for queue/backpressure tests).
    pub fn set_delay_ms_on_marker(millis: u64) {
        DELAY_MS_ON_MARKER.store(millis, Ordering::SeqCst);
    }

    /// Serialises tests that arm the global hooks, so a disarm in one
    /// test cannot race another test's marker check.
    pub fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn apply(text: &str) {
        let delay = DELAY_MS_ON_MARKER.load(Ordering::Relaxed);
        let panic_armed = PANIC_ON_MARKER.load(Ordering::Relaxed);
        if (delay == 0 && !panic_armed) || !text.contains(FAULT_MARKER) {
            return;
        }
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        if panic_armed {
            panic!("injected test panic");
        }
    }
}

/// A disclosure detected by the engine: a stored source segment whose
/// disclosure requirement the checked text violates.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureMatch {
    /// The source segment.
    pub source: SegmentKey,
    /// Measured disclosure `D(source, text) ∈ (0, 1]`.
    pub disclosure: f64,
    /// The source's threshold.
    pub threshold: f64,
    /// Byte ranges of the checked text whose n-grams match the source's
    /// stored fingerprint — what the UI highlights (paper Figure 2).
    ///
    /// Advisory: when a cached decision is reused after a cosmetic edit
    /// (same winnowed hash set, different punctuation), offsets refer to
    /// the text the decision was computed for.
    pub matching_spans: Vec<std::ops::Range<usize>>,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Fingerprinting parameters (paper default: 15-char n-grams,
    /// window 30, 32-bit hashes).
    pub fingerprint: FingerprintConfig,
    /// Default paragraph disclosure threshold `Tpar` (paper default 0.5).
    pub default_tpar: f64,
    /// Default document disclosure threshold `Tdoc`.
    pub default_tdoc: f64,
    /// Whether to cache disclosure decisions per segment fingerprint.
    pub cache_decisions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            fingerprint: FingerprintConfig::default(),
            default_tpar: 0.5,
            default_tdoc: 0.5,
            cache_decisions: true,
        }
    }
}

/// The disclosure engine: owns the fingerprinter, the paragraph-granularity
/// and document-granularity stores, the segment-key registry, and the
/// decision cache.
///
/// # Example
///
/// ```rust
/// use browserflow::{DisclosureEngine, DocKey, EngineConfig};
///
/// let engine = DisclosureEngine::new(EngineConfig::default());
/// let source = DocKey::new("wiki", "guidelines");
/// let text = "score candidates on communication, coding fluency, systems design \
///             depth and the quality of their clarifying questions";
/// engine.observe_paragraph(&source, 0, text, None);
///
/// let target = DocKey::new("gdocs", "draft");
/// let matches = engine.check_paragraph(&target, 0, text);
/// assert_eq!(matches.len(), 1);
/// assert!(matches[0].disclosure > 0.99);
/// ```
#[derive(Debug)]
pub struct DisclosureEngine {
    config: EngineConfig,
    fingerprinter: Fingerprinter,
    paragraphs: FingerprintStore,
    documents: FingerprintStore,
    registry: RwLock<SegmentRegistry>,
    cache: DecisionCache<Vec<DisclosureMatch>>,
    /// Per-paragraph incremental state for the keystroke hot path.
    keystrokes: Mutex<FxHashMap<SegmentId, KeystrokeState>>,
    full_checks: AtomicU64,
    incremental_checks: AtomicU64,
    incremental_absorbs: AtomicU64,
}

/// One paragraph's keystroke session: the incrementally maintained
/// fingerprint of the text under edit plus the incremental Algorithm 1
/// state feeding on its deltas.
#[derive(Debug)]
struct KeystrokeState {
    fingerprinter: IncrementalFingerprinter,
    checker: IncrementalChecker,
    edits_since_compact: u64,
    /// Paragraph-store logical time of the session's last validated edit,
    /// so the eviction sweep can drop sessions idle since before the
    /// sweep's cutoff.
    last_activity: Timestamp,
}

/// Keystroke sessions drop zero-overlap candidates this often (§4.3's
/// incremental mode accumulates candidates monotonically; compaction keeps
/// long sessions from re-evaluating dead ones forever).
const COMPACT_INTERVAL: u64 = 256;

/// The key↔id registry, kept under one lock so both directions stay
/// consistent when concurrent callers allocate ids.
#[derive(Debug, Default)]
struct SegmentRegistry {
    ids: FxHashMap<SegmentKey, SegmentId>,
    keys: FxHashMap<SegmentId, SegmentKey>,
    next_id: u64,
}

impl DisclosureEngine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            fingerprinter: Fingerprinter::new(config.fingerprint),
            paragraphs: FingerprintStore::new(),
            documents: FingerprintStore::new(),
            registry: RwLock::new(SegmentRegistry::default()),
            cache: DecisionCache::new(),
            keystrokes: Mutex::new(FxHashMap::default()),
            full_checks: AtomicU64::new(0),
            incremental_checks: AtomicU64::new(0),
            incremental_absorbs: AtomicU64::new(0),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The fingerprinter in use.
    pub fn fingerprinter(&self) -> &Fingerprinter {
        &self.fingerprinter
    }

    /// Resolves (or allocates) the [`SegmentId`] for a key.
    pub fn segment_id(&self, key: &SegmentKey) -> SegmentId {
        if let Some(&id) = self.registry.read().ids.get(key) {
            return id;
        }
        let mut registry = self.registry.write();
        // A concurrent caller may have allocated between the two locks.
        if let Some(&id) = registry.ids.get(key) {
            return id;
        }
        let id = SegmentId::new(registry.next_id);
        registry.next_id += 1;
        registry.ids.insert(key.clone(), id);
        registry.keys.insert(id, key.clone());
        id
    }

    /// The key for a known segment id.
    pub fn segment_key(&self, id: SegmentId) -> Option<SegmentKey> {
        self.registry.read().keys.get(&id).cloned()
    }

    /// Read-only id lookup: `None` if the key was never observed or
    /// checked (unlike [`DisclosureEngine::segment_id`], never allocates).
    pub fn segment_id_readonly(&self, key: &SegmentKey) -> Option<SegmentId> {
        self.registry.read().ids.get(key).copied()
    }

    /// Records (or re-records) a paragraph's fingerprint. `threshold`
    /// falls back to the configured `Tpar` default. Returns the segment id.
    pub fn observe_paragraph(
        &self,
        doc: &DocKey,
        index: usize,
        text: &str,
        threshold: Option<f64>,
    ) -> SegmentId {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let id = self.segment_id(&key);
        let print = self.fingerprinter.fingerprint(text);
        self.paragraphs
            .observe(id, &print, threshold.unwrap_or(self.config.default_tpar));
        self.cache.invalidate(id);
        id
    }

    /// Bulk-ingests many paragraphs of one document through the batched
    /// store path.
    ///
    /// Semantically identical to calling
    /// [`DisclosureEngine::observe_paragraph`] per `(index, text)` pair,
    /// but mechanically batched end to end: fingerprinting fans the
    /// paragraphs out over the persistent worker pool (each worker runs
    /// the SIMD bulk kernel against its own thread-local scratch, see
    /// [`DisclosureEngine::fingerprint_kernel`]), and all observations
    /// land through one [`FingerprintStore::observe_batch`] call — one
    /// stripe-lock round-trip per touched stripe instead of one per hash.
    /// This is the shape corpus ingest, document indexing and
    /// restore-verify use.
    pub fn observe_paragraphs<'a, I>(
        &self,
        doc: &DocKey,
        paragraphs: I,
        threshold: Option<f64>,
    ) -> Vec<SegmentId>
    where
        I: IntoIterator<Item = (usize, &'a str)>,
    {
        let threshold = threshold.unwrap_or(self.config.default_tpar);
        let items: Vec<(usize, &'a str)> = paragraphs.into_iter().collect();
        let ids: Vec<SegmentId> = items
            .iter()
            .map(|&(index, _)| self.segment_id(&SegmentKey::paragraph(doc.clone(), index)))
            .collect();
        let prints = self.fingerprint_batch(&items);
        let entries: Vec<(SegmentId, &Fingerprint, f64)> = ids
            .iter()
            .zip(prints.iter())
            .map(|(&id, print)| (id, print, threshold))
            .collect();
        self.paragraphs.observe_batch(&entries);
        for &id in &ids {
            self.cache.invalidate(id);
        }
        ids
    }

    /// Fingerprints a batch of texts, fanning chunks out over the
    /// persistent worker pool once the batch is large enough to amortise
    /// the hand-off. Every pool worker fingerprints through its own
    /// thread-local scratch, so the bulk kernels run in parallel without
    /// per-call buffer allocations; results come back in input order.
    fn fingerprint_batch(&self, items: &[(usize, &str)]) -> Vec<Fingerprint> {
        let workers = WorkerPool::worker_count();
        if items.len() < INGEST_PARALLEL_CUTOFF || workers <= 1 {
            return items
                .iter()
                .map(|&(_, text)| self.fingerprinter.fingerprint(text))
                .collect();
        }
        // Pool jobs must be `'static`, so each chunk ships owned copies of
        // its texts (one copy per paragraph — dwarfed by hashing cost).
        let chunk_len = items.len().div_ceil(workers);
        let jobs: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                let fingerprinter = self.fingerprinter.clone();
                let texts: Vec<String> = chunk.iter().map(|&(_, text)| text.to_owned()).collect();
                move || {
                    texts
                        .iter()
                        .map(|text| fingerprinter.fingerprint(text))
                        .collect::<Vec<Fingerprint>>()
                }
            })
            .collect();
        WorkerPool::global()
            .scatter(jobs)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Records (or re-records) a whole document's fingerprint.
    pub fn observe_document(&self, doc: &DocKey, text: &str, threshold: Option<f64>) -> SegmentId {
        let key = SegmentKey::document(doc.clone());
        let id = self.segment_id(&key);
        let print = self.fingerprinter.fingerprint(text);
        self.documents
            .observe(id, &print, threshold.unwrap_or(self.config.default_tdoc));
        self.cache.invalidate(id);
        id
    }

    /// Updates a stored paragraph's disclosure threshold.
    pub fn set_paragraph_threshold(&self, doc: &DocKey, index: usize, threshold: f64) -> bool {
        let key = SegmentKey::paragraph(doc.clone(), index);
        match self.segment_id_readonly(&key) {
            Some(id) => self.paragraphs.set_threshold(id, threshold),
            None => false,
        }
    }

    /// Updates a stored document's disclosure threshold `Tdoc`.
    pub fn set_document_threshold(&self, doc: &DocKey, threshold: f64) -> bool {
        let key = SegmentKey::document(doc.clone());
        match self.segment_id_readonly(&key) {
            Some(id) => self.documents.set_threshold(id, threshold),
            None => false,
        }
    }

    /// Paragraph-granularity disclosure check: which stored paragraphs does
    /// `text` (about to live at `doc`/`index`) disclose?
    ///
    /// The segment itself is never reported. Results are cached per
    /// segment until its fingerprint changes (§6.2: one keystroke usually
    /// leaves the winnowed fingerprint unchanged, so the previous response
    /// is reused).
    pub fn check_paragraph(&self, doc: &DocKey, index: usize, text: &str) -> Vec<DisclosureMatch> {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let id = self.segment_id(&key);
        self.check_paragraph_by_id(id, text)
    }

    /// [`DisclosureEngine::check_paragraph`] once the id is resolved.
    fn check_paragraph_by_id(&self, id: SegmentId, text: &str) -> Vec<DisclosureMatch> {
        test_hooks::apply(text);
        self.full_checks.fetch_add(1, Ordering::Relaxed);
        let print = self.fingerprinter.fingerprint(text);
        // The cached sorted slice feeds both the digest and Algorithm 1 —
        // no HashSet is materialised on the check path.
        let hashes = print.distinct_hashes();
        if self.config.cache_decisions {
            let digest = FingerprintDigest::of_sorted(hashes);
            if let Some(cached) = self.cache.get(id, digest) {
                return cached;
            }
            let reports = self.paragraphs.disclosing_sources_of_sorted(id, hashes);
            let result = self.resolve_matches(reports, &print, &self.paragraphs);
            self.cache.put(id, digest, result.clone());
            result
        } else {
            let reports = self.paragraphs.disclosing_sources_of_sorted(id, hashes);
            self.resolve_matches(reports, &print, &self.paragraphs)
        }
    }

    /// Batched paragraph-granularity check: fingerprints and checks every
    /// paragraph of a document, fanning the per-paragraph work over worker
    /// threads (the stores are lock-striped, so checkers proceed in
    /// parallel). Results are returned in input order, identical to calling
    /// [`DisclosureEngine::check_paragraph`] per paragraph.
    ///
    /// `workers <= 1`, or fewer than two paragraphs, runs on the calling
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] if a paragraph check panicked; the engine
    /// remains usable for subsequent checks.
    pub fn check_paragraphs(
        &self,
        doc: &DocKey,
        paragraphs: &[&str],
        workers: usize,
    ) -> Result<Vec<Vec<DisclosureMatch>>, WorkerPanic> {
        let items: Vec<(usize, &str)> = paragraphs.iter().copied().enumerate().collect();
        self.check_paragraphs_at(doc, &items, workers)
    }

    /// [`DisclosureEngine::check_paragraphs`] with explicit paragraph
    /// indices: each `(index, text)` item is checked as if by
    /// [`DisclosureEngine::check_paragraph`], fanned out over `workers`
    /// threads, with results in item order. This is the primitive behind
    /// the unified [`CheckRequest`](crate::CheckRequest) surface, where a
    /// batch need not start at paragraph 0 or be contiguous.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] if any chunk's check panicked — the panic
    /// is contained at the join boundary instead of aborting the process
    /// (a multi-tenant daemon must survive one poisoned check). Every
    /// remaining chunk is still joined so no worker is leaked.
    pub fn check_paragraphs_at(
        &self,
        doc: &DocKey,
        paragraphs: &[(usize, &str)],
        workers: usize,
    ) -> Result<Vec<Vec<DisclosureMatch>>, WorkerPanic> {
        // Allocate every id up front so worker threads never race on the
        // registry write lock in allocation order.
        let ids: Vec<SegmentId> = paragraphs
            .iter()
            .map(|&(index, _)| self.segment_id(&SegmentKey::paragraph(doc.clone(), index)))
            .collect();
        if workers <= 1 || paragraphs.len() < 2 {
            // Same containment guarantee on the calling-thread path. The
            // engine's interior mutability is panic-tolerant here: a check
            // only reads the stores and updates the (per-entry consistent)
            // decision cache, and parking_lot locks do not poison.
            return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ids.iter()
                    .zip(paragraphs)
                    .map(|(&id, &(_, text))| self.check_paragraph_by_id(id, text))
                    .collect()
            }))
            .map_err(|payload| WorkerPanic {
                detail: panic_detail(payload.as_ref()),
            });
        }
        let jobs: Vec<(SegmentId, &str)> = ids
            .into_iter()
            .zip(paragraphs.iter().map(|&(_, text)| text))
            .collect();
        let chunk_len = jobs.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&(id, text)| self.check_paragraph_by_id(id, text))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(jobs.len());
            let mut panic: Option<WorkerPanic> = None;
            for handle in handles {
                match handle.join() {
                    Ok(chunk) => results.extend(chunk),
                    Err(payload) => {
                        // Keep joining the remaining handles so the scope
                        // exits cleanly; report the first panic.
                        if panic.is_none() {
                            panic = Some(WorkerPanic {
                                detail: panic_detail(payload.as_ref()),
                            });
                        }
                    }
                }
            }
            match panic {
                None => Ok(results),
                Some(p) => Err(p),
            }
        })
        .expect("scoped check threads join cleanly")
    }

    /// Document-granularity disclosure check (uncached; document checks are
    /// issued per upload, not per keystroke).
    pub fn check_document(&self, doc: &DocKey, text: &str) -> Vec<DisclosureMatch> {
        let key = SegmentKey::document(doc.clone());
        let id = self.segment_id(&key);
        self.full_checks.fetch_add(1, Ordering::Relaxed);
        let print = self.fingerprinter.fingerprint(text);
        let reports = self
            .documents
            .disclosing_sources_of_sorted(id, print.distinct_hashes());
        self.resolve_matches(reports, &print, &self.documents)
    }

    /// Applies one editor edit to the paragraph's keystroke session and
    /// returns the sources the *edited* text now discloses — the
    /// incremental counterpart of [`DisclosureEngine::check_paragraph`].
    ///
    /// A session starts from empty text the first time a paragraph is
    /// edited, so the opening edit is typically `TextEdit::insert(0, ..)`
    /// carrying the paragraph's current content; subsequent keystrokes
    /// submit just their splice. Per keystroke this re-hashes and
    /// re-winnows only the dirty window around the edit and feeds the
    /// resulting `{added, removed}` hash delta into Algorithm 1's
    /// incremental mode (§4.3), instead of re-fingerprinting the whole
    /// paragraph. Results are identical to
    /// [`DisclosureEngine::check_paragraph`] on the full text
    /// (property-tested); only the counters under
    /// [`DisclosureEngine::fingerprint_mode`] distinguish the two paths.
    ///
    /// # Errors
    ///
    /// Returns [`StaleEditError`] (leaving the session untouched) when the
    /// edit does not apply to the session's current text — the caller's
    /// editor state and the engine diverged. Reset with
    /// [`DisclosureEngine::reset_keystroke_session`] and reseed.
    pub fn apply_paragraph_edit(
        &self,
        doc: &DocKey,
        index: usize,
        edit: &TextEdit,
    ) -> Result<Vec<DisclosureMatch>, StaleEditError> {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let id = self.segment_id(&key);
        let mut sessions = self.keystrokes.lock();
        let state = self.edit_session(&mut sessions, id, &key, edit)?;
        self.incremental_checks.fetch_add(1, Ordering::Relaxed);
        let delta = state.fingerprinter.apply_edit(edit);
        let reports = state
            .checker
            .update(&self.paragraphs, &delta.added, &delta.removed);
        state.edits_since_compact += 1;
        if state.edits_since_compact >= COMPACT_INTERVAL {
            state.checker.compact(&self.paragraphs);
            state.edits_since_compact = 0;
        }
        if reports.is_empty() {
            return Ok(Vec::new());
        }
        let print = state.fingerprinter.fingerprint();
        drop(sessions);
        Ok(self.resolve_matches(reports, &print, &self.paragraphs))
    }

    /// Applies an edit to the keystroke session *without* evaluating
    /// disclosure — for edits whose verdict nobody will read (e.g. a
    /// coalesced keystroke superseded by a newer one). The fingerprint
    /// delta still reaches the incremental checker, so the session stays
    /// exactly as if [`DisclosureEngine::apply_paragraph_edit`] had run.
    ///
    /// # Errors
    ///
    /// Returns [`StaleEditError`] under the same conditions as
    /// [`DisclosureEngine::apply_paragraph_edit`].
    pub fn absorb_paragraph_edit(
        &self,
        doc: &DocKey,
        index: usize,
        edit: &TextEdit,
    ) -> Result<(), StaleEditError> {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let id = self.segment_id(&key);
        let mut sessions = self.keystrokes.lock();
        let state = self.edit_session(&mut sessions, id, &key, edit)?;
        self.incremental_absorbs.fetch_add(1, Ordering::Relaxed);
        let delta = state.fingerprinter.apply_edit(edit);
        state
            .checker
            .absorb(&self.paragraphs, &delta.added, &delta.removed);
        state.edits_since_compact += 1;
        if state.edits_since_compact >= COMPACT_INTERVAL {
            state.checker.compact(&self.paragraphs);
            state.edits_since_compact = 0;
        }
        Ok(())
    }

    /// Runs `f` on the keystroke session's current text for a paragraph,
    /// or returns `None` if no session exists. Borrows the text in place —
    /// no copy — which is what per-keystroke scans (e.g. short-secret
    /// matching) want.
    pub fn with_keystroke_text<R>(
        &self,
        doc: &DocKey,
        index: usize,
        f: impl FnOnce(&str) -> R,
    ) -> Option<R> {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let id = self.segment_id_readonly(&key)?;
        let sessions = self.keystrokes.lock();
        sessions.get(&id).map(|state| f(state.fingerprinter.text()))
    }

    /// Drops a paragraph's keystroke session (if any), e.g. after the
    /// editor reloaded the document or a [`StaleEditError`]. The next edit
    /// starts a fresh session from empty text. Returns whether a session
    /// existed.
    pub fn reset_keystroke_session(&self, doc: &DocKey, index: usize) -> bool {
        let key = SegmentKey::paragraph(doc.clone(), index);
        let Some(id) = self.segment_id_readonly(&key) else {
            return false;
        };
        self.keystrokes.lock().remove(&id).is_some()
    }

    /// Number of live keystroke sessions.
    pub fn keystroke_session_count(&self) -> usize {
        self.keystrokes.lock().len()
    }

    /// Validates `edit` against the session for `id` (creating an empty
    /// session on first use) and hands out the mutable state.
    fn edit_session<'s>(
        &self,
        sessions: &'s mut FxHashMap<SegmentId, KeystrokeState>,
        id: SegmentId,
        key: &SegmentKey,
        edit: &TextEdit,
    ) -> Result<&'s mut KeystrokeState, StaleEditError> {
        let now = self.paragraphs.now();
        let state = sessions.entry(id).or_insert_with(|| KeystrokeState {
            fingerprinter: IncrementalFingerprinter::new(self.config.fingerprint),
            checker: IncrementalChecker::new(id),
            edits_since_compact: 0,
            last_activity: now,
        });
        if !edit.applies_to(state.fingerprinter.text()) {
            return Err(StaleEditError { key: key.clone() });
        }
        state.last_activity = now;
        Ok(state)
    }

    /// Counters of how checks reached the fingerprinting layer: full
    /// recomputations vs incremental keystroke edits (checked or merely
    /// absorbed). Returned as
    /// `(full_checks, incremental_checks, incremental_absorbs)`.
    pub fn fingerprint_mode(&self) -> (u64, u64, u64) {
        (
            self.full_checks.load(Ordering::Relaxed),
            self.incremental_checks.load(Ordering::Relaxed),
            self.incremental_absorbs.load(Ordering::Relaxed),
        )
    }

    /// Which fingerprint kernel this engine's checks dispatch to (scalar
    /// reference or a runtime-detected SIMD path); surfaced through
    /// [`FingerprintModeStats`](crate::FingerprintModeStats).
    pub fn fingerprint_kernel(&self) -> KernelKind {
        browserflow_fingerprint::active_kernel()
    }

    fn resolve_matches(
        &self,
        reports: Vec<browserflow_store::DisclosureReport>,
        target: &Fingerprint,
        store: &FingerprintStore,
    ) -> Vec<DisclosureMatch> {
        let registry = self.registry.read();
        reports
            .into_iter()
            .filter_map(|r| {
                let key = registry.keys.get(&r.source)?;
                let matching_spans = match store.segment(r.source) {
                    Some(stored) => target
                        .iter()
                        .filter(|entry| stored.contains(entry.hash()))
                        .map(|entry| entry.span())
                        .collect(),
                    None => Vec::new(),
                };
                Some(DisclosureMatch {
                    source: key.clone(),
                    disclosure: r.disclosure,
                    threshold: r.threshold,
                    matching_spans,
                })
            })
            .collect()
    }

    /// Number of distinct hashes across the paragraph store (used by the
    /// Figure 13 scalability experiment).
    pub fn paragraph_hash_count(&self) -> usize {
        self.paragraphs.hash_count()
    }

    /// Number of tracked paragraph segments.
    pub fn paragraph_count(&self) -> usize {
        self.paragraphs.segment_count()
    }

    /// Number of tracked document segments.
    pub fn document_count(&self) -> usize {
        self.documents.segment_count()
    }

    /// Cache (hits, misses) counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The paragraph-granularity store (read access, for persistence).
    pub fn paragraph_store(&self) -> &FingerprintStore {
        &self.paragraphs
    }

    /// The document-granularity store (read access, for persistence).
    pub fn document_store(&self) -> &FingerprintStore {
        &self.documents
    }

    /// A snapshot of the key↔id registry (for persistence).
    pub fn key_map(&self) -> Vec<(SegmentKey, SegmentId)> {
        let registry = self.registry.read();
        let mut entries: Vec<(SegmentKey, SegmentId)> =
            registry.ids.iter().map(|(k, &v)| (k.clone(), v)).collect();
        entries.sort_by_key(|entry| entry.1);
        entries
    }

    /// Reassembles an engine from persisted parts (see
    /// [`crate::BrowserFlow::export_sealed`]). The decision cache starts
    /// cold.
    pub fn from_parts(
        config: EngineConfig,
        paragraphs: FingerprintStore,
        documents: FingerprintStore,
        key_map: Vec<(SegmentKey, SegmentId)>,
    ) -> Self {
        let mut registry = SegmentRegistry::default();
        for (key, id) in key_map {
            registry.next_id = registry.next_id.max(id.get() + 1);
            registry.ids.insert(key.clone(), id);
            registry.keys.insert(id, key);
        }
        Self {
            config,
            fingerprinter: Fingerprinter::new(config.fingerprint),
            paragraphs,
            documents,
            registry: RwLock::new(registry),
            cache: DecisionCache::new(),
            keystrokes: Mutex::new(FxHashMap::default()),
            full_checks: AtomicU64::new(0),
            incremental_checks: AtomicU64::new(0),
            incremental_absorbs: AtomicU64::new(0),
        }
    }

    /// Number of entries in the key↔id registry.
    pub fn registered_segment_count(&self) -> usize {
        self.registry.read().ids.len()
    }

    /// Evicts every paragraph fingerprint stored before this call (the
    /// periodic old-fingerprint removal of §4.4). Evicted segments are no
    /// longer reported as sources; re-observing re-establishes tracking.
    /// Returns how many segments were evicted.
    ///
    /// Derived per-segment state rides along with the sweep: the evicted
    /// segments' key↔id registry entries are dropped (they would otherwise
    /// accumulate forever under churn), and keystroke sessions that are
    /// either attached to a victim or idle since before the cutoff are
    /// closed, so million-user traffic cannot grow the session map without
    /// bound.
    pub fn evict_paragraphs_older_than_now(&self) -> usize {
        let cutoff = self.paragraphs.now();
        let victims = self.paragraphs.evict_segments_older_than(cutoff);
        if !victims.is_empty() {
            let mut registry = self.registry.write();
            for id in &victims {
                if let Some(key) = registry.keys.remove(id) {
                    registry.ids.remove(&key);
                }
            }
        }
        // A victim's session must go regardless of activity (its store
        // entry is gone); an idle survivor's session goes too, since no
        // edit has touched it since before every currently-stored
        // fingerprint. Sessions touched after the last observation have
        // `last_activity == cutoff` and survive.
        self.keystrokes
            .lock()
            .retain(|id, state| !victims.contains(id) && state.last_activity >= cutoff);
        if !victims.is_empty() {
            self.cache.clear();
        }
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::FingerprintConfig;

    fn engine() -> DisclosureEngine {
        DisclosureEngine::new(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
    }

    const SECRET: &str = "the confidential interview rubric awards extra points for \
                          candidates who ask incisive clarifying questions early";

    #[test]
    fn observe_then_check_roundtrip() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        let matches = engine.check_paragraph(&gdocs, 0, SECRET);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].source, SegmentKey::paragraph(wiki, 0));
        assert!(matches[0].disclosure > 0.99);
    }

    #[test]
    fn batched_observe_matches_sequential() {
        let singles = engine();
        let batched = engine();
        let doc = DocKey::new("wiki", "handbook");
        let paragraphs: Vec<(usize, String)> = (0..12)
            .map(|i| {
                (
                    i,
                    format!("{SECRET} with paragraph-specific suffix number {i}"),
                )
            })
            .collect();
        let mut single_ids = Vec::new();
        for (i, text) in &paragraphs {
            single_ids.push(singles.observe_paragraph(&doc, *i, text, None));
        }
        let batch_ids = batched.observe_paragraphs(
            &doc,
            paragraphs.iter().map(|(i, t)| (*i, t.as_str())),
            None,
        );
        assert_eq!(batch_ids, single_ids);
        // Both ingests must answer checks identically.
        let probe = DocKey::new("gdocs", "draft");
        for (_, text) in &paragraphs {
            let a = singles.check_paragraph(&probe, 0, text);
            let b = batched.check_paragraph(&probe, 0, text);
            assert_eq!(a.len(), b.len());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn kernel_is_surfaced() {
        let engine = engine();
        assert_eq!(
            engine.fingerprint_kernel(),
            browserflow_fingerprint::active_kernel()
        );
    }

    #[test]
    fn self_check_reports_nothing() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        assert!(engine.check_paragraph(&wiki, 0, SECRET).is_empty());
    }

    #[test]
    fn cache_hits_on_unchanged_fingerprint() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        engine.check_paragraph(&gdocs, 0, SECRET);
        let (hits_before, _) = engine.cache_stats();
        engine.check_paragraph(&gdocs, 0, SECRET);
        let (hits_after, _) = engine.cache_stats();
        assert_eq!(hits_after, hits_before + 1);
    }

    #[test]
    fn observation_invalidates_cache() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        assert_eq!(engine.check_paragraph(&gdocs, 0, SECRET).len(), 1);
        // The gdocs paragraph is observed (stored); its cached decision must
        // be invalidated so the next check is recomputed.
        engine.observe_paragraph(&gdocs, 0, SECRET, None);
        let matches = engine.check_paragraph(&gdocs, 0, SECRET);
        assert_eq!(matches.len(), 1, "still discloses the wiki source");
    }

    #[test]
    fn document_and_paragraph_granularities_are_independent() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_document(&wiki, SECRET, None);
        // Only the document store knows the text.
        let gdocs = DocKey::new("gdocs", "draft");
        assert!(engine.check_paragraph(&gdocs, 0, SECRET).is_empty());
        assert_eq!(engine.check_document(&gdocs, SECRET).len(), 1);
        // Checks allocate ids but only observations store fingerprints.
        assert_eq!(engine.document_count(), 1);
        assert_eq!(engine.paragraph_count(), 0);
    }

    #[test]
    fn segment_keys_display() {
        let doc = DocKey::new("wiki", "rubric");
        assert_eq!(
            SegmentKey::paragraph(doc.clone(), 3).to_string(),
            "wiki/rubric#p3"
        );
        assert_eq!(SegmentKey::document(doc).to_string(), "wiki/rubric");
    }

    #[test]
    fn keystroke_session_matches_full_checks() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");

        // Type the secret character by character through the edit path;
        // every step must agree with the full-text check.
        let mut typed = String::new();
        for ch in SECRET.chars() {
            let at = typed.len();
            let incremental = engine
                .apply_paragraph_edit(&gdocs, 0, &TextEdit::insert(at, ch.to_string()))
                .unwrap();
            typed.push(ch);
            let full = engine.check_paragraph(&gdocs, 0, &typed);
            assert_eq!(incremental, full, "divergence after {:?}", typed.len());
        }
        let (full, incremental, absorbs) = engine.fingerprint_mode();
        assert_eq!(incremental, SECRET.chars().count() as u64);
        assert_eq!(absorbs, 0);
        assert!(full >= incremental); // one full check per comparison step
        assert_eq!(engine.keystroke_session_count(), 1);
    }

    #[test]
    fn keystroke_deletions_clear_matches() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        let matches = engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::insert(0, SECRET))
            .unwrap();
        assert_eq!(matches.len(), 1);
        // Delete everything: no disclosure left.
        let matches = engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::delete(0..SECRET.len()))
            .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn absorbed_edits_keep_the_session_consistent() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        // Absorb the paste (superseded keystroke), then check a trailing
        // edit: the verdict reflects the absorbed content too.
        engine
            .absorb_paragraph_edit(&gdocs, 0, &TextEdit::insert(0, SECRET))
            .unwrap();
        let matches = engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::insert(SECRET.len(), " x"))
            .unwrap();
        assert_eq!(matches.len(), 1);
        let (_, incremental, absorbs) = engine.fingerprint_mode();
        assert_eq!((incremental, absorbs), (1, 1));
    }

    #[test]
    fn stale_edit_is_rejected_and_session_resettable() {
        let engine = engine();
        let gdocs = DocKey::new("gdocs", "draft");
        // Out-of-bounds against the (empty) fresh session.
        let err = engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::delete(0..4))
            .unwrap_err();
        assert_eq!(err.key, SegmentKey::paragraph(gdocs.clone(), 0));
        // The session survives a stale edit untouched and can be reset.
        engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::insert(0, "abc"))
            .unwrap();
        assert!(engine
            .with_keystroke_text(&gdocs, 0, |text| text == "abc")
            .unwrap());
        assert!(engine.reset_keystroke_session(&gdocs, 0));
        assert!(!engine.reset_keystroke_session(&gdocs, 0));
        assert_eq!(engine.with_keystroke_text(&gdocs, 0, str::len), None);
    }

    #[test]
    fn eviction_sweep_cleans_registry_and_idle_sessions() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        let gdocs = DocKey::new("gdocs", "draft");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        // An idle keystroke session, last touched before the next store
        // observation.
        engine
            .apply_paragraph_edit(&gdocs, 0, &TextEdit::insert(0, "typed early"))
            .unwrap();
        engine.observe_paragraph(
            &wiki,
            1,
            "another paragraph with enough words to fingerprint",
            None,
        );
        // A fresh session, touched after every store observation.
        engine
            .apply_paragraph_edit(&gdocs, 1, &TextEdit::insert(0, "typed late"))
            .unwrap();
        assert_eq!(engine.registered_segment_count(), 4);
        assert_eq!(engine.keystroke_session_count(), 2);

        assert_eq!(engine.evict_paragraphs_older_than_now(), 2);
        // Both evicted paragraphs left the registry; the checked-only
        // gdocs keys stay (they own no store entry to evict).
        assert_eq!(engine.registered_segment_count(), 2);
        assert_eq!(engine.paragraph_count(), 0);
        assert!(engine
            .segment_id_readonly(&SegmentKey::paragraph(wiki.clone(), 0))
            .is_none());
        // The idle session died with the sweep; the fresh one survives.
        assert_eq!(engine.keystroke_session_count(), 1);
        assert!(engine.with_keystroke_text(&gdocs, 0, str::len).is_none());
        assert!(engine
            .with_keystroke_text(&gdocs, 1, |text| text == "typed late")
            .unwrap());
    }

    #[test]
    fn threshold_override() {
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, Some(1.0));
        let gdocs = DocKey::new("gdocs", "draft");
        // Half the text does not meet a 1.0 threshold.
        let half = &SECRET[..SECRET.len() / 2];
        assert!(engine.check_paragraph(&gdocs, 0, half).is_empty());
        assert!(engine.set_paragraph_threshold(&wiki, 0, 0.1));
        // Invalidate the cached decision by changing the checked text
        // (different digest) — then the lower threshold fires.
        let half_edited = format!("{half} trailing words");
        assert_eq!(engine.check_paragraph(&gdocs, 0, &half_edited).len(), 1);
    }

    #[test]
    fn worker_panic_is_a_typed_error_not_an_abort() {
        let _guard = test_hooks::lock();
        let engine = engine();
        let wiki = DocKey::new("wiki", "rubric");
        engine.observe_paragraph(&wiki, 0, SECRET, None);
        let gdocs = DocKey::new("gdocs", "draft");
        let poisoned = format!("{SECRET} {}", test_hooks::FAULT_MARKER);
        let batch: Vec<(usize, &str)> = vec![(0, SECRET), (1, &poisoned), (2, SECRET)];

        test_hooks::set_panic_on_marker(true);
        // Single-threaded path: the panic is caught, not propagated.
        let single = engine.check_paragraphs_at(&gdocs, &batch, 1);
        assert!(matches!(single, Err(WorkerPanic { .. })));
        // Fan-out path: every worker handle is joined, the first panic wins.
        let threaded = engine.check_paragraphs_at(&gdocs, &batch, 3);
        assert_eq!(threaded.unwrap_err().detail, "injected test panic");
        test_hooks::set_panic_on_marker(false);

        // The engine survives the poisoned batch: stores and registry are
        // intact and the same request now succeeds.
        let ok = engine
            .check_paragraphs_at(&gdocs, &batch, 3)
            .expect("engine usable after a contained panic");
        assert_eq!(ok.len(), 3);
        assert_eq!(ok[0].len(), 1, "clean paragraph still discloses");
    }
}
