//! **BrowserFlow** — browser-based middleware that tracks the propagation
//! of unstructured text across cloud services and alerts users before they
//! accidentally disclose sensitive data.
//!
//! This is the primary crate of the reproduction of *BrowserFlow:
//! Imprecise Data Flow Tracking to Prevent Accidental Data Disclosure*
//! (Middleware 2016). It combines:
//!
//! - imprecise data flow tracking ([`browserflow_fingerprint`] +
//!   [`browserflow_store`]): text segments are fingerprinted with a
//!   winnowing scheme and data flows are inferred from fingerprint
//!   similarity rather than byte-level taint;
//! - the Text Disclosure Model ([`browserflow_tdm`]): services carry
//!   privilege/confidentiality labels, segments carry tag labels, and a
//!   segment may be released to a service only if its effective tags are a
//!   subset of the service's privilege label;
//! - a browser integration ([`plugin`]) for the simulated browser
//!   substrate ([`browserflow_browser`]): mutation observers feed the
//!   policy lookup module, and an `XMLHttpRequest.prototype.send` hook plus
//!   form submit listeners feed the policy enforcement module.
//!
//! # Quickstart
//!
//! ```rust
//! use browserflow::{BrowserFlow, CheckRequest, EnforcementMode, UploadAction};
//! use browserflow_tdm::{Service, Tag, TagSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ti = Tag::new("interview-data")?;
//! let mut flow = BrowserFlow::builder()
//!     .mode(EnforcementMode::Block)
//!     .service(Service::new("itool", "Interview Tool")
//!         .with_privilege(TagSet::from_iter([ti.clone()]))
//!         .with_confidentiality(TagSet::from_iter([ti.clone()])))
//!     .service(Service::new("gdocs", "Google Docs"))
//!     .build()?;
//!
//! // Sensitive text appears in the Interview Tool.
//! let notes = "the candidate showed excellent systems knowledge but was weak \
//!              on distributed consensus and needs a follow-up interview round";
//! flow.observe_paragraph(&"itool".into(), "eval-doc", 0, notes)?;
//!
//! // The user pastes it into Google Docs: BrowserFlow blocks the upload.
//! let decision = flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, notes))?;
//! assert_eq!(decision.action, UploadAction::Block);
//! assert!(!decision.violations.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asynchronous;
pub mod baseline;
mod engine;
pub mod lineage;
mod metrics;
mod middleware;
pub mod plugin;
pub mod report;
mod request;
mod short_secret;
mod state;
pub mod tenancy;

pub use asynchronous::{
    AsyncDecider, DeciderConfig, DeciderError, PendingBatch, PendingDecision, PipelineStats,
    TimedBatch, TimedDecision, TrySubmitError,
};
pub use engine::{
    DisclosureEngine, DisclosureMatch, DocKey, EngineConfig, SegmentKey, SegmentScope,
    StaleEditError, WorkerPanic,
};

#[doc(hidden)]
pub use engine::test_hooks;
pub use lineage::{
    ContainmentReceipt, ExfiltrationAlert, ExfiltrationSentinel, FlowEdge, FlowOperation,
    LineageGraph, SentinelConfig,
};
pub use metrics::{ConcurrencyMetrics, FingerprintModeStats, ResponseTimes};
pub use middleware::{
    BrowserFlow, BrowserFlowBuilder, BuildError, EnforcementMode, MiddlewareError, ParagraphStatus,
    UploadAction, UploadDecision, Violation, Warning,
};
pub use request::{CheckRequest, ParagraphRef};
pub use state::{StateError, StateRestoreReport};
pub use tenancy::{
    AdmissionError, InFlightPermit, RegistryError, Tenant, TenantConfig, TenantDrainReport,
    TenantId, TenantIdError, TenantRegistry,
};

// The keystroke hot path speaks in edits and deltas; re-export the types
// so plug-in callers need not depend on the fingerprint crate directly.
pub use browserflow_fingerprint::{FingerprintDelta, IncrementalFingerprinter, TextEdit};
