//! Cross-service lineage graph + exfiltration sentinel.
//!
//! The TDM answers "may this upload happen?" one hop at a time; a
//! multi-hop covert flow (docs → wiki → interview tool) is judged with
//! no memory of the path the data took. This module adds that memory:
//!
//! - [`LineageGraph`] — an append-only graph of [`FlowEdge`]s
//!   `(source service, sink service, segment, operation, clock)`,
//!   recorded by the middleware at observe/check/keystroke time whenever
//!   tracked text crosses a service boundary. Edges are content-keyed
//!   (re-observing the same flow never duplicates an edge) and ordered
//!   deterministically, so replaying the same edges in any order yields
//!   the same graph — and the same snapshot bytes.
//! - [`ExfiltrationSentinel`] — walks the graph backwards when a check
//!   fires and raises a structured [`ExfiltrationAlert`] when a tag
//!   crossed an unauthorized boundary through a *multi-hop* chain. Every
//!   hop of the chain is referenced in the alert.
//! - [`ContainmentReceipt`] — a machine-readable receipt attached to each
//!   alert, tying it to the existing report trail (the index of the
//!   warning recorded for the violating check) and the policy audit log
//!   (its length at issue time), plus the clock of every hop so the chain
//!   can be re-derived from the persisted graph.
//!
//! The graph serialises through a length-checked binary snapshot codec
//! ([`encode_snapshot`] / [`decode_snapshot`]) with a trailing CRC-32:
//! truncated or corrupted snapshots fail closed with
//! [`LineageCodecError`], never panic, and identical graphs always encode
//! to identical bytes (drain → restore round-trips are byte-for-byte).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// How data moved across a service boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FlowOperation {
    /// Tracked text from another service appeared in an observed
    /// paragraph (copy/paste, re-typing, sync).
    Observe,
    /// A batch/paragraph check found tracked text bound for the sink.
    Check,
    /// A keystroke check found tracked text bound for the sink.
    Keystroke,
    /// A document-granularity upload check found tracked text.
    Upload,
}

impl FlowOperation {
    fn to_u8(self) -> u8 {
        match self {
            FlowOperation::Observe => 0,
            FlowOperation::Check => 1,
            FlowOperation::Keystroke => 2,
            FlowOperation::Upload => 3,
        }
    }

    fn from_u8(byte: u8) -> Option<Self> {
        Some(match byte {
            0 => FlowOperation::Observe,
            1 => FlowOperation::Check,
            2 => FlowOperation::Keystroke,
            3 => FlowOperation::Upload,
            _ => return None,
        })
    }

    /// Stable lowercase name (what the wire/CLI shows).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowOperation::Observe => "observe",
            FlowOperation::Check => "check",
            FlowOperation::Keystroke => "keystroke",
            FlowOperation::Upload => "upload",
        }
    }
}

impl fmt::Display for FlowOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded flow: tracked text from a segment of `source` crossed
/// into `sink`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowEdge {
    /// Service the data originated from (the matched source segment's
    /// service).
    pub source: String,
    /// Service the data crossed into.
    pub sink: String,
    /// The matched source segment (rendered [`SegmentKey`], e.g.
    /// `itool/eval#p0`).
    ///
    /// [`SegmentKey`]: crate::SegmentKey
    pub segment: String,
    /// The sink-side segment the data landed in (or was checked against);
    /// chains link through this field.
    pub into: String,
    /// How the data crossed.
    pub operation: FlowOperation,
    /// Logical clock of the first recording of this edge.
    pub clock: u64,
}

/// Content identity of an edge — everything but the clock. The graph is
/// keyed on this, so replays and re-observations merge instead of
/// duplicating.
type EdgeKey = (String, String, String, String, FlowOperation);

fn edge_key(edge: &FlowEdge) -> EdgeKey {
    (
        edge.source.clone(),
        edge.sink.clone(),
        edge.segment.clone(),
        edge.into.clone(),
        edge.operation,
    )
}

/// Append-only graph of cross-service flows.
///
/// Internally a content-keyed [`BTreeMap`] (edge → earliest clock), so
/// iteration order — and therefore the snapshot encoding — is a pure
/// function of the edge *set*, independent of recording order.
#[derive(Debug, Default)]
pub struct LineageGraph {
    edges: Mutex<BTreeMap<EdgeKey, u64>>,
    clock: AtomicU64,
}

impl LineageGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a flow edge, ticking the logical clock. Returns the stored
    /// edge, or `None` when the identical flow (same source, sink,
    /// segments and operation) was already recorded — the graph is
    /// append-only and content-deduplicated.
    pub fn record(
        &self,
        source: impl Into<String>,
        sink: impl Into<String>,
        segment: impl Into<String>,
        into: impl Into<String>,
        operation: FlowOperation,
    ) -> Option<FlowEdge> {
        let edge = FlowEdge {
            source: source.into(),
            sink: sink.into(),
            segment: segment.into(),
            into: into.into(),
            operation,
            clock: 0,
        };
        let key = edge_key(&edge);
        let mut edges = self.edges.lock();
        if edges.contains_key(&key) {
            return None;
        }
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        edges.insert(key, clock);
        Some(FlowEdge { clock, ..edge })
    }

    /// Records a batch of flow edges under **one** lock acquisition,
    /// drawing consecutive clock values in batch order (the lock is held
    /// across the whole batch, so no other recorder can interleave its
    /// clocks). Duplicates — against the stored graph or an earlier entry
    /// of the same batch — are skipped without consuming a clock, exactly
    /// as repeated [`LineageGraph::record`] calls would skip them.
    /// Returns the edges that were actually stored.
    pub fn record_batch(
        &self,
        batch: Vec<(String, String, String, String, FlowOperation)>,
    ) -> Vec<FlowEdge> {
        if batch.is_empty() {
            return Vec::new();
        }
        let mut stored = Vec::with_capacity(batch.len());
        let mut edges = self.edges.lock();
        for (source, sink, segment, into, operation) in batch {
            let edge = FlowEdge {
                source,
                sink,
                segment,
                into,
                operation,
                clock: 0,
            };
            let key = edge_key(&edge);
            if edges.contains_key(&key) {
                continue;
            }
            let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            edges.insert(key, clock);
            stored.push(FlowEdge { clock, ..edge });
        }
        stored
    }

    /// Replays an edge that already carries a clock (restore path).
    /// Order-insensitive per clock: merging the same edges in any order
    /// produces the same graph, because a duplicate keeps the *smallest*
    /// clock and the graph clock advances to the maximum seen.
    pub fn replay(&self, edge: FlowEdge) {
        let key = edge_key(&edge);
        let mut edges = self.edges.lock();
        let entry = edges.entry(key).or_insert(edge.clock);
        if edge.clock < *entry {
            *entry = edge.clock;
        }
        self.clock.fetch_max(edge.clock, Ordering::Relaxed);
    }

    /// Fetches a recorded edge (with its clock) by content identity.
    pub fn lookup(
        &self,
        source: &str,
        sink: &str,
        segment: &str,
        into: &str,
        operation: FlowOperation,
    ) -> Option<FlowEdge> {
        let key = (
            source.to_string(),
            sink.to_string(),
            segment.to_string(),
            into.to_string(),
            operation,
        );
        self.edges.lock().get(&key).map(|&clock| FlowEdge {
            source: source.to_string(),
            sink: sink.to_string(),
            segment: segment.to_string(),
            into: into.to_string(),
            operation,
            clock,
        })
    }

    /// Every recorded edge in deterministic (content) order.
    pub fn edges(&self) -> Vec<FlowEdge> {
        self.edges
            .lock()
            .iter()
            .map(
                |((source, sink, segment, into, operation), clock)| FlowEdge {
                    source: source.clone(),
                    sink: sink.clone(),
                    segment: segment.clone(),
                    into: into.clone(),
                    operation: *operation,
                    clock: *clock,
                },
            )
            .collect()
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.lock().len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.lock().is_empty()
    }

    /// Current logical clock (number of ticks issued / max replayed).
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Finds the latest-recorded edge whose data landed in `segment`
    /// (matching the [`FlowEdge::into`] field) strictly before `clock`.
    /// This is the sentinel's one-step backwards walk.
    fn incoming_before(&self, segment: &str, clock: u64) -> Option<FlowEdge> {
        let edges = self.edges.lock();
        let mut best: Option<FlowEdge> = None;
        for ((source, sink, seg, into, operation), edge_clock) in edges.iter() {
            if into != segment || *edge_clock >= clock {
                continue;
            }
            if best.as_ref().is_none_or(|b| *edge_clock > b.clock) {
                best = Some(FlowEdge {
                    source: source.clone(),
                    sink: sink.clone(),
                    segment: seg.clone(),
                    into: into.clone(),
                    operation: *operation,
                    clock: *edge_clock,
                });
            }
        }
        best
    }
}

// --- Sentinel --------------------------------------------------------------

/// Tunables for the [`ExfiltrationSentinel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelConfig {
    /// Minimum chain length (in edges) before an alert is raised. The
    /// default of 2 means single-hop violations stay ordinary warnings;
    /// alerts are reserved for flows that *moved through* an intermediate
    /// service.
    pub min_hops: usize,
    /// Maximum backwards-walk depth (cycle/space guard).
    pub max_hops: usize,
    /// Maximum alerts retained; older alerts are dropped first.
    pub max_alerts: usize,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            min_hops: 2,
            max_hops: 16,
            max_alerts: 1024,
        }
    }
}

/// A structured alert: a tag crossed an unauthorized boundary through a
/// multi-hop chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExfiltrationAlert {
    /// Monotonic alert id (per middleware instance).
    pub id: u64,
    /// The destination service of the violating check.
    pub sink: String,
    /// The sink-side segment of the violating check.
    pub segment: String,
    /// Tags the destination lacked (rendered).
    pub missing_tags: Vec<String>,
    /// Measured disclosure of the immediate source by the checked text.
    pub disclosure: f64,
    /// The flow chain, origin first; the last hop is the violating check
    /// itself. Always at least [`SentinelConfig::min_hops`] long.
    pub hops: Vec<FlowEdge>,
    /// Graph clock when the alert was raised.
    pub clock: u64,
    /// The machine-readable containment receipt.
    pub receipt: ContainmentReceipt,
}

/// Machine-readable proof of what was contained and where the evidence
/// lives, tied to the existing audit/report trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainmentReceipt {
    /// The alert this receipt belongs to.
    pub alert_id: u64,
    /// The enforcement applied to the violating upload (`"block"`,
    /// `"warn"`, `"encrypt"`).
    pub action: String,
    /// Clock of every hop in the chain (origin first) — stable references
    /// into the persisted lineage graph.
    pub hop_clocks: Vec<u64>,
    /// Index of the warning recorded for this violation in the
    /// middleware's report trail ([`crate::BrowserFlow::warnings`]).
    pub warning_index: u64,
    /// Length of the policy audit log when the receipt was issued — the
    /// anchor into the append-only suppression audit trail.
    pub audit_len: u64,
}

/// Walks the [`LineageGraph`] when a check fires and raises
/// [`ExfiltrationAlert`]s for multi-hop chains.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExfiltrationSentinel {
    config: SentinelConfig,
}

impl ExfiltrationSentinel {
    /// A sentinel with explicit tunables.
    pub fn new(config: SentinelConfig) -> Self {
        Self { config }
    }

    /// The sentinel's configuration.
    pub fn config(&self) -> SentinelConfig {
        self.config
    }

    /// Traces the chain that fed `final_hop` (the just-recorded edge of a
    /// violating check) backwards through the graph. Returns the chain
    /// origin-first — `None` unless it spans at least
    /// [`SentinelConfig::min_hops`] edges.
    pub fn trace(&self, graph: &LineageGraph, final_hop: &FlowEdge) -> Option<Vec<FlowEdge>> {
        let mut chain = vec![final_hop.clone()];
        let mut cursor = final_hop.clone();
        while chain.len() < self.config.max_hops {
            let Some(prev) = graph.incoming_before(&cursor.segment, cursor.clock) else {
                break;
            };
            // Cycle guard: never revisit a segment already on the chain.
            if chain.iter().any(|e| e.segment == prev.segment) {
                break;
            }
            chain.push(prev.clone());
            cursor = prev;
        }
        if chain.len() < self.config.min_hops {
            return None;
        }
        chain.reverse();
        Some(chain)
    }
}

// --- Snapshot codec --------------------------------------------------------

/// Why a lineage snapshot was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LineageCodecError {
    /// The snapshot was shorter than its header or a declared length ran
    /// past the end (truncation).
    Truncated,
    /// Magic or version did not match.
    BadHeader,
    /// The trailing CRC-32 did not match the payload (corruption).
    BadChecksum,
    /// A field held an invalid value (operation byte, non-UTF-8 string,
    /// oversized length, trailing garbage).
    Malformed,
}

impl fmt::Display for LineageCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => f.write_str("lineage snapshot is truncated"),
            Self::BadHeader => f.write_str("lineage snapshot has an unknown header"),
            Self::BadChecksum => f.write_str("lineage snapshot failed its checksum"),
            Self::Malformed => f.write_str("lineage snapshot is malformed"),
        }
    }
}

impl std::error::Error for LineageCodecError {}

const MAGIC: &[u8; 4] = b"BFLG";
const VERSION: u16 = 1;
/// Upper bound on any single length field — snapshots are small; a
/// multi-gigabyte declared length is hostile input, not data.
const MAX_FIELD_LEN: usize = 1 << 24;

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn push_str(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LineageCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(LineageCodecError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(LineageCodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, LineageCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, LineageCodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32, LineageCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, LineageCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn string(&mut self) -> Result<String, LineageCodecError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(LineageCodecError::Malformed);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LineageCodecError::Malformed)
    }
}

/// Serialises a graph plus its alert trail into the deterministic binary
/// snapshot format. Identical graph/alert contents always produce
/// identical bytes.
pub fn encode_snapshot(graph: &LineageGraph, alerts: &[ExfiltrationAlert]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&graph.clock().to_le_bytes());
    let edges = graph.edges();
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for edge in &edges {
        out.push(edge.operation.to_u8());
        out.extend_from_slice(&edge.clock.to_le_bytes());
        push_str(&mut out, &edge.source);
        push_str(&mut out, &edge.sink);
        push_str(&mut out, &edge.segment);
        push_str(&mut out, &edge.into);
    }
    // Alerts carry nested structure; serde_json over a fixed field order
    // is deterministic, and the chunk rides inside the same CRC.
    let alerts_json = serde_json::to_vec(alerts).expect("alerts always serialise");
    out.extend_from_slice(&(alerts_json.len() as u32).to_le_bytes());
    out.extend_from_slice(&alerts_json);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Restores a graph and its alert trail from snapshot bytes.
///
/// # Errors
///
/// Fails closed with [`LineageCodecError`] on truncation, corruption,
/// bad headers, hostile lengths or trailing garbage — never panics.
pub fn decode_snapshot(
    bytes: &[u8],
) -> Result<(LineageGraph, Vec<ExfiltrationAlert>), LineageCodecError> {
    if bytes.len() < MAGIC.len() + 2 + 8 + 4 + 4 + 4 {
        return Err(LineageCodecError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4B"));
    if crc32(payload) != stored {
        return Err(LineageCodecError::BadChecksum);
    }
    let mut reader = Reader {
        bytes: payload,
        pos: 0,
    };
    if reader.take(4)? != MAGIC {
        return Err(LineageCodecError::BadHeader);
    }
    if reader.u16()? != VERSION {
        return Err(LineageCodecError::BadHeader);
    }
    let clock = reader.u64()?;
    let edge_count = reader.u32()? as usize;
    if edge_count > MAX_FIELD_LEN {
        return Err(LineageCodecError::Malformed);
    }
    let graph = LineageGraph::new();
    for _ in 0..edge_count {
        let operation = FlowOperation::from_u8(reader.u8()?).ok_or(LineageCodecError::Malformed)?;
        let edge_clock = reader.u64()?;
        let source = reader.string()?;
        let sink = reader.string()?;
        let segment = reader.string()?;
        let into = reader.string()?;
        graph.replay(FlowEdge {
            source,
            sink,
            segment,
            into,
            operation,
            clock: edge_clock,
        });
    }
    let alerts_len = reader.u32()? as usize;
    if alerts_len > MAX_FIELD_LEN {
        return Err(LineageCodecError::Malformed);
    }
    let alerts_json = reader.take(alerts_len)?;
    let alerts: Vec<ExfiltrationAlert> =
        serde_json::from_slice(alerts_json).map_err(|_| LineageCodecError::Malformed)?;
    if reader.pos != payload.len() {
        return Err(LineageCodecError::Malformed);
    }
    // The stored clock must cover every edge (replay already maxed it).
    graph.clock.fetch_max(clock, Ordering::Relaxed);
    Ok((graph, alerts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn edge(source: &str, sink: &str, segment: &str, into: &str, clock: u64) -> FlowEdge {
        FlowEdge {
            source: source.into(),
            sink: sink.into(),
            segment: segment.into(),
            into: into.into(),
            operation: FlowOperation::Observe,
            clock,
        }
    }

    #[test]
    fn record_dedupes_identical_flows() {
        let graph = LineageGraph::new();
        assert!(graph
            .record(
                "docs",
                "wiki",
                "docs/d#p0",
                "wiki/w#p0",
                FlowOperation::Observe
            )
            .is_some());
        assert!(graph
            .record(
                "docs",
                "wiki",
                "docs/d#p0",
                "wiki/w#p0",
                FlowOperation::Observe
            )
            .is_none());
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.clock(), 1);
        // A different operation is a different edge.
        assert!(graph
            .record(
                "docs",
                "wiki",
                "docs/d#p0",
                "wiki/w#p0",
                FlowOperation::Check
            )
            .is_some());
        assert_eq!(graph.len(), 2);
    }

    #[test]
    fn trace_walks_multi_hop_chains_and_stops_at_origin() {
        let graph = LineageGraph::new();
        let hop1 = graph
            .record(
                "docs",
                "wiki",
                "docs/d#p0",
                "wiki/w#p0",
                FlowOperation::Observe,
            )
            .unwrap();
        let hop2 = graph
            .record(
                "wiki",
                "itool",
                "wiki/w#p0",
                "itool/i#p0",
                FlowOperation::Check,
            )
            .unwrap();
        let sentinel = ExfiltrationSentinel::default();
        let chain = sentinel.trace(&graph, &hop2).expect("two-hop chain");
        assert_eq!(chain, vec![hop1.clone(), hop2]);
        // A single hop with no ancestry stays below min_hops.
        assert!(sentinel.trace(&graph, &hop1).is_none());
    }

    #[test]
    fn trace_survives_cycles() {
        let graph = LineageGraph::new();
        let _ = graph.record("a", "b", "a/x#p0", "b/y#p0", FlowOperation::Observe);
        let _ = graph.record("b", "a", "b/y#p0", "a/x#p0", FlowOperation::Observe);
        let last = graph
            .record("a", "c", "a/x#p0", "c/z#p0", FlowOperation::Check)
            .unwrap();
        let sentinel = ExfiltrationSentinel::default();
        // Must terminate despite a↔b forming a cycle.
        let chain = sentinel.trace(&graph, &last).expect("chain");
        assert!(chain.len() <= sentinel.config().max_hops);
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let graph = LineageGraph::new();
        graph.record(
            "docs",
            "wiki",
            "docs/d#p0",
            "wiki/w#p0",
            FlowOperation::Observe,
        );
        graph.record(
            "wiki",
            "itool",
            "wiki/w#p0",
            "itool/i#p0",
            FlowOperation::Check,
        );
        let alerts = vec![ExfiltrationAlert {
            id: 1,
            sink: "itool".into(),
            segment: "itool/i#p0".into(),
            missing_tags: vec!["#secret".into()],
            disclosure: 0.9,
            hops: graph.edges(),
            clock: graph.clock(),
            receipt: ContainmentReceipt {
                alert_id: 1,
                action: "block".into(),
                hop_clocks: vec![1, 2],
                warning_index: 0,
                audit_len: 0,
            },
        }];
        let bytes = encode_snapshot(&graph, &alerts);
        let (restored, restored_alerts) = decode_snapshot(&bytes).unwrap();
        assert_eq!(restored.edges(), graph.edges());
        assert_eq!(restored.clock(), graph.clock());
        assert_eq!(restored_alerts, alerts);
        // Re-encoding the restored graph reproduces the bytes exactly.
        assert_eq!(encode_snapshot(&restored, &restored_alerts), bytes);
    }

    #[test]
    fn truncation_matrix_fails_closed_for_every_prefix() {
        let graph = LineageGraph::new();
        graph.record(
            "docs",
            "wiki",
            "docs/d#p0",
            "wiki/w#p0",
            FlowOperation::Observe,
        );
        graph.record(
            "wiki",
            "itool",
            "wiki/w#p0",
            "itool/i#p0",
            FlowOperation::Keystroke,
        );
        let bytes = encode_snapshot(&graph, &[]);
        assert!(decode_snapshot(&bytes).is_ok());
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "decoder accepted a {len}-byte prefix of {}",
                bytes.len()
            );
        }
    }

    #[test]
    fn corruption_matrix_fails_closed_for_every_byte_flip() {
        let graph = LineageGraph::new();
        graph.record(
            "docs",
            "wiki",
            "docs/d#p0",
            "wiki/w#p0",
            FlowOperation::Observe,
        );
        let bytes = encode_snapshot(&graph, &[]);
        for index in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0x5A;
            // The CRC catches every single-byte flip; no panic, no accept.
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "decoder accepted a flip at byte {index}"
            );
        }
        // Trailing garbage is rejected too (CRC no longer trails).
        let mut padded = bytes;
        padded.push(0);
        assert!(decode_snapshot(&padded).is_err());
    }

    #[test]
    fn hostile_lengths_fail_closed() {
        // A declared string length far past the buffer must error, not
        // panic or allocate unboundedly. Build a payload with a hostile
        // length and a valid CRC so the length check itself is exercised.
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes()); // one edge
        payload.push(0); // op
        payload.extend_from_slice(&1u64.to_le_bytes()); // clock
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile len
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&payload),
            Err(LineageCodecError::Malformed)
        ));
    }

    proptest! {
        /// Replay is order-insensitive per clock: any permutation of the
        /// same clocked edges produces the same graph, the same snapshot
        /// bytes, and the same clock.
        #[test]
        fn replay_order_insensitive(
            edges in proptest::collection::vec(
                ((0u8..4, 0u8..4), (0u8..6, 0u8..6), 1u64..64),
                0..24,
            ),
            seed in 0u64..1024,
        ) {
            let make = |((s, k), (g, i), c): &((u8, u8), (u8, u8), u64)| {
                edge(
                    &format!("svc{s}"),
                    &format!("svc{k}"),
                    &format!("svc{s}/d#p{g}"),
                    &format!("svc{k}/d#p{i}"),
                    *c,
                )
            };
            let forward = LineageGraph::new();
            for e in &edges {
                forward.replay(make(e));
            }
            // A deterministic shuffle driven by the seed.
            let mut shuffled: Vec<_> = edges.clone();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            for i in (1..shuffled.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                shuffled.swap(i, (state as usize) % (i + 1));
            }
            let backward = LineageGraph::new();
            for e in &shuffled {
                backward.replay(make(e));
            }
            prop_assert_eq!(forward.edges(), backward.edges());
            prop_assert_eq!(forward.clock(), backward.clock());
            prop_assert_eq!(
                encode_snapshot(&forward, &[]),
                encode_snapshot(&backward, &[])
            );
        }
    }
}
