//! Response-time and concurrency instrumentation for the performance
//! evaluation (§6.2).

use crate::asynchronous::PipelineStats;
use crate::engine::DisclosureEngine;
use browserflow_store::StoreStats;
use std::time::Duration;

/// A collection of response-time samples with percentile and CDF helpers.
///
/// # Example
///
/// ```rust
/// use browserflow::ResponseTimes;
/// use std::time::Duration;
///
/// let mut times = ResponseTimes::new();
/// for ms in [10u64, 20, 30, 40, 50] {
///     times.record(Duration::from_millis(ms));
/// }
/// assert_eq!(times.percentile(0.5), Duration::from_millis(30));
/// assert_eq!(times.max(), Some(Duration::from_millis(50)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResponseTimes {
    samples: Vec<Duration>,
}

impl ResponseTimes {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples in recording order.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }

    /// The `p`-th percentile (`p ∈ [0, 1]`, nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!(!self.samples.is_empty(), "no samples recorded");
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(total / self.samples.len() as u32)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().max().copied()
    }

    /// Fraction of samples at or below `bound`.
    pub fn fraction_within(&self, bound: Duration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s <= bound).count() as f64 / self.samples.len() as f64
    }

    /// `(duration, cumulative_fraction)` points of the empirical CDF, one
    /// per sample, sorted — the series plotted in Figure 12.
    pub fn cdf(&self) -> Vec<(Duration, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, (i + 1) as f64 / n))
            .collect()
    }
}

impl Extend<Duration> for ResponseTimes {
    fn extend<I: IntoIterator<Item = Duration>>(&mut self, iter: I) {
        self.samples.extend(iter)
    }
}

/// Counters of how disclosure checks reached the fingerprinting layer.
///
/// `full` checks re-normalise, re-hash and re-winnow the whole text;
/// `incremental` checks splice one edit into engine-held state
/// ([`DisclosureEngine::apply_paragraph_edit`]) and re-process only the
/// dirty window; `absorbed` edits updated that state without evaluating
/// disclosure (superseded coalesced keystrokes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FingerprintModeStats {
    /// Checks that fingerprinted the whole text from scratch.
    pub full_checks: u64,
    /// Keystroke edits checked through the incremental path.
    pub incremental_checks: u64,
    /// Keystroke edits absorbed into session state without a verdict.
    pub incremental_absorbs: u64,
    /// Which fingerprint kernel the engine dispatches to (scalar
    /// reference, or a runtime-detected SIMD path).
    pub kernel: browserflow_fingerprint::KernelKind,
}

impl FingerprintModeStats {
    /// Fraction of fingerprinting work served incrementally (checked or
    /// absorbed), or `None` when nothing ran yet.
    pub fn incremental_fraction(&self) -> Option<f64> {
        let incremental = self.incremental_checks + self.incremental_absorbs;
        let total = self.full_checks + incremental;
        if total == 0 {
            return None;
        }
        Some(incremental as f64 / total as f64)
    }
}

/// A point-in-time snapshot of an engine's concurrency behaviour: per-shard
/// occupancy, lock contention and the parallel/sequential check split of
/// both granularity stores.
///
/// # Example
///
/// ```rust
/// use browserflow::{ConcurrencyMetrics, DisclosureEngine, DocKey, EngineConfig};
///
/// let engine = DisclosureEngine::new(EngineConfig::default());
/// engine.observe_paragraph(&DocKey::new("wiki", "memo"), 0, "some tracked text here", None);
/// let metrics = ConcurrencyMetrics::of(&engine);
/// assert!(metrics.paragraphs.shard_count >= 1);
/// assert_eq!(metrics.total_fingerprints(), metrics.paragraphs.total_entries());
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrencyMetrics {
    /// Stats of the paragraph-granularity store.
    pub paragraphs: StoreStats,
    /// Stats of the document-granularity store.
    pub documents: StoreStats,
    /// How checks reached the fingerprinting layer (full vs incremental).
    pub fingerprint_mode: FingerprintModeStats,
    /// Health of the asynchronous decision pipeline, when one is running
    /// (attach with [`ConcurrencyMetrics::with_pipeline`]).
    pub pipeline: Option<PipelineStats>,
}

impl ConcurrencyMetrics {
    /// Snapshots both stores of `engine`.
    pub fn of(engine: &DisclosureEngine) -> Self {
        let (full_checks, incremental_checks, incremental_absorbs) = engine.fingerprint_mode();
        Self {
            paragraphs: engine.paragraph_store().stats(),
            documents: engine.document_store().stats(),
            fingerprint_mode: FingerprintModeStats {
                full_checks,
                incremental_checks,
                incremental_absorbs,
                kernel: engine.fingerprint_kernel(),
            },
            pipeline: None,
        }
    }

    /// Attaches a pipeline snapshot (builder style) — typically
    /// [`AsyncDecider::stats`](crate::AsyncDecider::stats).
    pub fn with_pipeline(mut self, stats: PipelineStats) -> Self {
        self.pipeline = Some(stats);
        self
    }

    /// Stored segment fingerprints across both granularities.
    pub fn total_fingerprints(&self) -> usize {
        self.paragraphs.total_entries() + self.documents.total_entries()
    }

    /// Lock acquisitions (across both stores) that found their shard
    /// already held and had to block.
    pub fn total_lock_contention(&self) -> u64 {
        self.paragraphs.hash_lock_contention
            + self.paragraphs.segment_lock_contention
            + self.documents.hash_lock_contention
            + self.documents.segment_lock_contention
    }

    /// Batched-ingest counters summed across both granularity stores:
    /// `(observations, hashes_recorded, lock_acquisitions)`. The
    /// per-observation path would have paid one lock round-trip per hash
    /// plus one per segment write, so `hashes_recorded` minus
    /// `lock_acquisitions` approximates the round-trips the batch path
    /// saved.
    pub fn batch_totals(&self) -> (u64, u64, u64) {
        (
            self.paragraphs.batched_observes + self.documents.batched_observes,
            self.paragraphs.batch_hashes_recorded + self.documents.batch_hashes_recorded,
            self.paragraphs.batch_lock_acquisitions + self.documents.batch_lock_acquisitions,
        )
    }

    /// Eviction sweep counters summed across both granularity stores:
    /// `(sweeps, segments_inspected, segments_evicted)`.
    pub fn eviction_totals(&self) -> (u64, u64, u64) {
        (
            self.paragraphs.eviction_scans + self.documents.eviction_scans,
            self.paragraphs.eviction_scanned + self.documents.eviction_scanned,
            self.paragraphs.eviction_evicted + self.documents.eviction_evicted,
        )
    }

    /// Fraction of Algorithm 1 runs that took the parallel fan-out path,
    /// or `None` when no checks ran yet.
    pub fn parallel_check_fraction(&self) -> Option<f64> {
        let parallel = self.paragraphs.parallel_checks + self.documents.parallel_checks;
        let total = parallel + self.paragraphs.sequential_checks + self.documents.sequential_checks;
        if total == 0 {
            return None;
        }
        Some(parallel as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(ms: &[u64]) -> ResponseTimes {
        let mut t = ResponseTimes::new();
        t.extend(ms.iter().map(|&m| Duration::from_millis(m)));
        t
    }

    #[test]
    fn percentiles_nearest_rank() {
        let t = times(&[100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]);
        assert_eq!(t.percentile(0.95), Duration::from_millis(1000));
        assert_eq!(t.percentile(0.9), Duration::from_millis(900));
        assert_eq!(t.percentile(0.0), Duration::from_millis(100));
        assert_eq!(t.percentile(1.0), Duration::from_millis(1000));
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = times(&[300, 100, 200]);
        let b = times(&[100, 200, 300]);
        assert_eq!(a.percentile(0.5), b.percentile(0.5));
    }

    #[test]
    fn mean_and_max() {
        let t = times(&[10, 20, 30]);
        assert_eq!(t.mean(), Some(Duration::from_millis(20)));
        assert_eq!(t.max(), Some(Duration::from_millis(30)));
        assert_eq!(ResponseTimes::new().mean(), None);
    }

    #[test]
    fn fraction_within() {
        let t = times(&[10, 20, 30, 40]);
        assert_eq!(t.fraction_within(Duration::from_millis(20)), 0.5);
        assert_eq!(t.fraction_within(Duration::from_millis(5)), 0.0);
        assert_eq!(t.fraction_within(Duration::from_millis(100)), 1.0);
    }

    #[test]
    fn cdf_reaches_one() {
        let t = times(&[30, 10, 20]);
        let cdf = t.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, Duration::from_millis(10));
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_of_empty_panics() {
        ResponseTimes::new().percentile(0.5);
    }

    #[test]
    fn fingerprint_mode_fraction() {
        let none = FingerprintModeStats::default();
        assert_eq!(none.incremental_fraction(), None);
        let mixed = FingerprintModeStats {
            full_checks: 1,
            incremental_checks: 2,
            incremental_absorbs: 1,
            ..Default::default()
        };
        assert_eq!(mixed.incremental_fraction(), Some(0.75));
    }

    #[test]
    fn metrics_surface_keystroke_and_eviction_counters() {
        use crate::{DocKey, EngineConfig};
        use browserflow_fingerprint::TextEdit;
        let engine = DisclosureEngine::new(EngineConfig::default());
        let doc = DocKey::new("gdocs", "draft");
        engine
            .apply_paragraph_edit(&doc, 0, &TextEdit::insert(0, "typed text"))
            .unwrap();
        engine.check_paragraph(&doc, 1, "full text check");
        engine.observe_paragraphs(
            &doc,
            [
                (2usize, "one batched paragraph"),
                (3, "another one entirely"),
            ],
            None,
        );
        engine.evict_paragraphs_older_than_now();
        let metrics = ConcurrencyMetrics::of(&engine);
        let (batched, _batch_hashes, batch_locks) = metrics.batch_totals();
        assert_eq!(batched, 2);
        assert!(batch_locks >= 1, "the batch upserts take at least one lock");
        assert_eq!(metrics.fingerprint_mode.incremental_checks, 1);
        assert_eq!(metrics.fingerprint_mode.full_checks, 1);
        assert_eq!(metrics.fingerprint_mode.incremental_fraction(), Some(0.5));
        let (sweeps, _, _) = metrics.eviction_totals();
        assert_eq!(sweeps, 1);
        assert_eq!(
            metrics.paragraphs.hash_shard_contention.len(),
            metrics.paragraphs.shard_count
        );
    }

    #[test]
    fn with_pipeline_attaches_stats() {
        let engine = DisclosureEngine::new(crate::EngineConfig::default());
        let metrics = ConcurrencyMetrics::of(&engine);
        assert!(metrics.pipeline.is_none());
        let stats = PipelineStats {
            submitted: 5,
            completed: 3,
            coalesced: 2,
            ..PipelineStats::default()
        };
        let metrics = metrics.with_pipeline(stats);
        assert_eq!(metrics.pipeline.unwrap().coalesced, 2);
    }
}
