//! The BrowserFlow middleware: policy lookup + policy enforcement.
//!
//! Figure 1 of the paper: the plug-in intercepts data from browser tabs
//! before it is sent to the remote servers. A *policy lookup* module
//! extracts the security label associated with the text being uploaded
//! (via imprecise data flow tracking), and a *policy enforcement* module
//! compares that label with the destination service's privilege label and
//! takes the appropriate action — permit, warn, block, or encrypt.

use crate::engine::{
    DisclosureEngine, DisclosureMatch, DocKey, EngineConfig, SegmentKey, StaleEditError,
    WorkerPanic,
};
use crate::lineage::{
    ContainmentReceipt, ExfiltrationAlert, ExfiltrationSentinel, FlowOperation, LineageCodecError,
    LineageGraph, SentinelConfig,
};
use crate::request::CheckRequest;
use crate::short_secret::ShortSecret;
use browserflow_fingerprint::TextEdit;
use browserflow_store::{SegmentId, StoreKey};
use browserflow_tdm::{Policy, PolicyError, SegmentLabel, Service, ServiceId, Tag, TagSet, UserId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the enforcement module does when an upload violates the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementMode {
    /// Advisory (the paper's default posture): record a warning — shown as
    /// a red paragraph background — but let the upload proceed; the user
    /// makes the final disclosure decision.
    #[default]
    Advisory,
    /// Suppress violating uploads.
    Block,
    /// Encrypt violating uploads before transmission (§5: "can also
    /// encrypt confidential data before upload").
    Encrypt,
}

/// The action BrowserFlow takes for one upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadAction {
    /// No violation: release in plain text.
    Allow,
    /// Violation under [`EnforcementMode::Advisory`]: warn but release.
    Warn,
    /// Violation under [`EnforcementMode::Block`]: suppress.
    Block,
    /// Violation under [`EnforcementMode::Encrypt`]: encrypt before upload.
    Encrypt,
}

/// One policy violation behind a non-allow decision.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// The source segment whose data the upload would disclose.
    pub source: SegmentKey,
    /// Measured disclosure of that source by the uploaded text.
    pub disclosure: f64,
    /// The tags the destination service lacks.
    pub missing_tags: TagSet,
    /// Byte ranges of the uploaded text that match the source — what the
    /// UI highlights when warning the user (paper Figure 2).
    pub matching_spans: Vec<std::ops::Range<usize>>,
}

/// The outcome of one checked upload ([`BrowserFlow::check_one`]).
#[derive(Debug, Clone, PartialEq)]
pub struct UploadDecision {
    /// What to do with the upload.
    pub action: UploadAction,
    /// The violations (empty when `action` is [`UploadAction::Allow`]).
    pub violations: Vec<Violation>,
}

impl UploadDecision {
    /// Whether the upload may reach the service in plain text.
    pub fn releases_plaintext(&self) -> bool {
        matches!(self.action, UploadAction::Allow | UploadAction::Warn)
    }
}

/// A recorded warning (the advisory UI trail: which paragraph went red,
/// when, and why).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Warning {
    /// The segment the user was editing.
    pub segment: SegmentKey,
    /// The destination service of the intercepted upload.
    pub destination: ServiceId,
    /// The violations that triggered the warning.
    pub violations: Vec<Violation>,
}

/// The status of a paragraph after [`BrowserFlow::observe_paragraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParagraphStatus {
    /// The paragraph's segment id.
    pub segment: SegmentId,
    /// The label the lookup module computed for it.
    pub label: SegmentLabel,
    /// Sources it currently discloses.
    pub matches: Vec<DisclosureMatch>,
    /// Whether the paragraph should be flagged in the UI (it discloses
    /// data its own service is not privileged to hold).
    pub flagged: bool,
}

/// Errors from middleware operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MiddlewareError {
    /// The policy rejected the operation.
    Policy(PolicyError),
    /// The referenced segment has never been observed.
    UnknownSegment {
        /// The key that failed to resolve.
        key: String,
    },
    /// A keystroke edit does not apply to the engine's session state (the
    /// editor and the middleware diverged); reset the session and reseed.
    StaleEdit(StaleEditError),
    /// A check worker panicked; the panic was contained at the join
    /// boundary and the middleware remains usable.
    WorkerPanic(WorkerPanic),
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::Policy(e) => write!(f, "policy error: {e}"),
            MiddlewareError::UnknownSegment { key } => {
                write!(f, "segment {key} has never been observed")
            }
            MiddlewareError::StaleEdit(e) => write!(f, "{e}"),
            MiddlewareError::WorkerPanic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MiddlewareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiddlewareError::Policy(e) => Some(e),
            MiddlewareError::UnknownSegment { .. } => None,
            MiddlewareError::StaleEdit(e) => Some(e),
            MiddlewareError::WorkerPanic(e) => Some(e),
        }
    }
}

impl From<StaleEditError> for MiddlewareError {
    fn from(e: StaleEditError) -> Self {
        MiddlewareError::StaleEdit(e)
    }
}

impl From<WorkerPanic> for MiddlewareError {
    fn from(e: WorkerPanic) -> Self {
        MiddlewareError::WorkerPanic(e)
    }
}

impl From<PolicyError> for MiddlewareError {
    fn from(e: PolicyError) -> Self {
        MiddlewareError::Policy(e)
    }
}

/// Error building a [`BrowserFlow`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A service was registered twice.
    Policy(PolicyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Policy(e) => write!(f, "invalid policy: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`BrowserFlow`].
#[derive(Debug, Default)]
pub struct BrowserFlowBuilder {
    policy: Option<Policy>,
    services: Vec<Service>,
    engine: EngineConfig,
    mode: EnforcementMode,
    store_key: Option<StoreKey>,
    sentinel: SentinelConfig,
}

impl BrowserFlowBuilder {
    /// Starts from a complete policy (e.g. loaded from a `bfctl`-authored
    /// JSON file). Services added with [`BrowserFlowBuilder::service`] are
    /// registered on top.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Registers a service with its labels.
    pub fn service(mut self, service: Service) -> Self {
        self.services.push(service);
        self
    }

    /// Sets the engine configuration (fingerprinting + thresholds).
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Sets the enforcement mode for violations.
    pub fn mode(mut self, mode: EnforcementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the key used to encrypt uploads under
    /// [`EnforcementMode::Encrypt`] and fingerprint data at rest.
    pub fn store_key(mut self, key: StoreKey) -> Self {
        self.store_key = Some(key);
        self
    }

    /// Tunes the exfiltration sentinel (chain-length floor, walk depth,
    /// alert retention).
    pub fn sentinel(mut self, config: SentinelConfig) -> Self {
        self.sentinel = config;
        self
    }

    /// Builds the middleware.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Policy`] if two services share an id.
    pub fn build(self) -> Result<BrowserFlow, BuildError> {
        let mut policy = self.policy.unwrap_or_default();
        for service in self.services {
            policy.register(service).map_err(BuildError::Policy)?;
        }
        Ok(BrowserFlow {
            engine: DisclosureEngine::new(self.engine),
            policy,
            labels: RwLock::new(HashMap::new()),
            mode: self.mode,
            warnings: Mutex::new(Vec::new()),
            store_key: self
                .store_key
                .unwrap_or_else(|| StoreKey::from_bytes([0u8; 32])),
            short_secrets: Vec::new(),
            lineage: LineageGraph::new(),
            sentinel: ExfiltrationSentinel::new(self.sentinel),
            alerts: Mutex::new(Vec::new()),
            alert_seq: AtomicU64::new(0),
        })
    }
}

/// The BrowserFlow middleware.
///
/// Observation and enforcement (`observe_*`, `check_*`, `seal_body`) take
/// `&self`: the label map sits behind an [`RwLock`], the warning trail
/// behind a [`Mutex`], seal nonces come from a process-wide counter, and
/// the engine's stores are internally sharded — so concurrent interception
/// hooks share one instance without an external lock. Administrative operations
/// (policy edits, tag suppression, mode changes) still take `&mut self`.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct BrowserFlow {
    engine: DisclosureEngine,
    policy: Policy,
    labels: RwLock<HashMap<SegmentId, SegmentLabel>>,
    mode: EnforcementMode,
    warnings: Mutex<Vec<Warning>>,
    store_key: StoreKey,
    short_secrets: Vec<ShortSecret>,
    lineage: LineageGraph,
    sentinel: ExfiltrationSentinel,
    alerts: Mutex<Vec<ExfiltrationAlert>>,
    alert_seq: AtomicU64,
}

impl BrowserFlow {
    /// Starts building a middleware instance.
    pub fn builder() -> BrowserFlowBuilder {
        BrowserFlowBuilder::default()
    }

    /// The data disclosure policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Mutable policy access (admin operations).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.policy
    }

    /// The disclosure engine.
    pub fn engine(&self) -> &DisclosureEngine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut DisclosureEngine {
        &mut self.engine
    }

    /// The enforcement mode.
    pub fn mode(&self) -> EnforcementMode {
        self.mode
    }

    /// Changes the enforcement mode.
    pub fn set_mode(&mut self, mode: EnforcementMode) {
        self.mode = mode;
    }

    /// A snapshot of the recorded warnings, oldest first.
    pub fn warnings(&self) -> Vec<Warning> {
        self.warnings.lock().clone()
    }

    /// Warnings whose intercepted upload targeted `service`.
    pub fn warnings_for(&self, service: &ServiceId) -> Vec<Warning> {
        self.warnings
            .lock()
            .iter()
            .filter(|w| &w.destination == service)
            .cloned()
            .collect()
    }

    /// Clears the warning trail (e.g. after the user reviewed it).
    pub fn clear_warnings(&mut self) {
        self.warnings.lock().clear();
    }

    /// The cross-service lineage graph (append-only flow-edge record).
    pub fn lineage(&self) -> &LineageGraph {
        &self.lineage
    }

    /// Alerts raised by the exfiltration sentinel, oldest first.
    pub fn alerts(&self) -> Vec<ExfiltrationAlert> {
        self.alerts.lock().clone()
    }

    /// Serialises the lineage graph and alert trail into the deterministic
    /// snapshot format ([`crate::lineage::encode_snapshot`]): identical
    /// state always yields identical bytes, so drain → restore round-trips
    /// are byte-for-byte.
    pub fn lineage_snapshot(&self) -> Vec<u8> {
        crate::lineage::encode_snapshot(&self.lineage, &self.alerts.lock())
    }

    /// Restores the lineage graph and alert trail from snapshot bytes
    /// (persistence path). Fails closed on damaged snapshots.
    ///
    /// # Errors
    ///
    /// Returns the codec error when the snapshot is truncated, corrupt,
    /// or from an unknown format version; the flow is left unchanged.
    pub fn restore_lineage(&mut self, bytes: &[u8]) -> Result<(), LineageCodecError> {
        let (graph, alerts) = crate::lineage::decode_snapshot(bytes)?;
        self.alert_seq = AtomicU64::new(alerts.iter().map(|a| a.id).max().unwrap_or(0));
        self.lineage = graph;
        *self.alerts.lock() = alerts;
        Ok(())
    }

    /// **Policy lookup** (Figure 1, §3): text appeared (or changed) in a
    /// paragraph of `document` in `service`.
    ///
    /// Computes the paragraph's label — the service's confidentiality
    /// label as explicit tags, plus the explicit tags of every source it
    /// currently discloses as implicit tags (§3.2) — stores its
    /// fingerprint, and reports whether the paragraph should be flagged in
    /// the UI.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn observe_paragraph(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        text: &str,
    ) -> Result<ParagraphStatus, MiddlewareError> {
        let doc = DocKey::new(service.clone(), document);
        // Lookup must run before observation so the segment does not
        // shadow its own sources' hashes.
        let matches = self.engine.check_paragraph(&doc, index, text);
        let mut label = self.policy.initial_label(service)?;
        {
            let labels = self.labels.read();
            for m in &matches {
                if let Some(source_id) = self.lookup_segment_id(&m.source) {
                    if let Some(source_label) = labels.get(&source_id) {
                        label.absorb_source(source_label);
                    }
                }
            }
        }
        let segment = self.engine.observe_paragraph(&doc, index, text, None);
        self.labels.write().insert(segment, label.clone());
        // Lineage: tracked text from another service landed here. All
        // edges of this observation append as one batch — a single graph
        // lock round-trip with consecutive clocks.
        let into_key = SegmentKey::paragraph(doc, index);
        let edges: Vec<_> = matches
            .iter()
            .filter(|m| m.source.doc.service != *service)
            .map(|m| {
                (
                    m.source.doc.service.as_str().to_string(),
                    service.as_str().to_string(),
                    m.source.to_string(),
                    into_key.to_string(),
                    FlowOperation::Observe,
                )
            })
            .collect();
        self.lineage.record_batch(edges);
        // Flag when the paragraph's own service lacks privilege for it.
        let flagged = !self.policy.check_release(&label, service)?.is_permitted();
        Ok(ParagraphStatus {
            segment,
            label,
            matches,
            flagged,
        })
    }

    /// Indexes a whole plain-text document: splits it into
    /// blank-line-separated paragraphs, observes each at paragraph
    /// granularity and the full text at document granularity (§4.1's two
    /// independent granularities, for callers without a DOM — clipboard
    /// payloads, file uploads, `bfctl` inputs).
    ///
    /// All paragraphs ingest through the batched path
    /// ([`DisclosureEngine::observe_paragraphs`]): fingerprinting fans out
    /// over the worker pool and the store takes one stripe-lock round-trip
    /// per touched stripe — semantically identical to indexing each
    /// paragraph with [`BrowserFlow::index_paragraph`] in order.
    ///
    /// Returns the number of paragraphs indexed.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn index_text_document(
        &self,
        service: &ServiceId,
        document: &str,
        text: &str,
    ) -> Result<usize, MiddlewareError> {
        self.policy.service(service)?;
        let label = self.policy.initial_label(service)?;
        let segments = browserflow_fingerprint::segment::split_paragraphs(text);
        let doc = DocKey::new(service.clone(), document);
        let items: Vec<(usize, &str)> = segments
            .iter()
            .enumerate()
            .map(|(index, segment)| (index, segment.text))
            .collect();
        let ids = self.engine.observe_paragraphs(&doc, items, None);
        {
            let mut labels = self.labels.write();
            for &id in &ids {
                labels.insert(id, label.clone());
            }
        }
        self.observe_document(service, document, text)?;
        Ok(segments.len())
    }

    /// Fast-path observation for indexing an existing corpus: assigns the
    /// service's confidentiality label and stores the fingerprint
    /// *without* running the disclosure lookup first.
    ///
    /// Use this when provisioning BrowserFlow with a large body of
    /// already-trusted content (the paper loads 90 MB of e-books); use
    /// [`BrowserFlow::observe_paragraph`] for interactive edits, where the
    /// lookup derives implicit tags.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn index_paragraph(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        text: &str,
    ) -> Result<SegmentId, MiddlewareError> {
        let label = self.policy.initial_label(service)?;
        let doc = DocKey::new(service.clone(), document);
        let segment = self.engine.observe_paragraph(&doc, index, text, None);
        self.labels.write().insert(segment, label);
        Ok(segment)
    }

    /// Bulk-ingests pre-split paragraph slots of one document — the
    /// batched counterpart of [`BrowserFlow::index_paragraph`], and what
    /// the daemon's `ObserveBatch` request lands on.
    ///
    /// Like `index_paragraph`, this is the fast provisioning path: each
    /// slot gets the service's confidentiality label and its fingerprint
    /// stored *without* a per-paragraph disclosure lookup first.
    /// Mechanically it rides the batched pipeline end to end —
    /// pool-parallel fingerprinting into one
    /// [`observe_batch`](browserflow_store::FingerprintStore::observe_batch)
    /// — so a whole document costs one stripe-lock round-trip per touched
    /// stripe. Returns the number of paragraphs observed.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn observe_paragraphs(
        &self,
        service: &ServiceId,
        document: &str,
        paragraphs: &[(usize, &str)],
    ) -> Result<usize, MiddlewareError> {
        self.policy.service(service)?;
        let label = self.policy.initial_label(service)?;
        let doc = DocKey::new(service.clone(), document);
        let ids = self
            .engine
            .observe_paragraphs(&doc, paragraphs.iter().copied(), None);
        let mut labels = self.labels.write();
        for &id in &ids {
            labels.insert(id, label.clone());
        }
        Ok(ids.len())
    }

    /// Observes a whole document (document-granularity tracking, §4.1).
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn observe_document(
        &self,
        service: &ServiceId,
        document: &str,
        text: &str,
    ) -> Result<SegmentId, MiddlewareError> {
        self.policy.service(service)?; // validate
        let doc = DocKey::new(service.clone(), document);
        let segment = self.engine.observe_document(&doc, text, None);
        let label = self.policy.initial_label(service)?;
        self.labels.write().insert(segment, label);
        Ok(segment)
    }

    /// **Policy enforcement** (Figure 1, §3) — the unified entry point:
    /// every paragraph slot of `request` is about to be uploaded to the
    /// request's service, and all slots are checked as one batch (one
    /// Algorithm 1 fan-out over up to [`CheckRequest::workers`] threads).
    ///
    /// Decisions come back in slot order, and warnings are recorded in
    /// slot order too, exactly as the equivalent sequence of
    /// single-paragraph requests would produce; under
    /// [`EnforcementMode::Advisory`] each violation is recorded in
    /// [`BrowserFlow::warnings`].
    ///
    /// Sync callers use this directly; async callers submit the same
    /// [`CheckRequest`] through
    /// [`AsyncDecider::check_request`](crate::AsyncDecider::check_request),
    /// which serves it in a single worker round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if the request's service is not
    /// registered.
    pub fn check(
        &self,
        request: &CheckRequest<'_>,
    ) -> Result<Vec<UploadDecision>, MiddlewareError> {
        let service = request.service();
        self.policy.service(service)?; // validate the destination exists
        let doc = DocKey::new(service.clone(), request.document());
        let items: Vec<(usize, &str)> = request
            .paragraphs()
            .iter()
            .map(|p| (p.index, p.text.as_ref()))
            .collect();
        let all_matches = self
            .engine
            .check_paragraphs_at(&doc, &items, request.workers())?;
        let mut decisions = Vec::with_capacity(items.len());
        for (&(index, text), matches) in items.iter().zip(all_matches.iter()) {
            let mut decision = self.decide(service, matches)?;
            let secret_violations = self.short_secret_violations(service, text)?;
            if !secret_violations.is_empty() {
                decision.violations.extend(secret_violations);
                decision.action = self.violation_action();
            }
            let slot_key = SegmentKey::paragraph(doc.clone(), index);
            if !decision.violations.is_empty() {
                self.warnings.lock().push(Warning {
                    segment: slot_key.clone(),
                    destination: service.clone(),
                    violations: decision.violations.clone(),
                });
            }
            self.record_flows_and_alerts(
                service,
                &slot_key,
                matches,
                &decision,
                FlowOperation::Check,
            );
            decisions.push(decision);
        }
        Ok(decisions)
    }

    /// [`BrowserFlow::check`] for single-slot requests: returns the first
    /// (typically only) decision. An empty request yields an allow
    /// decision with no violations.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if the request's service is not
    /// registered.
    pub fn check_one(&self, request: &CheckRequest<'_>) -> Result<UploadDecision, MiddlewareError> {
        Ok(self
            .check(request)?
            .into_iter()
            .next()
            .unwrap_or(UploadDecision {
                action: UploadAction::Allow,
                violations: Vec::new(),
            }))
    }

    /// Keystroke-path enforcement: applies one editor edit to the
    /// paragraph's incremental session and decides on the *edited* text.
    ///
    /// The first edit of a session typically inserts the paragraph's
    /// current content at offset 0; each subsequent keystroke submits just
    /// its splice. The engine re-fingerprints only the dirty window around
    /// the edit (§4.3's incremental Algorithm 1), so the per-keystroke cost
    /// is bounded by the edit size plus one winnowing window — not the
    /// paragraph length. Decisions (including short-secret scanning and
    /// the warning trail) are identical to
    /// [`BrowserFlow::check_one`] on the full text.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered,
    /// and [`MiddlewareError::StaleEdit`] if the edit does not apply to the
    /// session (reset with [`BrowserFlow::reset_keystroke_session`] and
    /// reseed with the full text).
    pub fn check_keystroke(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        edit: &TextEdit,
    ) -> Result<UploadDecision, MiddlewareError> {
        self.policy.service(service)?; // validate the destination exists
        let doc = DocKey::new(service.clone(), document);
        let matches = self.engine.apply_paragraph_edit(&doc, index, edit)?;
        let mut decision = self.decide(service, &matches)?;
        let secret_violations = self
            .engine
            .with_keystroke_text(&doc, index, |text| {
                self.short_secret_violations(service, text)
            })
            .transpose()?
            .unwrap_or_default();
        if !secret_violations.is_empty() {
            decision.violations.extend(secret_violations);
            decision.action = self.violation_action();
        }
        let slot_key = SegmentKey::paragraph(doc, index);
        if !decision.violations.is_empty() {
            self.warnings.lock().push(Warning {
                segment: slot_key.clone(),
                destination: service.clone(),
                violations: decision.violations.clone(),
            });
        }
        self.record_flows_and_alerts(
            service,
            &slot_key,
            &matches,
            &decision,
            FlowOperation::Keystroke,
        );
        Ok(decision)
    }

    /// Applies a keystroke edit to the session *without* producing a
    /// decision — the bookkeeping half of [`BrowserFlow::check_keystroke`],
    /// for edits whose verdict nobody will read (a coalesced keystroke
    /// superseded by a newer one). The session state afterwards is exactly
    /// as if the full check had run.
    ///
    /// # Errors
    ///
    /// Same as [`BrowserFlow::check_keystroke`].
    pub fn absorb_keystroke(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        edit: &TextEdit,
    ) -> Result<(), MiddlewareError> {
        self.policy.service(service)?;
        let doc = DocKey::new(service.clone(), document);
        self.engine.absorb_paragraph_edit(&doc, index, edit)?;
        Ok(())
    }

    /// Drops a paragraph's keystroke session (see
    /// [`DisclosureEngine::reset_keystroke_session`]). Returns whether a
    /// session existed.
    pub fn reset_keystroke_session(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
    ) -> bool {
        let doc = DocKey::new(service.clone(), document);
        self.engine.reset_keystroke_session(&doc, index)
    }

    /// Document-granularity enforcement: an entire document is about to be
    /// uploaded to `service`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn check_document_upload(
        &self,
        service: &ServiceId,
        document: &str,
        text: &str,
    ) -> Result<UploadDecision, MiddlewareError> {
        self.policy.service(service)?; // validate the destination exists
        let doc = DocKey::new(service.clone(), document);
        let matches = self.engine.check_document(&doc, text);
        let mut decision = self.decide(service, &matches)?;
        let secret_violations = self.short_secret_violations(service, text)?;
        if !secret_violations.is_empty() {
            decision.violations.extend(secret_violations);
            decision.action = self.violation_action();
        }
        let slot_key = SegmentKey::document(doc);
        if !decision.violations.is_empty() {
            self.warnings.lock().push(Warning {
                segment: slot_key.clone(),
                destination: service.clone(),
                violations: decision.violations.clone(),
            });
        }
        self.record_flows_and_alerts(
            service,
            &slot_key,
            &matches,
            &decision,
            FlowOperation::Upload,
        );
        Ok(decision)
    }

    fn decide(
        &self,
        service: &ServiceId,
        matches: &[DisclosureMatch],
    ) -> Result<UploadDecision, MiddlewareError> {
        let mut violations = Vec::new();
        let labels = self.labels.read();
        for m in matches {
            let Some(source_id) = self.lookup_segment_id(&m.source) else {
                continue;
            };
            let Some(source_label) = labels.get(&source_id) else {
                continue;
            };
            let release = self.policy.check_release(source_label, service)?;
            let missing = release.missing_tags();
            if !missing.is_empty() {
                violations.push(Violation {
                    source: m.source.clone(),
                    disclosure: m.disclosure,
                    missing_tags: missing,
                    matching_spans: m.matching_spans.clone(),
                });
            }
        }
        let action = if violations.is_empty() {
            UploadAction::Allow
        } else {
            self.violation_action()
        };
        Ok(UploadDecision { action, violations })
    }

    /// Lineage bookkeeping for a completed check: records a flow edge for
    /// every cross-service source the checked text disclosed, then — when
    /// the check violated — walks the graph backwards from each violating
    /// edge and raises an [`ExfiltrationAlert`] for every multi-hop chain,
    /// with a [`ContainmentReceipt`] tying it to the warning trail and the
    /// policy audit log.
    fn record_flows_and_alerts(
        &self,
        service: &ServiceId,
        sink_segment: &SegmentKey,
        matches: &[DisclosureMatch],
        decision: &UploadDecision,
        operation: FlowOperation,
    ) {
        let into = sink_segment.to_string();
        let edges: Vec<_> = matches
            .iter()
            .filter(|m| m.source.doc.service != *service)
            .map(|m| {
                (
                    m.source.doc.service.as_str().to_string(),
                    service.as_str().to_string(),
                    m.source.to_string(),
                    into.clone(),
                    operation,
                )
            })
            .collect();
        self.lineage.record_batch(edges);
        if decision.violations.is_empty() {
            return;
        }
        let action = match decision.action {
            UploadAction::Allow => "allow",
            UploadAction::Warn => "warn",
            UploadAction::Block => "block",
            UploadAction::Encrypt => "encrypt",
        };
        // The warning for this violating check was just recorded.
        let warning_index = (self.warnings.lock().len().max(1) - 1) as u64;
        let audit_len = self.policy.audit_log().len() as u64;
        let config = self.sentinel.config();
        for violation in &decision.violations {
            if violation.source.doc.service == *service {
                continue;
            }
            // Short-secret violations have no recorded flow edge; lookup
            // fails and they stay ordinary warnings.
            let Some(final_hop) = self.lineage.lookup(
                violation.source.doc.service.as_str(),
                service.as_str(),
                &violation.source.to_string(),
                &into,
                operation,
            ) else {
                continue;
            };
            let Some(hops) = self.sentinel.trace(&self.lineage, &final_hop) else {
                continue;
            };
            let hop_clocks: Vec<u64> = hops.iter().map(|h| h.clock).collect();
            let mut alerts = self.alerts.lock();
            // One alert per distinct chain into a sink segment; keystroke
            // storms and re-checks of the same flow raise nothing new.
            if alerts
                .iter()
                .any(|a| a.segment == into && a.receipt.hop_clocks == hop_clocks)
            {
                continue;
            }
            let id = self.alert_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let alert = ExfiltrationAlert {
                id,
                sink: service.as_str().to_string(),
                segment: into.clone(),
                missing_tags: violation
                    .missing_tags
                    .iter()
                    .map(|t| t.name().to_string())
                    .collect(),
                disclosure: violation.disclosure,
                hops,
                clock: self.lineage.clock(),
                receipt: ContainmentReceipt {
                    alert_id: id,
                    action: action.to_string(),
                    hop_clocks,
                    warning_index,
                    audit_len,
                },
            };
            if alerts.len() >= config.max_alerts {
                alerts.remove(0);
            }
            alerts.push(alert);
        }
    }

    /// Sets a tracked paragraph's disclosure threshold `Tpar` (§4.2:
    /// "users should adjust the paragraph and document disclosure
    /// thresholds of the text that they generate according to [...] the
    /// confidentiality of the text"). Returns `false` if the paragraph
    /// was never observed.
    pub fn set_paragraph_threshold(
        &self,
        service: &ServiceId,
        document: &str,
        index: usize,
        threshold: f64,
    ) -> bool {
        let doc = DocKey::new(service.clone(), document);
        self.engine.set_paragraph_threshold(&doc, index, threshold)
    }

    /// Sets a tracked document's disclosure threshold `Tdoc`. Returns
    /// `false` if the document was never observed.
    pub fn set_document_threshold(
        &self,
        service: &ServiceId,
        document: &str,
        threshold: f64,
    ) -> bool {
        let doc = DocKey::new(service.clone(), document);
        self.engine.set_document_threshold(&doc, threshold)
    }

    /// Registers a short secret (password, API key, ...) belonging to
    /// `service`, enforced by normalised exact matching — the specialised
    /// companion to fingerprinting for text below the winnowing guarantee
    /// threshold (§4.4).
    ///
    /// `name` identifies the secret in violation reports; the secret value
    /// itself is never echoed back.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::Policy`] if `service` is not registered.
    pub fn register_short_secret(
        &mut self,
        service: &ServiceId,
        name: &str,
        secret: &str,
    ) -> Result<(), MiddlewareError> {
        let label = self.policy.initial_label(service)?;
        let entry = ShortSecret::new(name, service.clone(), label, secret);
        if entry.is_usable() {
            self.short_secrets.push(entry);
        }
        Ok(())
    }

    /// Number of registered (usable) short secrets.
    pub fn short_secret_count(&self) -> usize {
        self.short_secrets.len()
    }

    /// Violations from short secrets appearing in `text` bound for
    /// `service`.
    fn short_secret_violations(
        &self,
        service: &ServiceId,
        text: &str,
    ) -> Result<Vec<Violation>, MiddlewareError> {
        let mut violations = Vec::new();
        for secret in &self.short_secrets {
            let spans = secret.find_in(text);
            if spans.is_empty() {
                continue;
            }
            let release = self.policy.check_release(&secret.label, service)?;
            let missing = release.missing_tags();
            if !missing.is_empty() {
                violations.push(Violation {
                    source: SegmentKey::document(DocKey::new(
                        secret.service.clone(),
                        format!("secret:{}", secret.name),
                    )),
                    disclosure: 1.0,
                    missing_tags: missing,
                    matching_spans: spans,
                });
            }
        }
        Ok(violations)
    }

    /// The stored label of a segment, if it has been observed.
    pub fn segment_label(&self, key: &SegmentKey) -> Option<SegmentLabel> {
        let id = self.lookup_segment_id(key)?;
        self.labels.read().get(&id).cloned()
    }

    /// Suppresses `tag` on an observed paragraph's label on behalf of
    /// `user` (declassification with an audit trail, §3.1).
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::UnknownSegment`] if the paragraph has
    /// never been observed.
    pub fn suppress_tag(
        &mut self,
        key: &SegmentKey,
        tag: &Tag,
        user: &UserId,
        justification: impl Into<String>,
    ) -> Result<bool, MiddlewareError> {
        let id = self
            .lookup_segment_id(key)
            .ok_or_else(|| MiddlewareError::UnknownSegment {
                key: key.to_string(),
            })?;
        let mut labels = self.labels.write();
        let label = labels
            .get_mut(&id)
            .ok_or_else(|| MiddlewareError::UnknownSegment {
                key: key.to_string(),
            })?;
        let suppressed = self.policy.suppress_tag(label, tag, user, justification);
        Ok(suppressed)
    }

    /// Allocates a custom tag for `user` and attaches it (explicit) to an
    /// observed paragraph. The hosting service automatically receives the
    /// tag in its privilege label, so re-observing the same text never
    /// violates (Figure 5 step 2/4).
    ///
    /// # Errors
    ///
    /// Returns a policy error for duplicate tags or unknown services, and
    /// [`MiddlewareError::UnknownSegment`] for unobserved paragraphs.
    pub fn protect_with_custom_tag(
        &mut self,
        key: &SegmentKey,
        tag: Tag,
        user: &UserId,
    ) -> Result<(), MiddlewareError> {
        let id = self
            .lookup_segment_id(key)
            .ok_or_else(|| MiddlewareError::UnknownSegment {
                key: key.to_string(),
            })?;
        self.policy.allocate_custom_tag(tag.clone(), user)?;
        self.policy
            .grant_privilege_unchecked(&key.doc.service, &tag)?;
        let mut labels = self.labels.write();
        let label = labels
            .get_mut(&id)
            .ok_or_else(|| MiddlewareError::UnknownSegment {
                key: key.to_string(),
            })?;
        label.add_explicit(tag);
        Ok(())
    }

    /// Encrypts an upload body under the configured store key (the
    /// [`EnforcementMode::Encrypt`] path). Returns a printable
    /// `bf-sealed:`-prefixed hex payload.
    ///
    /// The key defaults to a zero key if none was configured (tests);
    /// production deployments set one via
    /// [`BrowserFlowBuilder::store_key`]. Nonces come from the
    /// process-wide counter behind [`StoreKey::seal_auto`], so concurrent
    /// sealers — and repeated seals of the same body — never reuse a
    /// keystream.
    pub fn seal_body(&self, body: &str) -> String {
        let sealed = self.store_key.seal_auto(body.as_bytes());
        let mut hex = String::with_capacity(sealed.len() * 2);
        for byte in sealed.ciphertext() {
            use std::fmt::Write as _;
            let _ = write!(hex, "{byte:02x}");
        }
        format!("bf-sealed:{}:{hex}", sealed.nonce())
    }

    /// The action taken for any violation under the current mode.
    fn violation_action(&self) -> UploadAction {
        match self.mode {
            EnforcementMode::Advisory => UploadAction::Warn,
            EnforcementMode::Block => UploadAction::Block,
            EnforcementMode::Encrypt => UploadAction::Encrypt,
        }
    }

    fn lookup_segment_id(&self, key: &SegmentKey) -> Option<SegmentId> {
        // Read-only lookup: never allocates ids for unobserved keys.
        self.engine.segment_id_readonly(key)
    }

    /// A snapshot of all segment labels (persistence path).
    pub(crate) fn labels_snapshot(&self) -> Vec<(SegmentId, SegmentLabel)> {
        let mut entries: Vec<(SegmentId, SegmentLabel)> = self
            .labels
            .read()
            .iter()
            .map(|(&id, label)| (id, label.clone()))
            .collect();
        entries.sort_by_key(|entry| entry.0);
        entries
    }

    /// The store key (persistence path; the zero-key default is
    /// materialised at build time).
    pub(crate) fn store_key_ref(&self) -> &StoreKey {
        &self.store_key
    }

    /// Reassembles a middleware instance from persisted parts.
    pub(crate) fn from_restored(
        engine: DisclosureEngine,
        policy: Policy,
        labels: HashMap<SegmentId, SegmentLabel>,
        mode: EnforcementMode,
        store_key: StoreKey,
        short_secrets: Vec<ShortSecret>,
    ) -> Self {
        Self {
            engine,
            policy,
            labels: RwLock::new(labels),
            mode,
            warnings: Mutex::new(Vec::new()),
            store_key,
            short_secrets,
            lineage: LineageGraph::new(),
            sentinel: ExfiltrationSentinel::default(),
            alerts: Mutex::new(Vec::new()),
            alert_seq: AtomicU64::new(0),
        }
    }

    /// A snapshot of the registered short secrets (persistence path).
    pub(crate) fn short_secrets_snapshot(&self) -> Vec<ShortSecret> {
        self.short_secrets.clone()
    }

    /// Restores the warning trail (persistence path).
    pub(crate) fn restore_warnings(&mut self, warnings: Vec<Warning>) {
        *self.warnings.lock() = warnings;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::FingerprintConfig;

    const SECRET: &str = "the confidential interview rubric awards extra points for \
                          candidates who ask incisive clarifying questions early";

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    fn flow(mode: EnforcementMode) -> BrowserFlow {
        BrowserFlow::builder()
            .mode(mode)
            .engine(EngineConfig {
                fingerprint: FingerprintConfig::builder()
                    .ngram_len(6)
                    .window(4)
                    .build()
                    .unwrap(),
                ..EngineConfig::default()
            })
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([tag("ti")]))
                    .with_confidentiality(TagSet::from_iter([tag("ti")])),
            )
            .service(
                Service::new("wiki", "Internal Wiki")
                    .with_privilege(TagSet::from_iter([tag("tw")]))
                    .with_confidentiality(TagSet::from_iter([tag("tw")])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap()
    }

    #[test]
    fn clean_upload_is_allowed() {
        let flow = flow(EnforcementMode::Block);
        let decision = flow
            .check_one(&CheckRequest::paragraph(
                "gdocs",
                "draft",
                0,
                "totally public prose",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
        assert!(decision.violations.is_empty());
        assert!(flow.warnings().is_empty());
    }

    #[test]
    fn paste_to_untrusted_service_blocks() {
        let flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        assert_eq!(decision.violations.len(), 1);
        assert!(decision.violations[0].missing_tags.contains(&tag("ti")));
        assert_eq!(flow.warnings().len(), 1);
    }

    #[test]
    fn advisory_mode_warns_but_releases() {
        let flow = flow(EnforcementMode::Advisory);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Warn);
        assert!(decision.releases_plaintext());
        assert_eq!(flow.warnings().len(), 1);
    }

    #[test]
    fn privileged_destination_is_allowed() {
        let flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        // itool itself is privileged for ti.
        let decision = flow
            .check_one(&CheckRequest::paragraph("itool", "eval-copy", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
    }

    #[test]
    fn observe_flags_paragraph_disclosing_foreign_data() {
        let flow = flow(EnforcementMode::Advisory);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        // The user pastes itool text into a Google Docs paragraph: the
        // paragraph label picks up ti (implicit) and gdocs lacks it.
        let status = flow
            .observe_paragraph(&"gdocs".into(), "draft", 0, SECRET)
            .unwrap();
        assert!(status.flagged);
        assert!(status.label.implicit_tags().contains(&tag("ti")));
        assert_eq!(status.matches.len(), 1);
    }

    #[test]
    fn suppression_declassifies_for_future_checks() {
        let mut flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        let source_key = SegmentKey::paragraph(DocKey::new("itool", "eval"), 0);
        let suppressed = flow
            .suppress_tag(
                &source_key,
                &tag("ti"),
                &"alice".into(),
                "approved by legal",
            )
            .unwrap();
        assert!(suppressed);
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
        // Audit trail exists.
        assert_eq!(flow.policy().audit_log().len(), 1);
    }

    #[test]
    fn custom_tag_restricts_privileged_flows() {
        let mut flow = flow(EnforcementMode::Block);
        // Admin lets itool receive wiki data.
        flow.policy_mut()
            .grant_privilege_unchecked(&"itool".into(), &tag("tw"))
            .unwrap();
        flow.observe_paragraph(&"wiki".into(), "memo", 0, SECRET)
            .unwrap();
        // Without a custom tag the flow is permitted.
        let decision = flow
            .check_one(&CheckRequest::paragraph("itool", "copy", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
        // The author protects the paragraph with tn.
        let key = SegmentKey::paragraph(DocKey::new("wiki", "memo"), 0);
        flow.protect_with_custom_tag(&key, tag("tn"), &"bob".into())
            .unwrap();
        // Now itool (no tn in Lp) is refused; wiki still works.
        let decision = flow
            .check_one(&CheckRequest::paragraph("itool", "copy2", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        let decision = flow
            .check_one(&CheckRequest::paragraph("wiki", "another", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
    }

    #[test]
    fn outdated_tags_do_not_propagate_transitively() {
        // Figure 6: gdocs paragraph copies wiki text that itself once
        // disclosed itool data but is no longer similar to it.
        let mut flow = flow(EnforcementMode::Block);
        // Admin lets wiki hold itool data.
        flow.policy_mut()
            .grant_privilege_unchecked(&"wiki".into(), &tag("ti"))
            .unwrap();
        let itool_text = SECRET;
        let wiki_own = "the wiki howto explains deployment runbooks and paging rotations \
                        for the storage team in ample detail";
        flow.observe_paragraph(&"itool".into(), "eval", 0, itool_text)
            .unwrap();
        // Wiki paragraph B starts as a copy of A (absorbs ti implicitly).
        let combined = format!("{itool_text} {wiki_own}");
        let status = flow
            .observe_paragraph(&"wiki".into(), "memo", 0, &combined)
            .unwrap();
        assert!(status.label.implicit_tags().contains(&tag("ti")));
        // B is edited to pure wiki content (loses resemblance to A).
        let status = flow
            .observe_paragraph(&"wiki".into(), "memo", 0, wiki_own)
            .unwrap();
        assert!(!status.label.implicit_tags().contains(&tag("ti")));
        // Copying B's current text to gdocs violates only tw, not ti.
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, wiki_own))
            .unwrap();
        assert_eq!(decision.violations.len(), 1);
        let missing = &decision.violations[0].missing_tags;
        assert!(missing.contains(&tag("tw")));
        assert!(!missing.contains(&tag("ti")));
    }

    #[test]
    fn unknown_service_errors() {
        let flow = flow(EnforcementMode::Block);
        assert!(matches!(
            flow.observe_paragraph(&"nope".into(), "d", 0, "text"),
            Err(MiddlewareError::Policy(_))
        ));
        assert!(matches!(
            flow.check_one(&CheckRequest::paragraph("nope", "d", 0, "text")),
            Err(MiddlewareError::Policy(_))
        ));
    }

    #[test]
    fn unknown_segment_errors() {
        let mut flow = flow(EnforcementMode::Block);
        let key = SegmentKey::paragraph(DocKey::new("wiki", "never"), 0);
        assert!(matches!(
            flow.suppress_tag(&key, &tag("tw"), &"u".into(), "r"),
            Err(MiddlewareError::UnknownSegment { .. })
        ));
    }

    #[test]
    fn seal_body_produces_printable_payload() {
        let flow = flow(EnforcementMode::Encrypt);
        let sealed = flow.seal_body("secret text");
        assert!(sealed.starts_with("bf-sealed:"));
        assert!(!sealed.contains("secret"));
        // Sealing the same body twice must draw fresh nonces and so
        // produce different payloads (keystream reuse regression).
        let sealed2 = flow.seal_body("secret text");
        assert_ne!(sealed, sealed2);
    }

    #[test]
    fn builder_accepts_a_preassembled_policy() {
        let mut policy = Policy::new();
        policy
            .register(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([tag("ti")]))
                    .with_confidentiality(TagSet::from_iter([tag("ti")])),
            )
            .unwrap();
        let flow = BrowserFlow::builder()
            .policy(policy)
            .service(Service::new("gdocs", "Google Docs"))
            .mode(EnforcementMode::Block)
            .build()
            .unwrap();
        assert_eq!(flow.policy().services().count(), 2);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        assert_eq!(
            flow.check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Block
        );
    }

    #[test]
    fn index_text_document_tracks_both_granularities() {
        let flow = flow(EnforcementMode::Block);
        let text = format!("{SECRET}

second paragraph about travel reimbursements and the                             approval chain for expenses over five hundred euros");
        let count = flow
            .index_text_document(&"itool".into(), "handbook", &text)
            .unwrap();
        assert_eq!(count, 2);
        // Paragraph granularity: the second paragraph alone violates.
        let second = text
            .split(
                "

",
            )
            .nth(1)
            .unwrap();
        assert_eq!(
            flow.check_one(&CheckRequest::paragraph("gdocs", "d", 0, second))
                .unwrap()
                .action,
            UploadAction::Block
        );
        // Document granularity: the whole text violates too.
        assert_eq!(
            flow.check_document_upload(&"gdocs".into(), "d", &text)
                .unwrap()
                .action,
            UploadAction::Block
        );
    }

    #[test]
    fn per_segment_thresholds_are_settable_through_the_middleware() {
        let flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        assert!(flow.set_paragraph_threshold(&"itool".into(), "eval", 0, 0.1));
        assert!(!flow.set_paragraph_threshold(&"itool".into(), "never", 0, 0.1));
        // A small quote now violates at the lowered threshold.
        let quote = &SECRET[..SECRET.len() / 4];
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, quote))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);

        flow.observe_document(&"itool".into(), "eval", SECRET)
            .unwrap();
        assert!(flow.set_document_threshold(&"itool".into(), "eval", 0.2));
        assert!(!flow.set_document_threshold(&"itool".into(), "never", 0.2));
    }

    #[test]
    fn short_secrets_are_caught_regardless_of_length() {
        let mut flow = flow(EnforcementMode::Block);
        flow.register_short_secret(&"itool".into(), "ats-api-key", "Kx9#q2!z")
            .unwrap();
        assert_eq!(flow.short_secret_count(), 1);
        // The secret is far below the fingerprint guarantee threshold, yet
        // embedding it anywhere in an upload is caught.
        let decision = flow
            .check_one(&CheckRequest::paragraph(
                "gdocs",
                "draft",
                0,
                "token is kx9 q2 z ok?",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        let violation = &decision.violations[0];
        assert!(violation.source.to_string().contains("secret:ats-api-key"));
        assert_eq!(violation.disclosure, 1.0);
        assert!(!violation.matching_spans.is_empty());
        // Uploading it to the owning service is fine.
        let decision = flow
            .check_one(&CheckRequest::paragraph(
                "itool",
                "notes",
                0,
                "key Kx9#q2!z rotated",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
        // Unrelated short text is untouched.
        let decision = flow
            .check_one(&CheckRequest::paragraph(
                "gdocs",
                "draft",
                1,
                "nothing secret here",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Allow);
    }

    #[test]
    fn short_secret_for_unknown_service_errors() {
        let mut flow = flow(EnforcementMode::Block);
        assert!(matches!(
            flow.register_short_secret(&"nope".into(), "x", "value"),
            Err(MiddlewareError::Policy(_))
        ));
        // Unusable (normalises to empty) secrets are dropped.
        flow.register_short_secret(&"itool".into(), "noise", "!!!")
            .unwrap();
        assert_eq!(flow.short_secret_count(), 0);
    }

    #[test]
    fn keystroke_checks_match_full_checks() {
        let typed_flow = flow(EnforcementMode::Block);
        let full_flow = flow(EnforcementMode::Block);
        for f in [&typed_flow, &full_flow] {
            f.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
                .unwrap();
        }
        let gdocs: ServiceId = "gdocs".into();
        let mut typed = String::new();
        for ch in SECRET.chars() {
            let edit = TextEdit::insert(typed.len(), ch.to_string());
            let incremental = typed_flow
                .check_keystroke(&gdocs, "draft", 0, &edit)
                .unwrap();
            typed.push(ch);
            let full = full_flow
                .check_one(&CheckRequest::paragraph(
                    "gdocs",
                    "draft",
                    0,
                    typed.as_str(),
                ))
                .unwrap();
            assert_eq!(incremental, full, "divergence at {} chars", typed.len());
        }
        // Both paths recorded the same number of warnings.
        assert_eq!(typed_flow.warnings().len(), full_flow.warnings().len());
        assert!(!typed_flow.warnings().is_empty());
    }

    #[test]
    fn keystroke_path_catches_short_secrets() {
        let mut flow = flow(EnforcementMode::Block);
        flow.register_short_secret(&"itool".into(), "ats-api-key", "Kx9#q2!z")
            .unwrap();
        let gdocs: ServiceId = "gdocs".into();
        // Type the secret into a fresh paragraph, one character at a time.
        let mut text = String::new();
        let mut blocked = false;
        for ch in "token kx9 q2 z".chars() {
            let edit = TextEdit::insert(text.len(), ch.to_string());
            let decision = flow.check_keystroke(&gdocs, "draft", 0, &edit).unwrap();
            text.push(ch);
            blocked = decision.action == UploadAction::Block;
        }
        assert!(blocked, "secret embedded via keystrokes must be caught");
    }

    #[test]
    fn stale_keystroke_edit_is_a_typed_error() {
        let flow = flow(EnforcementMode::Block);
        let gdocs: ServiceId = "gdocs".into();
        let err = flow
            .check_keystroke(&gdocs, "draft", 0, &TextEdit::delete(0..9))
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::StaleEdit(_)));
        // Absorb path reports the same error; reset clears the session.
        flow.check_keystroke(&gdocs, "draft", 0, &TextEdit::insert(0, "abc"))
            .unwrap();
        assert!(matches!(
            flow.absorb_keystroke(&gdocs, "draft", 0, &TextEdit::delete(0..9)),
            Err(MiddlewareError::StaleEdit(_))
        ));
        assert!(flow.reset_keystroke_session(&gdocs, "draft", 0));
        assert!(!flow.reset_keystroke_session(&gdocs, "draft", 0));
    }

    #[test]
    fn batched_upload_check_matches_sequential_checks() {
        let sequential = flow(EnforcementMode::Block);
        let batched = flow(EnforcementMode::Block);
        for flow in [&sequential, &batched] {
            flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
                .unwrap();
        }
        let own = "a harmless paragraph about the office coffee machine rota";
        let paragraphs = [SECRET, own, SECRET];
        let expected: Vec<UploadDecision> = paragraphs
            .iter()
            .enumerate()
            .map(|(i, &text)| {
                sequential
                    .check_one(&CheckRequest::paragraph("gdocs", "draft", i, text))
                    .unwrap()
            })
            .collect();
        for workers in [1usize, 4] {
            let decisions = batched
                .check(
                    &CheckRequest::batch("gdocs", "draft", paragraphs.iter().copied())
                        .with_workers(workers),
                )
                .unwrap();
            assert_eq!(decisions, expected);
        }
        assert_eq!(
            expected.iter().map(|d| d.action).collect::<Vec<_>>(),
            [
                UploadAction::Block,
                UploadAction::Allow,
                UploadAction::Block
            ]
        );
        // Warning trail: 2 violations per batch run × 2 worker settings.
        assert_eq!(batched.warnings().len(), 4);
        assert_eq!(batched.warnings()[0].segment.to_string(), "gdocs/draft#p0");
    }

    #[test]
    fn concurrent_checkers_share_one_middleware() {
        let flow = flow(EnforcementMode::Advisory);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let flow = &flow;
                s.spawn(move || {
                    for i in 0..10 {
                        let decision = flow
                            .check_one(&CheckRequest::paragraph(
                                "gdocs",
                                "draft",
                                t * 10 + i,
                                SECRET,
                            ))
                            .unwrap();
                        assert_eq!(decision.action, UploadAction::Warn);
                    }
                });
            }
        });
        assert_eq!(flow.warnings().len(), 40);
    }

    #[test]
    fn document_granularity_upload_check() {
        let flow = flow(EnforcementMode::Block);
        let doc_text = format!("{SECRET}\n\nmore interview material follows here with details");
        flow.observe_document(&"itool".into(), "eval", &doc_text)
            .unwrap();
        let decision = flow
            .check_document_upload(&"gdocs".into(), "draft", &doc_text)
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
    }

    #[test]
    fn sentinel_raises_alert_with_receipt_for_multi_hop_chain() {
        let flow = flow(EnforcementMode::Block);
        let secret = SECRET;
        // Hop 1: itool secret lands in a wiki memo with extra framing (the
        // memo becomes authoritative for its own rendition).
        flow.observe_paragraph(&"itool".into(), "eval", 0, secret)
            .unwrap();
        let memo = format!("{secret} as summarised for the quarterly hiring wiki page");
        flow.observe_paragraph(&"wiki".into(), "memo", 0, &memo)
            .unwrap();
        assert_eq!(flow.lineage().len(), 1);
        // Hop 2: the memo is uploaded to gdocs — violating check.
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, &memo))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);

        let alerts = flow.alerts();
        assert_eq!(alerts.len(), 1);
        let alert = &alerts[0];
        assert_eq!(alert.sink, "gdocs");
        assert_eq!(alert.segment, "gdocs/draft#p0");
        assert_eq!(alert.hops.len(), 2);
        // Origin first: itool → wiki, then wiki → gdocs.
        assert_eq!(alert.hops[0].source, "itool");
        assert_eq!(alert.hops[0].sink, "wiki");
        assert_eq!(alert.hops[1].source, "wiki");
        assert_eq!(alert.hops[1].sink, "gdocs");
        assert!(alert.missing_tags.iter().any(|t| t == "ti"));
        // The receipt references every hop and ties into the report trail.
        assert_eq!(alert.receipt.alert_id, alert.id);
        assert_eq!(alert.receipt.action, "block");
        assert_eq!(
            alert.receipt.hop_clocks,
            alert.hops.iter().map(|h| h.clock).collect::<Vec<_>>()
        );
        let warning = &flow.warnings()[alert.receipt.warning_index as usize];
        assert_eq!(warning.segment.to_string(), alert.segment);

        // Re-checking the same flow raises nothing new.
        flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, &memo))
            .unwrap();
        assert_eq!(flow.alerts().len(), 1);
    }

    #[test]
    fn single_hop_violation_raises_no_alert() {
        let flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        let decision = flow
            .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        // The direct paste violates — ordinary warning, no chain alert.
        assert_eq!(decision.action, UploadAction::Block);
        assert_eq!(flow.warnings().len(), 1);
        assert!(flow.alerts().is_empty());
    }

    #[test]
    fn batch_check_surfaces_worker_panic_as_typed_error() {
        use crate::engine::test_hooks;
        let _guard = test_hooks::lock();
        let flow = flow(EnforcementMode::Block);
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();

        test_hooks::set_panic_on_marker(true);
        let poisoned = format!("{SECRET} {}", test_hooks::FAULT_MARKER);
        let err = flow
            .check(&CheckRequest::batch("gdocs", "draft", [SECRET, &poisoned]).with_workers(2))
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::WorkerPanic(_)));
        assert!(err.to_string().contains("worker panicked"));
        test_hooks::set_panic_on_marker(false);

        // The middleware remains serviceable after the contained panic.
        let decisions = flow
            .check(&CheckRequest::batch("gdocs", "draft", [SECRET]).with_workers(2))
            .unwrap();
        assert_eq!(decisions[0].action, UploadAction::Block);
    }
}
