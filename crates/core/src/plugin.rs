//! The browser plug-in: wiring BrowserFlow into the (simulated) browser.
//!
//! Mirrors §5 of the paper:
//!
//! - **Dynamic services** (Google Docs): [`Plugin::watch_docs`] attaches
//!   mutation observers to the editor. A document observer notices
//!   paragraph creation/deletion, a paragraph observer notices content
//!   changes; both feed the policy lookup module
//!   ([`BrowserFlow::observe_paragraph`]), which also recolours flagged
//!   paragraphs (the `data-bf-flagged` attribute stands in for the red
//!   background of Figure 2).
//! - **Outgoing traffic**: [`Plugin::install`] replaces the
//!   `XMLHttpRequest.prototype.send` slot with a hook that runs the policy
//!   enforcement module over every sync request, and registers a form
//!   submit listener that inspects all non-hidden fields.
//! - **Static services**: [`Plugin::observe_page`] extracts the main text
//!   of a loaded page Readability-style and registers its paragraphs.

use crate::middleware::{BrowserFlow, UploadAction};
use crate::request::CheckRequest;
use browserflow_browser::dom::NodeId;
use browserflow_browser::services::{DocsApp, NotesApp};
use browserflow_browser::{extract, Browser, TabId, XhrDisposition};
use browserflow_tdm::ServiceId;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A service-specific transformation of an outgoing sync body into a
/// (segment index, text) pair (§4.4: services without the docs wire
/// format "may be supported by BrowserFlow if there is a service-specific
/// transformation of the service's data to text segments").
pub type SyncBodyParser = fn(&str) -> Option<(usize, String)>;

/// Maps a browser origin to the TDM service and document name BrowserFlow
/// tracks it under.
#[derive(Debug, Clone)]
struct OriginBinding {
    service: ServiceId,
    document: String,
    parser: Option<SyncBodyParser>,
}

/// The BrowserFlow browser plug-in.
///
/// Clone-cheap: all clones share the same middleware state. Interception
/// hooks take the state's read lock only — observation, enforcement and
/// sealing are `&self` on [`BrowserFlow`], with contention handled inside
/// the engine's sharded stores — so concurrent tabs never serialise on a
/// plug-in-wide mutex. The write lock is reserved for administrative
/// operations (mode changes, tag suppression, policy edits) through
/// [`Plugin::state`].
///
/// # Example
///
/// ```rust
/// use browserflow::plugin::Plugin;
/// use browserflow::{BrowserFlow, EnforcementMode};
/// use browserflow_browser::{services::DocsApp, Browser};
/// use browserflow_tdm::{Service, Tag, TagSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tw = Tag::new("wiki-data")?;
/// let flow = BrowserFlow::builder()
///     .mode(EnforcementMode::Block)
///     .service(Service::new("wiki", "Internal Wiki")
///         .with_privilege(TagSet::from_iter([tw.clone()]))
///         .with_confidentiality(TagSet::from_iter([tw])))
///     .service(Service::new("gdocs", "Google Docs"))
///     .build()?;
///
/// let plugin = Plugin::new(flow);
/// let mut browser = Browser::new();
/// plugin.bind_origin("https://docs.example.com", "gdocs", "draft");
/// plugin.install(&mut browser);
///
/// let tab = browser.open_tab("https://docs.example.com");
/// let mut docs = DocsApp::attach(&mut browser, tab);
/// plugin.watch_docs(&mut browser, &docs);
/// docs.create_paragraph(&mut browser);
/// let result = docs.type_text(&mut browser, 0, "harmless text");
/// assert!(result.is_delivered());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Plugin {
    state: Arc<RwLock<BrowserFlow>>,
    origins: Arc<Mutex<HashMap<String, OriginBinding>>>,
}

impl std::fmt::Debug for Plugin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plugin")
            .field("origins", &self.origins.lock().len())
            .finish()
    }
}

impl Plugin {
    /// Wraps a middleware instance for browser installation.
    pub fn new(flow: BrowserFlow) -> Self {
        Self {
            state: Arc::new(RwLock::new(flow)),
            origins: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Shared access to the middleware: `read()` for checks, warnings and
    /// observations; `write()` to suppress tags or change the enforcement
    /// mode at runtime.
    pub fn state(&self) -> Arc<RwLock<BrowserFlow>> {
        Arc::clone(&self.state)
    }

    /// Declares that traffic to `origin` belongs to `service`, tracked
    /// under document name `document`.
    pub fn bind_origin(
        &self,
        origin: impl Into<String>,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
    ) {
        self.origins.lock().insert(
            origin.into(),
            OriginBinding {
                service: service.into(),
                document: document.into(),
                parser: None,
            },
        );
    }

    /// Like [`Plugin::bind_origin`], with a service-specific sync-body
    /// parser for services that do not speak the docs wire format (e.g.
    /// [`browserflow_browser::services::parse_notes_sync`] for the notes
    /// service).
    pub fn bind_origin_with_parser(
        &self,
        origin: impl Into<String>,
        service: impl Into<ServiceId>,
        document: impl Into<String>,
        parser: SyncBodyParser,
    ) {
        self.origins.lock().insert(
            origin.into(),
            OriginBinding {
                service: service.into(),
                document: document.into(),
                parser: Some(parser),
            },
        );
    }

    /// Installs the XHR send hook and the form submit listener into
    /// `browser`.
    pub fn install(&self, browser: &mut Browser) {
        // XMLHttpRequest.prototype.send replacement (§5.2).
        let state = Arc::clone(&self.state);
        let origins = Arc::clone(&self.origins);
        browser.install_xhr_hook(Box::new(move |request| {
            let binding = match origins.lock().get(&request.url) {
                Some(b) => b.clone(),
                None => return XhrDisposition::Allow, // unmanaged origin
            };
            let parsed = match binding.parser {
                Some(parser) => parser(&request.body),
                None => parse_sync_body(&request.body).map(|(i, t)| (i, t.to_string())),
            };
            let Some((index, text)) = parsed else {
                return XhrDisposition::Allow; // not a content mutation
            };
            let flow = state.read();
            let decision = match flow.check_one(&CheckRequest::paragraph(
                &binding.service,
                &binding.document,
                index,
                &text,
            )) {
                Ok(decision) => decision,
                // Unregistered service: fail open but do not loop.
                Err(_) => return XhrDisposition::Allow,
            };
            match decision.action {
                UploadAction::Allow | UploadAction::Warn => XhrDisposition::Allow,
                UploadAction::Block => XhrDisposition::Block {
                    reason: block_reason(&decision),
                },
                UploadAction::Encrypt => {
                    let sealed = flow.seal_body(&text);
                    // Preserve each service's wire shape around the sealed
                    // payload.
                    let body = match binding.parser {
                        Some(_) => request.body.replace(&text, &sealed),
                        None => format!("mutate p{index}: {sealed}"),
                    };
                    XhrDisposition::Rewrite { body }
                }
            }
        }));

        // Form submit listener (§5.1).
        let state = Arc::clone(&self.state);
        let origins = Arc::clone(&self.origins);
        browser.add_submit_listener(Box::new(move |event| {
            let binding = match origins.lock().get(&event.form().action) {
                Some(b) => b.clone(),
                None => return,
            };
            let flow = state.read();
            // All non-hidden fields travel as ONE batch request: a single
            // policy lookup plus one engine fan-out instead of a check per
            // field.
            let mut request = CheckRequest::new(&binding.service, &binding.document);
            let mut included: Vec<usize> = Vec::new();
            for (index, field) in event
                .form()
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.hidden)
            {
                request = request.with_paragraph(index, field.value.clone());
                included.push(index);
            }
            let Ok(decisions) = flow.check(&request) else {
                // Unregistered service: fail open.
                return;
            };
            let mut sealed: Vec<(usize, String)> = Vec::new();
            for (&index, decision) in included.iter().zip(&decisions) {
                match decision.action {
                    UploadAction::Allow | UploadAction::Warn => {}
                    UploadAction::Block => {
                        let reason = block_reason(decision);
                        drop(flow);
                        event.prevent_default(reason);
                        return;
                    }
                    UploadAction::Encrypt => {
                        let value = &event.form().fields[index].value;
                        sealed.push((index, flow.seal_body(value)));
                    }
                }
            }
            for (index, body) in sealed {
                event.form_mut().fields[index].value = body;
            }
        }));
    }

    /// Attaches the document and paragraph observers to a docs editor.
    /// The editor's origin must have been bound with
    /// [`Plugin::bind_origin`].
    ///
    /// # Panics
    ///
    /// Panics if the origin is unbound.
    pub fn watch_docs(&self, browser: &mut Browser, docs: &DocsApp) {
        self.watch_editor(browser, docs.tab(), docs.editor(), docs.origin());
    }

    /// Attaches observers to a notes editor (title = segment 0, block `i`
    /// = segment `i + 1`, matching
    /// [`browserflow_browser::services::parse_notes_sync`]).
    ///
    /// # Panics
    ///
    /// Panics if the origin is unbound.
    pub fn watch_notes(&self, browser: &mut Browser, notes: &NotesApp) {
        self.watch_editor(browser, notes.tab(), notes.editor(), notes.origin());
    }

    /// Shared observer wiring: every child of `editor` is one tracked
    /// segment, indexed by DOM position.
    fn watch_editor(&self, browser: &mut Browser, tab: TabId, editor: NodeId, origin: &str) {
        let binding = self
            .origins
            .lock()
            .get(origin)
            .cloned()
            .expect("origin must be bound before watching");
        let state = Arc::clone(&self.state);
        browser.tab_mut(tab).observers_mut().observe(
            editor,
            Box::new(move |document, records| {
                use browserflow_browser::dom::MutationRecord;
                // Figure out which paragraphs changed; a structural
                // removal shifts indices, so re-observe everything then.
                let mut affected: Vec<usize> = Vec::new();
                let mut reobserve_all = false;
                for record in records {
                    match record {
                        MutationRecord::ChildRemoved { parent, .. } if *parent == editor => {
                            reobserve_all = true;
                        }
                        MutationRecord::ChildAdded { parent, child } if *parent == editor => {
                            if let Some(index) =
                                document.children(editor).iter().position(|c| c == child)
                            {
                                affected.push(index);
                            }
                        }
                        MutationRecord::TextChanged { node } => {
                            // Walk up to the paragraph (child of editor).
                            let mut current = *node;
                            while let Some(parent) = document.parent(current) {
                                if parent == editor {
                                    if let Some(index) =
                                        document.children(editor).iter().position(|&c| c == current)
                                    {
                                        affected.push(index);
                                    }
                                    break;
                                }
                                current = parent;
                            }
                        }
                        _ => {}
                    }
                }
                if reobserve_all {
                    affected = (0..document.children(editor).len()).collect();
                }
                affected.sort_unstable();
                affected.dedup();
                let flow = state.read();
                for index in affected {
                    let paragraph = document.children(editor)[index];
                    let text = document.text_content(paragraph);
                    if let Ok(status) =
                        flow.observe_paragraph(&binding.service, &binding.document, index, &text)
                    {
                        // Figure 2: recolour flagged paragraphs.
                        document.set_attr(
                            paragraph,
                            "data-bf-flagged",
                            if status.flagged { "true" } else { "false" },
                        );
                    }
                }
                // Document-granularity tracking (§4.1): the whole editor
                // content is checked and observed as one segment, so that
                // copying one sentence from each of many paragraphs — each
                // below Tpar — still trips the document disclosure
                // requirement Tdoc.
                let full_text = document.text_content(editor);
                let doc_flagged = match flow.check_document_upload(
                    &binding.service,
                    &binding.document,
                    &full_text,
                ) {
                    Ok(decision) => !decision.violations.is_empty(),
                    Err(_) => false,
                };
                let _ = flow.observe_document(&binding.service, &binding.document, &full_text);
                document.set_attr(
                    editor,
                    "data-bf-doc-flagged",
                    if doc_flagged { "true" } else { "false" },
                );
            }),
        );
    }

    /// Registers the main text of a loaded static page (§5.1): extracts
    /// it Readability-style, observes the whole text at document
    /// granularity and each extracted paragraph at paragraph granularity.
    ///
    /// Returns the number of paragraphs observed (0 when extraction finds
    /// no content element). The tab's origin must be bound.
    pub fn observe_page(&self, browser: &Browser, tab: TabId) -> usize {
        let origin = browser.tab(tab).origin().to_string();
        let binding = match self.origins.lock().get(&origin) {
            Some(b) => b.clone(),
            None => return 0,
        };
        let document = browser.tab(tab).document();
        let Some(extraction) = extract::extract_main_text(document) else {
            return 0;
        };
        let flow = self.state.read();
        let _ = flow.observe_document(&binding.service, &binding.document, &extraction.text);
        let mut observed = 0;
        for (index, paragraph) in extraction.paragraphs.iter().enumerate() {
            if flow
                .observe_paragraph(&binding.service, &binding.document, index, paragraph)
                .is_ok()
            {
                observed += 1;
            }
        }
        observed
    }
}

/// Parses a docs sync body of the form `mutate p<index>: <text>`.
fn parse_sync_body(body: &str) -> Option<(usize, &str)> {
    let rest = body.strip_prefix("mutate p")?;
    let colon = rest.find(": ")?;
    let index: usize = rest[..colon].parse().ok()?;
    Some((index, &rest[colon + 2..]))
}

fn block_reason(decision: &crate::middleware::UploadDecision) -> String {
    let sources: Vec<String> = decision
        .violations
        .iter()
        .map(|v| format!("{} (missing {})", v.source, v.missing_tags))
        .collect();
    format!("policy violation: discloses {}", sources.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnforcementMode, EngineConfig};
    use browserflow_browser::services::{static_site, WikiApp};
    use browserflow_fingerprint::FingerprintConfig;
    use browserflow_tdm::{Service, Tag, TagSet};

    const WIKI_ORIGIN: &str = "https://wiki.internal";
    const DOCS_ORIGIN: &str = "https://docs.example.com";
    const SECRET: &str = "the interview rubric awards extra points for candidates who ask \
                          incisive clarifying questions early in the conversation";

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    fn plugin(mode: EnforcementMode) -> Plugin {
        let flow = BrowserFlow::builder()
            .mode(mode)
            .engine(EngineConfig {
                fingerprint: FingerprintConfig::builder()
                    .ngram_len(6)
                    .window(4)
                    .build()
                    .unwrap(),
                ..EngineConfig::default()
            })
            .service(
                Service::new("wiki", "Internal Wiki")
                    .with_privilege(TagSet::from_iter([tag("tw")]))
                    .with_confidentiality(TagSet::from_iter([tag("tw")])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        let plugin = Plugin::new(flow);
        plugin.bind_origin(WIKI_ORIGIN, "wiki", "wiki-page");
        plugin.bind_origin(DOCS_ORIGIN, "gdocs", "draft");
        plugin
    }

    #[test]
    fn parse_sync_body_roundtrip() {
        assert_eq!(parse_sync_body("mutate p3: hello"), Some((3, "hello")));
        assert_eq!(parse_sync_body("mutate p0: "), Some((0, "")));
        assert_eq!(parse_sync_body("unrelated"), None);
        assert_eq!(parse_sync_body("mutate px: y"), None);
    }

    #[test]
    fn end_to_end_paste_from_wiki_to_docs_is_blocked() {
        let plugin = plugin(EnforcementMode::Block);
        let mut browser = Browser::new();
        plugin.install(&mut browser);

        // The secret lives on a static wiki page; the plug-in extracts and
        // registers it on page load.
        let page = static_site::article_page("Rubric", &[SECRET.to_string()]);
        let wiki_tab = browser.open_tab_with_html(WIKI_ORIGIN, &page);
        assert_eq!(plugin.observe_page(&browser, wiki_tab), 1);

        // The user copies it into Google Docs.
        let docs_tab = browser.open_tab(DOCS_ORIGIN);
        let mut docs = DocsApp::attach(&mut browser, docs_tab);
        plugin.watch_docs(&mut browser, &docs);
        docs.create_paragraph(&mut browser);
        browser.copy(SECRET);
        let pasted = browser.paste().unwrap();
        let result = docs.type_text(&mut browser, 0, &pasted);

        // The sync XHR was suppressed; the backend never saw the text.
        assert!(!result.is_delivered());
        assert!(!browser.backend(DOCS_ORIGIN).saw_text("rubric"));
        // And the paragraph is flagged red in the UI.
        let paragraph = docs.paragraph_node(&browser, 0);
        assert_eq!(
            browser
                .tab(docs_tab)
                .document()
                .attr(paragraph, "data-bf-flagged"),
            Some("true")
        );
    }

    #[test]
    fn harmless_typing_is_delivered_and_unflagged() {
        let plugin = plugin(EnforcementMode::Block);
        let mut browser = Browser::new();
        plugin.install(&mut browser);
        let docs_tab = browser.open_tab(DOCS_ORIGIN);
        let mut docs = DocsApp::attach(&mut browser, docs_tab);
        plugin.watch_docs(&mut browser, &docs);
        docs.create_paragraph(&mut browser);
        let result = docs.type_text(&mut browser, 0, "my own grocery list and notes");
        assert!(result.is_delivered());
        let paragraph = docs.paragraph_node(&browser, 0);
        assert_eq!(
            browser
                .tab(docs_tab)
                .document()
                .attr(paragraph, "data-bf-flagged"),
            Some("false")
        );
    }

    #[test]
    fn encrypt_mode_rewrites_instead_of_blocking() {
        let plugin = plugin(EnforcementMode::Encrypt);
        let mut browser = Browser::new();
        plugin.install(&mut browser);
        let page = static_site::article_page("Rubric", &[SECRET.to_string()]);
        let wiki_tab = browser.open_tab_with_html(WIKI_ORIGIN, &page);
        plugin.observe_page(&browser, wiki_tab);

        let docs_tab = browser.open_tab(DOCS_ORIGIN);
        let mut docs = DocsApp::attach(&mut browser, docs_tab);
        plugin.watch_docs(&mut browser, &docs);
        docs.create_paragraph(&mut browser);
        let result = docs.type_text(&mut browser, 0, SECRET);
        assert!(result.is_delivered());
        let backend = browser.backend(DOCS_ORIGIN);
        assert!(backend.saw_text("bf-sealed:"));
        assert!(!backend.saw_text("rubric"));
    }

    #[test]
    fn form_submission_with_secret_is_blocked() {
        let plugin = plugin(EnforcementMode::Block);
        let mut browser = Browser::new();
        plugin.install(&mut browser);

        // Secret first observed in gdocs? No — make gdocs text flow INTO
        // wiki: gdocs is public, so that is fine. Instead, observe the
        // secret in a second managed service that wiki lacks privilege
        // for: reuse the docs origin bound to gdocs (Lc = {}) would be
        // public, so bind the secret to the wiki itself and submit it to
        // an *unmanaged* external form — which the plug-in lets through —
        // then to a managed one.
        let state = plugin.state();
        state
            .read()
            .observe_paragraph(&"wiki".into(), "wiki-page", 0, SECRET)
            .unwrap();

        // An external form-based service bound to gdocs (untrusted).
        plugin.bind_origin("https://forum.external", "gdocs", "forum-post");
        let forum_tab = browser.open_tab("https://forum.external");
        let wiki = WikiApp::attach(&mut browser, forum_tab);
        // WikiApp's form action is its origin.
        wiki.set_content(&mut browser, SECRET);
        let result = wiki.save(&mut browser);
        assert!(!result.is_delivered());
        assert_eq!(browser.backend("https://forum.external").upload_count(), 0);
    }

    #[test]
    fn unmanaged_origins_pass_through() {
        let plugin = plugin(EnforcementMode::Block);
        let mut browser = Browser::new();
        plugin.install(&mut browser);
        let result = browser.xhr_send(browserflow_browser::XhrRequest::post(
            "https://unmanaged.example",
            "mutate p0: anything at all",
        ));
        assert!(result.is_delivered());
    }
}
