//! Human-readable reports over the middleware state.
//!
//! The advisory deployment model (§1: "inform employees of potential
//! policy violations but give them the freedom to make final disclosure
//! decisions") needs the warning trail to be reviewable — by the user in
//! the browser and by the IT department during audits. This module renders
//! the trail and the policy posture as plain text; `bfctl state` prints it
//! for persisted state files.

use crate::middleware::BrowserFlow;
use std::fmt::Write as _;

/// Renders the recorded warnings, oldest first.
///
/// # Example
///
/// ```rust
/// use browserflow::{report, BrowserFlow};
/// use browserflow_tdm::Service;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flow = BrowserFlow::builder()
///     .service(Service::new("gdocs", "Google Docs"))
///     .build()?;
/// assert!(report::warning_report(&flow).contains("no warnings recorded"));
/// # Ok(())
/// # }
/// ```
pub fn warning_report(flow: &BrowserFlow) -> String {
    let mut out = String::new();
    if flow.warnings().is_empty() {
        out.push_str("no warnings recorded\n");
        return out;
    }
    writeln!(out, "{} warning(s) recorded:", flow.warnings().len()).unwrap();
    for (index, warning) in flow.warnings().iter().enumerate() {
        writeln!(
            out,
            "[{index}] editing {} towards {}",
            warning.segment, warning.destination
        )
        .unwrap();
        for violation in &warning.violations {
            writeln!(
                out,
                "      discloses {:>5.1}% of {} (missing {}; {} matching passage(s))",
                violation.disclosure * 100.0,
                violation.source,
                violation.missing_tags,
                violation.matching_spans.len()
            )
            .unwrap();
        }
    }
    out
}

/// Renders the policy posture: services with labels, custom-tag count and
/// audit summary.
pub fn policy_report(flow: &BrowserFlow) -> String {
    let mut out = String::new();
    writeln!(out, "enforcement mode: {:?}", flow.mode()).unwrap();
    writeln!(out, "services:").unwrap();
    for service in flow.policy().services() {
        writeln!(
            out,
            "  {:<14} {:<22} Lp={:<20} Lc={}",
            service.id().to_string(),
            service.name(),
            service.privilege().to_string(),
            service.confidentiality()
        )
        .unwrap();
    }
    writeln!(
        out,
        "audit records: {}; tracked paragraphs: {}; tracked documents: {}",
        flow.policy().audit_log().len(),
        flow.engine().paragraph_count(),
        flow.engine().document_count()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckRequest, EnforcementMode, EngineConfig};
    use browserflow_fingerprint::FingerprintConfig;
    use browserflow_tdm::{Service, Tag, TagSet};

    fn flow_with_warning() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .engine(EngineConfig {
                fingerprint: FingerprintConfig::builder()
                    .ngram_len(6)
                    .window(4)
                    .build()
                    .unwrap(),
                ..EngineConfig::default()
            })
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        let secret = "a paragraph long enough to fingerprint about interview scores";
        flow.observe_paragraph(&"itool".into(), "eval", 0, secret)
            .unwrap();
        flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, secret))
            .unwrap();
        flow
    }

    #[test]
    fn warning_report_lists_violations() {
        let flow = flow_with_warning();
        let report = warning_report(&flow);
        assert!(report.contains("1 warning(s) recorded"));
        assert!(report.contains("towards gdocs"));
        assert!(report.contains("itool/eval#p0"));
        assert!(report.contains("#ti"));
        assert!(report.contains("matching passage(s)"));
    }

    #[test]
    fn policy_report_shows_services_and_counts() {
        let flow = flow_with_warning();
        let report = policy_report(&flow);
        assert!(report.contains("enforcement mode: Block"));
        assert!(report.contains("Interview Tool"));
        assert!(report.contains("tracked paragraphs: 1"));
    }
}
