//! The unified disclosure-check request surface.
//!
//! Historically the middleware exposed three divergent enforcement
//! signatures — `check_upload(service, document, index, text)`,
//! `check_upload_batch(service, document, paragraphs, workers)` and the
//! engine-level `check_paragraphs` — which forced the asynchronous path to
//! serialise one channel round-trip per paragraph. [`CheckRequest`] is the
//! one typed entry point both sync ([`BrowserFlow::check`]) and async
//! ([`AsyncDecider::check_request`]) callers share: a destination service,
//! a document, and any number of [`ParagraphRef`] slots checked as a
//! single batch.
//!
//! Requests borrow their text ([`std::borrow::Cow`]) so the synchronous
//! hot path never copies the upload body; [`CheckRequest::into_owned`]
//! detaches a request from its borrows when it must cross a thread
//! boundary (the [`AsyncDecider`] pipeline).
//!
//! [`BrowserFlow::check`]: crate::BrowserFlow::check
//! [`AsyncDecider`]: crate::AsyncDecider
//! [`AsyncDecider::check_request`]: crate::AsyncDecider::check_request

use browserflow_tdm::ServiceId;
use std::borrow::Cow;

/// One paragraph slot of a pending upload: the slot's index within the
/// document plus the text about to be uploaded into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParagraphRef<'a> {
    /// The paragraph's index within the document.
    pub index: usize,
    /// The text about to be uploaded into that slot.
    pub text: Cow<'a, str>,
}

impl<'a> ParagraphRef<'a> {
    /// Creates a paragraph reference.
    pub fn new(index: usize, text: impl Into<Cow<'a, str>>) -> Self {
        Self {
            index,
            text: text.into(),
        }
    }

    /// Detaches the reference from its borrows.
    pub fn into_owned(self) -> ParagraphRef<'static> {
        ParagraphRef {
            index: self.index,
            text: Cow::Owned(self.text.into_owned()),
        }
    }
}

/// A typed disclosure-check request: which service the text is bound for,
/// which document it belongs to, and the paragraph slots to check.
///
/// A single-paragraph keystroke check and a document-wide recheck are the
/// same request shape — the latter simply carries more paragraphs and is
/// served as one batch (one worker round-trip through the
/// [`AsyncDecider`](crate::AsyncDecider), one Algorithm 1 fan-out through
/// the engine).
///
/// # Example
///
/// ```rust
/// use browserflow::{BrowserFlow, CheckRequest, UploadAction};
/// use browserflow_tdm::Service;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let flow = BrowserFlow::builder()
///     .service(Service::new("gdocs", "Google Docs"))
///     .build()?;
/// // One keystroke check:
/// let decision = flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, "hello"))?;
/// assert_eq!(decision.action, UploadAction::Allow);
/// // A document-wide recheck, fanned out over 4 workers:
/// let decisions = flow.check(
///     &CheckRequest::batch("gdocs", "draft", ["first paragraph", "second paragraph"])
///         .with_workers(4),
/// )?;
/// assert_eq!(decisions.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRequest<'a> {
    service: ServiceId,
    document: Cow<'a, str>,
    paragraphs: Vec<ParagraphRef<'a>>,
    workers: usize,
}

impl<'a> CheckRequest<'a> {
    /// Creates an empty request for `document` in `service`; add slots
    /// with [`CheckRequest::with_paragraph`].
    pub fn new(service: impl Into<ServiceId>, document: impl Into<Cow<'a, str>>) -> Self {
        Self {
            service: service.into(),
            document: document.into(),
            paragraphs: Vec::new(),
            workers: 1,
        }
    }

    /// A single-paragraph request (the per-keystroke shape).
    pub fn paragraph(
        service: impl Into<ServiceId>,
        document: impl Into<Cow<'a, str>>,
        index: usize,
        text: impl Into<Cow<'a, str>>,
    ) -> Self {
        Self::new(service, document).with_paragraph(index, text)
    }

    /// A whole-document batch request: `texts` become paragraphs
    /// `0..texts.len()` (the document-wide recheck shape).
    pub fn batch<T: Into<Cow<'a, str>>>(
        service: impl Into<ServiceId>,
        document: impl Into<Cow<'a, str>>,
        texts: impl IntoIterator<Item = T>,
    ) -> Self {
        let mut request = Self::new(service, document);
        for (index, text) in texts.into_iter().enumerate() {
            request.paragraphs.push(ParagraphRef::new(index, text));
        }
        request
    }

    /// Adds a paragraph slot (builder style).
    pub fn with_paragraph(mut self, index: usize, text: impl Into<Cow<'a, str>>) -> Self {
        self.paragraphs.push(ParagraphRef::new(index, text));
        self
    }

    /// Sets the Algorithm 1 fan-out width for this request (defaults
    /// to 1, i.e. the calling/worker thread).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The destination service.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The document the paragraphs belong to.
    pub fn document(&self) -> &str {
        &self.document
    }

    /// The paragraph slots to check, in decision order.
    pub fn paragraphs(&self) -> &[ParagraphRef<'a>] {
        &self.paragraphs
    }

    /// The configured fan-out width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of paragraph slots.
    pub fn len(&self) -> usize {
        self.paragraphs.len()
    }

    /// Whether the request has no paragraph slots.
    pub fn is_empty(&self) -> bool {
        self.paragraphs.is_empty()
    }

    /// Detaches the request from its borrows so it can cross a thread
    /// boundary (the asynchronous pipeline path).
    pub fn into_owned(self) -> CheckRequest<'static> {
        CheckRequest {
            service: self.service,
            document: Cow::Owned(self.document.into_owned()),
            paragraphs: self
                .paragraphs
                .into_iter()
                .map(ParagraphRef::into_owned)
                .collect(),
            workers: self.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraph_and_batch_constructors() {
        let single = CheckRequest::paragraph("gdocs", "draft", 3, "text");
        assert_eq!(single.service().as_str(), "gdocs");
        assert_eq!(single.document(), "draft");
        assert_eq!(single.len(), 1);
        assert_eq!(single.paragraphs()[0].index, 3);
        assert_eq!(single.workers(), 1);

        let batch = CheckRequest::batch("gdocs", "draft", ["a", "b", "c"]).with_workers(4);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.workers(), 4);
        assert_eq!(
            batch
                .paragraphs()
                .iter()
                .map(|p| p.index)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn workers_floor_is_one() {
        assert_eq!(CheckRequest::new("s", "d").with_workers(0).workers(), 1);
    }

    #[test]
    fn into_owned_preserves_contents() {
        let text = String::from("borrowed body");
        let request = CheckRequest::paragraph("svc", "doc", 7, text.as_str());
        let owned: CheckRequest<'static> = request.clone().into_owned();
        assert_eq!(owned.document(), request.document());
        assert_eq!(owned.paragraphs()[0].text, request.paragraphs()[0].text);
        assert_eq!(owned.paragraphs()[0].index, 7);
    }
}
