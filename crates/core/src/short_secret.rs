//! Exact-match protection for short secrets.
//!
//! §4.4: "imprecise data flow tracking is not effective at a finer
//! granularity than paragraphs [...] Short but sensitive text, however, is
//! typically only relevant from a confidentiality perspective in specific
//! scenarios, e.g. when the text is used as a password. For such specific
//! use cases [...] specialised systems which rely on data equality only
//! are more effective."
//!
//! This module is that specialised companion system: administrators
//! register short secrets (passwords, API keys, licence numbers) and the
//! enforcement module scans every upload for them by *normalised substring
//! equality* — robust to casing and punctuation tricks, and immune to the
//! empty-fingerprint blind spot for text shorter than one n-gram.

use browserflow_fingerprint::normalize;
use browserflow_tdm::{SegmentLabel, ServiceId};
use std::ops::Range;

/// One registered short secret.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct ShortSecret {
    /// Administrative name (never the secret itself) used in reports.
    pub name: String,
    /// The service the secret belongs to.
    pub service: ServiceId,
    /// The label enforced for the secret (the owning service's `Lc`).
    pub label: SegmentLabel,
    /// The secret's normalised form.
    normalized: String,
}

impl ShortSecret {
    pub(crate) fn new(
        name: impl Into<String>,
        service: ServiceId,
        label: SegmentLabel,
        secret: &str,
    ) -> Self {
        Self {
            name: name.into(),
            service,
            label,
            normalized: normalize::normalize(secret).text().to_string(),
        }
    }

    /// Whether the secret is non-trivial (empty secrets would match
    /// everything).
    pub(crate) fn is_usable(&self) -> bool {
        !self.normalized.is_empty()
    }

    /// Byte ranges of `text` where the secret appears (after
    /// normalisation). Empty when it does not appear.
    pub(crate) fn find_in(&self, text: &str) -> Vec<Range<usize>> {
        if self.normalized.is_empty() {
            return Vec::new();
        }
        let normalized = normalize::normalize(text);
        let haystack = normalized.text();
        let needle = &self.normalized;
        let needle_chars = needle.chars().count();
        let mut spans = Vec::new();
        let mut search_from = 0usize;
        // Positions are character indices into the normalised text.
        let haystack_chars: Vec<char> = haystack.chars().collect();
        let needle_vec: Vec<char> = needle.chars().collect();
        while search_from + needle_chars <= haystack_chars.len() {
            if haystack_chars[search_from..search_from + needle_chars] == needle_vec[..] {
                let start = normalized
                    .original_offset(search_from)
                    .expect("start in range");
                let end = normalized.span_of_ngram(search_from, needle_chars).end;
                spans.push(start..end);
                search_from += needle_chars;
            } else {
                search_from += 1;
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_tdm::{SegmentLabel, Tag, TagSet};

    fn secret(value: &str) -> ShortSecret {
        let label =
            SegmentLabel::from_confidentiality(&TagSet::from_iter([Tag::new("vault").unwrap()]));
        ShortSecret::new("db-password", ServiceId::new("vault"), label, value)
    }

    #[test]
    fn finds_exact_and_normalised_occurrences() {
        let s = secret("Tr0ub4dor&3");
        assert_eq!(s.find_in("Tr0ub4dor&3").len(), 1);
        // Case and punctuation noise do not help the leaker.
        assert_eq!(s.find_in("the password is tr0ub4dor 3!").len(), 1);
        assert_eq!(s.find_in("TR0UB4DOR-3").len(), 1);
    }

    #[test]
    fn spans_point_at_the_leak() {
        let s = secret("hunter2");
        let text = "my password is hunter2, don't tell";
        let spans = s.find_in(text);
        assert_eq!(spans.len(), 1);
        assert_eq!(&text[spans[0].clone()], "hunter2");
    }

    #[test]
    fn multiple_occurrences_are_all_found() {
        let s = secret("abc123");
        let spans = s.find_in("abc123 and again abc123");
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn absent_and_partial_secrets_do_not_match() {
        let s = secret("hunter2");
        assert!(s.find_in("nothing to see here").is_empty());
        assert!(s.find_in("hunter").is_empty());
        // Different secret of same length.
        assert!(s.find_in("hunter3").is_empty());
    }

    #[test]
    fn empty_secret_is_unusable() {
        let s = secret("!!!"); // normalises to empty
        assert!(!s.is_usable());
        assert!(s.find_in("anything").is_empty());
    }

    #[test]
    fn unicode_secrets_work() {
        let s = secret("pässwörd");
        let text = "leaking PÄSSWÖRD now";
        let spans = s.find_in(text);
        assert_eq!(spans.len(), 1);
        assert_eq!(&text[spans[0].clone()], "PÄSSWÖRD");
    }
}
