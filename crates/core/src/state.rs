//! Persistence of the full middleware state.
//!
//! §4.4 requires that long-term fingerprint storage be encrypted at rest.
//! Two forms are supported:
//!
//! - [`BrowserFlow::export_sealed`] — one sealed envelope holding the
//!   complete middleware state: policy (including the audit log), segment
//!   labels, the key registry and both fingerprint stores. Convenient for
//!   small deployments and transport.
//! - [`BrowserFlow::persist_to_dir`] / [`BrowserFlow::load_from_dir`] —
//!   a directory layout that persists each store shard as its own sealed,
//!   atomically written file (see [`browserflow_store::persist`]), so a
//!   torn write loses one shard instead of everything and large stores
//!   load in parallel. The registry/policy metadata is sealed into
//!   `state.bfmeta`, written last.
//! - [`BrowserFlow::persist_tiered_to_dir`] — the same layout, but each
//!   fingerprint store is written as a plain v3 tiered directory whose
//!   sealed cold shards the next [`BrowserFlow::load_from_dir`] maps in
//!   place ([`TierMode::Cold`]) instead of decoding, so restart latency
//!   and resident memory track the hot set, not the store size. Only the
//!   `state.bfmeta` metadata stays sealed; use the fully sealed layout
//!   when fingerprints themselves must be ciphertext at rest.
//!
//! [`BrowserFlow::load_from_dir`] auto-detects which layout each store
//! directory uses, so operators can switch between them snapshot by
//! snapshot.
//!
//! Envelope wire layout (inside the seal):
//!
//! ```text
//! u32 json_len | json metadata (policy, labels, keys, config)
//! u32 par_len  | paragraph-store codec bytes
//! u32 doc_len  | document-store codec bytes
//! ```

use crate::engine::{DisclosureEngine, EngineConfig, SegmentKey};
use crate::middleware::{BrowserFlow, EnforcementMode, Warning};
use crate::short_secret::ShortSecret;
use browserflow_store::persist::write_atomic;
use browserflow_store::{
    codec, CodecError, PersistError, PersistOptions, RestoreReport, SealedBytes, SegmentId,
    StoreFormat, StoreKey, StoreOpenOptions, TierMode,
};
use browserflow_tdm::{Policy, SegmentLabel};
use std::fmt;
use std::path::Path;

/// File holding the sealed registry/policy metadata in a state directory.
const METADATA_FILE: &str = "state.bfmeta";
/// Subdirectory holding the paragraph store's sealed shards.
const PARAGRAPHS_DIR: &str = "paragraphs";
/// Subdirectory holding the document store's sealed shards.
const DOCUMENTS_DIR: &str = "documents";

/// Error restoring persisted middleware state.
#[derive(Debug)]
#[non_exhaustive]
pub enum StateError {
    /// The sealed envelope or a store blob was rejected.
    Codec(CodecError),
    /// The JSON metadata was malformed.
    Metadata(serde_json::Error),
    /// The payload structure was invalid (lengths out of range).
    Malformed,
    /// A state directory could not be read or written.
    Io(std::io::Error),
    /// The persistence layer refused the requested option combination.
    Unsupported(&'static str),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Codec(e) => write!(f, "store payload rejected: {e}"),
            StateError::Metadata(e) => write!(f, "metadata rejected: {e}"),
            StateError::Malformed => write!(f, "state payload is malformed"),
            StateError::Io(e) => write!(f, "state directory I/O error: {e}"),
            StateError::Unsupported(why) => write!(f, "unsupported persistence option: {why}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<CodecError> for StateError {
    fn from(e: CodecError) -> Self {
        StateError::Codec(e)
    }
}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

impl From<PersistError> for StateError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => StateError::Io(e),
            PersistError::Codec(e) => StateError::Codec(e),
            PersistError::Unsupported(why) => StateError::Unsupported(why),
        }
    }
}

/// Per-store [`RestoreReport`]s from [`BrowserFlow::load_from_dir`]: which
/// shards of each fingerprint store survived the restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRestoreReport {
    /// Shard outcome for the paragraph store.
    pub paragraphs: RestoreReport,
    /// Shard outcome for the document store.
    pub documents: RestoreReport,
}

impl StateRestoreReport {
    /// Whether every shard of both stores was restored.
    pub fn is_complete(&self) -> bool {
        self.paragraphs.is_complete() && self.documents.is_complete()
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Metadata {
    engine: EngineConfig,
    mode: ModeRepr,
    policy: Policy,
    keys: Vec<(SegmentKey, u64)>,
    labels: Vec<(u64, SegmentLabel)>,
    #[serde(default)]
    short_secrets: Vec<ShortSecret>,
    #[serde(default)]
    warnings: Vec<Warning>,
    /// Lineage graph + alert trail, as the deterministic snapshot bytes of
    /// [`crate::lineage::encode_snapshot`] (empty in pre-lineage states).
    #[serde(default)]
    lineage: Vec<u8>,
}

/// Serde-friendly enforcement-mode representation.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
enum ModeRepr {
    Advisory,
    Block,
    Encrypt,
}

impl From<EnforcementMode> for ModeRepr {
    fn from(mode: EnforcementMode) -> Self {
        match mode {
            EnforcementMode::Advisory => ModeRepr::Advisory,
            EnforcementMode::Block => ModeRepr::Block,
            EnforcementMode::Encrypt => ModeRepr::Encrypt,
        }
    }
}

impl From<ModeRepr> for EnforcementMode {
    fn from(mode: ModeRepr) -> Self {
        match mode {
            ModeRepr::Advisory => EnforcementMode::Advisory,
            ModeRepr::Block => EnforcementMode::Block,
            ModeRepr::Encrypt => EnforcementMode::Encrypt,
        }
    }
}

fn push_chunk(out: &mut Vec<u8>, chunk: &[u8]) {
    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    out.extend_from_slice(chunk);
}

fn read_chunk<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], StateError> {
    // The envelope is untrusted (sealed state files come off disk): both
    // the length prefix and the chunk body are taken through checked
    // arithmetic and `get`, so a truncated buffer fails closed with
    // `StateError::Malformed` instead of panicking.
    let mut take = |n: usize| -> Result<&'a [u8], StateError> {
        let end = pos.checked_add(n).ok_or(StateError::Malformed)?;
        let slice = bytes.get(*pos..end).ok_or(StateError::Malformed)?;
        *pos = end;
        Ok(slice)
    };
    let len_bytes = take(4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
    take(len)
}

impl BrowserFlow {
    fn metadata_snapshot(&self) -> Metadata {
        Metadata {
            engine: *self.engine().config(),
            mode: self.mode().into(),
            policy: self.policy().clone(),
            keys: self
                .engine()
                .key_map()
                .into_iter()
                .map(|(k, id)| (k, id.get()))
                .collect(),
            labels: self
                .labels_snapshot()
                .into_iter()
                .map(|(id, label)| (id.get(), label))
                .collect(),
            short_secrets: self.short_secrets_snapshot(),
            warnings: self.warnings(),
            lineage: self.lineage_snapshot(),
        }
    }

    fn from_metadata(
        metadata: Metadata,
        paragraphs: browserflow_store::FingerprintStore,
        documents: browserflow_store::FingerprintStore,
        key: StoreKey,
    ) -> Result<Self, StateError> {
        let engine = DisclosureEngine::from_parts(
            metadata.engine,
            paragraphs,
            documents,
            metadata
                .keys
                .into_iter()
                .map(|(k, id)| (k, SegmentId::new(id)))
                .collect(),
        );
        let mut flow = BrowserFlow::from_restored(
            engine,
            metadata.policy,
            metadata
                .labels
                .into_iter()
                .map(|(id, label)| (SegmentId::new(id), label))
                .collect(),
            metadata.mode.into(),
            key,
            metadata.short_secrets,
        );
        flow.restore_warnings(metadata.warnings);
        if !metadata.lineage.is_empty() {
            flow.restore_lineage(&metadata.lineage)
                .map_err(|_| StateError::Malformed)?;
        }
        Ok(flow)
    }

    /// Serialises the complete middleware state and seals it under the
    /// configured store key (a zero key is used if none was configured —
    /// set one via [`crate::BrowserFlowBuilder::store_key`] in production).
    /// The seal nonce is drawn from the process-wide counter, so repeated
    /// exports never reuse a keystream.
    pub fn export_sealed(&self) -> SealedBytes {
        let json = serde_json::to_vec(&self.metadata_snapshot()).expect("state always serialises");
        let mut payload = Vec::new();
        push_chunk(&mut payload, &json);
        push_chunk(
            &mut payload,
            &codec::encode(self.engine().paragraph_store())
                .expect("in-memory store fits the format"),
        );
        push_chunk(
            &mut payload,
            &codec::encode(self.engine().document_store())
                .expect("in-memory store fits the format"),
        );
        self.store_key_ref().seal_auto(&payload)
    }

    /// Restores a middleware instance exported with
    /// [`BrowserFlow::export_sealed`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on key mismatch, tampering, or a malformed
    /// payload.
    pub fn import_sealed(key: StoreKey, sealed: &SealedBytes) -> Result<Self, StateError> {
        let payload = key
            .unseal(sealed)
            .map_err(|e| StateError::Codec(CodecError::Sealed(e)))?;
        let mut pos = 0usize;
        let json = read_chunk(&payload, &mut pos)?;
        let par_bytes = read_chunk(&payload, &mut pos)?;
        let doc_bytes = read_chunk(&payload, &mut pos)?;
        if pos != payload.len() {
            return Err(StateError::Malformed);
        }
        let metadata: Metadata = serde_json::from_slice(json).map_err(StateError::Metadata)?;
        let paragraphs = codec::decode(par_bytes)?;
        let documents = codec::decode(doc_bytes)?;
        Self::from_metadata(metadata, paragraphs, documents, key)
    }

    /// Persists the complete middleware state to `dir` as a sealed,
    /// sharded directory: each fingerprint-store shard is its own
    /// atomically written file, and the registry/policy metadata lands
    /// last, so a crash at any point leaves a loadable snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] on filesystem failure and
    /// [`StateError::Codec`] if a store exceeds the format's length
    /// fields.
    pub fn persist_to_dir(&self, dir: &Path) -> Result<(), StateError> {
        let key = self.store_key_ref();
        let options = PersistOptions::sealed(key.clone());
        options.persist(self.engine().paragraph_store(), &dir.join(PARAGRAPHS_DIR))?;
        options.persist(self.engine().document_store(), &dir.join(DOCUMENTS_DIR))?;
        self.persist_metadata(dir)
    }

    /// Persists the complete middleware state to `dir` with both
    /// fingerprint stores written as plain v3 tiered directories, so the
    /// next [`BrowserFlow::load_from_dir`] maps their cold shards in
    /// place instead of decoding them — restart cost tracks the hot set,
    /// not the store size. The registry/policy metadata is still sealed
    /// into `state.bfmeta`, written last.
    ///
    /// Fingerprint records land on disk in the clear; prefer
    /// [`BrowserFlow::persist_to_dir`] when the store itself must be
    /// encrypted at rest.
    ///
    /// # Errors
    ///
    /// Same as [`BrowserFlow::persist_to_dir`].
    pub fn persist_tiered_to_dir(&self, dir: &Path) -> Result<(), StateError> {
        let options = PersistOptions::new().format(StoreFormat::V3);
        options.persist(self.engine().paragraph_store(), &dir.join(PARAGRAPHS_DIR))?;
        options.persist(self.engine().document_store(), &dir.join(DOCUMENTS_DIR))?;
        self.persist_metadata(dir)
    }

    fn persist_metadata(&self, dir: &Path) -> Result<(), StateError> {
        let key = self.store_key_ref();
        let json = serde_json::to_vec(&self.metadata_snapshot()).expect("state always serialises");
        write_atomic(&dir.join(METADATA_FILE), &key.seal_auto(&json).to_bytes())?;
        Ok(())
    }

    /// Loads a state directory written by [`BrowserFlow::persist_to_dir`]
    /// or [`BrowserFlow::persist_tiered_to_dir`], degrading gracefully:
    /// store shards that are torn or fail integrity are dropped and
    /// reported in the [`StateRestoreReport`] while every healthy shard
    /// loads (in parallel). Fingerprints in lost shards are simply no
    /// longer tracked — re-observing re-establishes them.
    ///
    /// Each store directory's layout is auto-detected: a plain manifest
    /// (tiered v3 snapshot) opens with its cold shards mapped in place
    /// ([`TierMode::Cold`]); a sealed manifest unseals under `key` as
    /// before.
    ///
    /// # Errors
    ///
    /// Fails hard when the metadata file or a store manifest is missing,
    /// will not unseal under `key`, or is malformed.
    pub fn load_from_dir(
        key: StoreKey,
        dir: &Path,
    ) -> Result<(Self, StateRestoreReport), StateError> {
        let wire = std::fs::read(dir.join(METADATA_FILE))?;
        let sealed =
            SealedBytes::from_bytes(&wire).map_err(|e| StateError::Codec(CodecError::Sealed(e)))?;
        let json = key
            .unseal(&sealed)
            .map_err(|e| StateError::Codec(CodecError::Sealed(e)))?;
        let metadata: Metadata = serde_json::from_slice(&json).map_err(StateError::Metadata)?;
        // The open options carry the key for sealed layouts and the cold
        // tier preference for plain v3 layouts; `open` dispatches on
        // whatever is actually on disk, so mixed-layout state roots work.
        let options = StoreOpenOptions::sealed(key.clone()).tier(TierMode::Cold);
        let (paragraphs, par_report) = options.open(&dir.join(PARAGRAPHS_DIR))?;
        let (documents, doc_report) = options.open(&dir.join(DOCUMENTS_DIR))?;
        let flow = Self::from_metadata(metadata, paragraphs, documents, key)?;
        Ok((
            flow,
            StateRestoreReport {
                paragraphs: par_report,
                documents: doc_report,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckRequest, DocKey, SegmentKey, UploadAction};
    use browserflow_tdm::{Service, Tag, TagSet, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    const SECRET: &str = "the confidential interview rubric awards extra points for \
                          candidates who ask incisive clarifying questions early";

    fn sample_flow() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([3u8; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        flow
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bf-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_roundtrip_preserves_decisions() {
        let flow = sample_flow();
        let before = flow
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(before.action, UploadAction::Block);

        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        let after = restored
            .check_one(&CheckRequest::paragraph("gdocs", "d2", 0, SECRET))
            .unwrap();
        assert_eq!(after.action, UploadAction::Block);
        assert_eq!(after.violations[0].source, before.violations[0].source);
        assert_eq!(restored.mode(), EnforcementMode::Block);
    }

    #[test]
    fn roundtrip_preserves_suppressions_and_audit() {
        let mut flow = sample_flow();
        let key = SegmentKey::paragraph(DocKey::new("itool", "eval"), 0);
        flow.suppress_tag(&key, &Tag::new("ti").unwrap(), &UserId::new("alice"), "ok")
            .unwrap();
        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // The suppression survives: the upload is now allowed.
        assert_eq!(
            restored
                .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Allow
        );
        assert_eq!(restored.policy().audit_log().len(), 1);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let flow = sample_flow();
        let sealed = flow.export_sealed();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            BrowserFlow::import_sealed(StoreKey::generate(&mut rng), &sealed),
            Err(StateError::Codec(CodecError::Sealed(_)))
        ));
    }

    #[test]
    fn truncated_envelope_fails_closed_for_every_prefix() {
        // The chunked envelope inside the sealed state file is untrusted
        // once the AEAD layer is peeled off. Re-seal every strict prefix
        // of a valid plaintext payload and prove the import path returns
        // a typed error for each — no length-prefix slice panic.
        let key = StoreKey::from_bytes([3u8; 32]);
        let flow = sample_flow();
        let payload = key.unseal(&flow.export_sealed()).unwrap();
        assert!(BrowserFlow::import_sealed(key.clone(), &key.seal_auto(&payload)).is_ok());
        for len in 0..payload.len() {
            let sealed = key.seal_auto(&payload[..len]);
            assert!(
                BrowserFlow::import_sealed(key.clone(), &sealed).is_err(),
                "import accepted a {len}-byte prefix of {}",
                payload.len()
            );
        }
    }

    #[test]
    fn hostile_chunk_length_fails_closed() {
        // A metadata chunk whose length prefix overflows the cursor (or
        // simply runs past the buffer) must surface `StateError::Malformed`.
        let key = StoreKey::from_bytes([3u8; 32]);
        for hostile in [u32::MAX, u32::MAX - 3, 1 << 30] {
            let mut payload = Vec::new();
            payload.extend_from_slice(&hostile.to_le_bytes());
            payload.extend_from_slice(b"tiny");
            assert!(matches!(
                BrowserFlow::import_sealed(key.clone(), &key.seal_auto(&payload)),
                Err(StateError::Malformed)
            ));
        }
        // Trailing garbage after three well-formed chunks is also rejected.
        let valid = key.unseal(&sample_flow().export_sealed()).unwrap();
        let mut padded = valid;
        padded.push(0);
        assert!(matches!(
            BrowserFlow::import_sealed(key.clone(), &key.seal_auto(&padded)),
            Err(StateError::Malformed)
        ));
    }

    #[test]
    fn restored_flow_keeps_allocating_fresh_segment_ids() {
        let flow = sample_flow();
        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // New observations must not collide with restored ids.
        let status = restored
            .observe_paragraph(&"gdocs".into(), "new-doc", 0, "fresh text here")
            .unwrap();
        let existing = restored
            .engine()
            .segment_id_readonly(&SegmentKey::paragraph(DocKey::new("itool", "eval"), 0))
            .unwrap();
        assert_ne!(status.segment, existing);
    }

    #[test]
    fn short_secrets_survive_restore() {
        let mut flow = sample_flow();
        flow.register_short_secret(&"itool".into(), "api-key", "Kx9#q2!z")
            .unwrap();
        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        assert_eq!(restored.short_secret_count(), 1);
        let decision = restored
            .check_one(&CheckRequest::paragraph(
                "gdocs",
                "d",
                0,
                "leaking kx9q2z now",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
    }

    #[test]
    fn warning_trail_survives_restore() {
        let flow = sample_flow();
        flow.check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(flow.warnings().len(), 1);
        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        assert_eq!(restored.warnings().len(), 1);
        assert_eq!(restored.warnings()[0].destination.as_str(), "gdocs");
    }

    #[test]
    fn lineage_graph_survives_restore_byte_for_byte() {
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([3u8; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .service(Service::new("wiki", "Wiki"))
            .build()
            .unwrap();
        // A two-hop covert chain: the itool secret lands in a gdocs draft
        // with extra framing (hop 1, observe — the draft becomes
        // authoritative for its own rendition), then the draft is uploaded
        // to wiki (hop 2, a violating check) — the sentinel raises an
        // alert referencing both hops.
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        let draft = format!(
            "{SECRET} — drafting notes: we should summarise this rubric for \
             the hiring committee and circulate before the next debrief"
        );
        flow.observe_paragraph(&"gdocs".into(), "draft", 0, &draft)
            .unwrap();
        flow.check_one(&CheckRequest::paragraph("wiki", "page", 0, &draft))
            .unwrap();
        assert!(!flow.lineage().is_empty());
        assert!(!flow.alerts().is_empty());
        let snapshot = flow.lineage_snapshot();

        let sealed = flow.export_sealed();
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // Byte-for-byte: the restored instance reproduces the exact
        // snapshot, so drain → restore loses nothing and changes nothing.
        assert_eq!(restored.lineage_snapshot(), snapshot);
        assert_eq!(restored.lineage().edges(), flow.lineage().edges());
        assert_eq!(restored.alerts(), flow.alerts());

        // The directory layout round-trips identically.
        let dir = temp_dir("lineage");
        flow.persist_to_dir(&dir).unwrap();
        let (from_dir, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([3u8; 32]), &dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(from_dir.lineage_snapshot(), snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lineage_snapshot_fails_closed_on_import() {
        let flow = sample_flow();
        flow.observe_paragraph(&"gdocs".into(), "draft", 0, SECRET)
            .unwrap();
        // Build a metadata snapshot with a damaged lineage blob and seal it
        // into an otherwise valid envelope: import must reject it as
        // malformed state, not panic or silently drop the graph.
        let mut metadata = flow.metadata_snapshot();
        assert!(!metadata.lineage.is_empty());
        metadata.lineage[10] ^= 0x5A;
        let json = serde_json::to_vec(&metadata).unwrap();
        let mut payload = Vec::new();
        push_chunk(&mut payload, &json);
        push_chunk(
            &mut payload,
            &codec::encode(flow.engine().paragraph_store()).unwrap(),
        );
        push_chunk(
            &mut payload,
            &codec::encode(flow.engine().document_store()).unwrap(),
        );
        let sealed = StoreKey::from_bytes([3u8; 32]).seal_auto(&payload);
        assert!(matches!(
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed),
            Err(StateError::Malformed)
        ));
    }

    #[test]
    fn consecutive_exports_never_share_a_ciphertext() {
        // Nonce-reuse regression: the old API sealed every export under a
        // caller-chosen nonce; two exports with the same nonce handed an
        // attacker the XOR of the plaintexts. seal_auto must differ.
        let flow = sample_flow();
        let first = flow.export_sealed();
        let second = flow.export_sealed();
        assert_ne!(first.nonce(), second.nonce());
        assert_ne!(first.ciphertext(), second.ciphertext());
        // Both restore fine.
        assert!(BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &first).is_ok());
        assert!(BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &second).is_ok());
    }

    #[test]
    fn state_directory_roundtrip() {
        let dir = temp_dir("roundtrip");
        let flow = sample_flow();
        flow.persist_to_dir(&dir).unwrap();
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([3u8; 32]), &dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(
            restored
                .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Block
        );
        assert_eq!(restored.mode(), EnforcementMode::Block);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_state_directory_roundtrip_maps_cold_shards() {
        let dir = temp_dir("tiered");
        let flow = sample_flow();
        flow.persist_tiered_to_dir(&dir).unwrap();
        // The store directories hold plain v3 manifests (mapped cold on
        // load); the metadata stays sealed.
        assert!(dir.join(PARAGRAPHS_DIR).join("manifest.bfm").is_file());
        assert!(dir.join(METADATA_FILE).is_file());
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([3u8; 32]), &dir).unwrap();
        assert!(report.is_complete());
        // The fingerprints are served from cold (mmap'd) shard files.
        let stats = restored.engine().paragraph_store().stats();
        assert!(stats.cold_shards > 0, "no cold shards after tiered load");
        assert_eq!(stats.cold_segments, 1);
        assert_eq!(
            restored
                .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Block
        );
        assert_eq!(restored.mode(), EnforcementMode::Block);
        // Metadata under the wrong key is still rejected outright.
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            BrowserFlow::load_from_dir(StoreKey::generate(&mut rng), &dir),
            Err(StateError::Codec(CodecError::Sealed(_)))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_layout_state_root_auto_detects_per_store() {
        // A sealed snapshot re-persisted tiered (or vice versa) must keep
        // loading: detection is per store directory, not per state root.
        let dir = temp_dir("mixed");
        let flow = sample_flow();
        flow.persist_to_dir(&dir).unwrap();
        // Overwrite just the paragraph store with a tiered layout.
        std::fs::remove_dir_all(dir.join(PARAGRAPHS_DIR)).unwrap();
        PersistOptions::new()
            .format(StoreFormat::V3)
            .persist(flow.engine().paragraph_store(), &dir.join(PARAGRAPHS_DIR))
            .unwrap();
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([3u8; 32]), &dir).unwrap();
        assert!(report.is_complete());
        assert!(restored.engine().paragraph_store().stats().cold_shards > 0);
        assert_eq!(restored.engine().document_store().stats().cold_shards, 0);
        assert_eq!(
            restored
                .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Block
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_directory_with_torn_shard_degrades_gracefully() {
        let dir = temp_dir("torn");
        let flow = sample_flow();
        flow.persist_to_dir(&dir).unwrap();
        // Tear one paragraph-store shard file (truncate its sealed bytes).
        let shards = dir.join(PARAGRAPHS_DIR);
        let mut torn = false;
        for entry in std::fs::read_dir(&shards).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("shard-") {
                let bytes = std::fs::read(&path).unwrap();
                if bytes.len() > 40 {
                    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
                    torn = true;
                    break;
                }
            }
        }
        assert!(torn, "found a shard with sealed content to tear");
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([3u8; 32]), &dir).unwrap();
        assert_eq!(report.paragraphs.lost_shards.len(), 1);
        assert!(report.documents.is_complete());
        assert!(!report.is_complete());
        // The flow still works; the lost fingerprints are just untracked.
        restored
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_is_rejected_for_directories() {
        let dir = temp_dir("wrongkey");
        let flow = sample_flow();
        flow.persist_to_dir(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            BrowserFlow::load_from_dir(StoreKey::generate(&mut rng), &dir),
            Err(StateError::Codec(CodecError::Sealed(_)))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
