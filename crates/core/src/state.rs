//! Persistence of the full middleware state.
//!
//! §4.4 requires that long-term fingerprint storage be encrypted at rest.
//! [`BrowserFlow::export_sealed`] serialises the complete middleware state
//! — policy (including the audit log), segment labels, the key registry
//! and both fingerprint stores — and seals it under the store key, so a
//! deployment survives browser restarts without ever writing plaintext
//! fingerprints to disk.
//!
//! Wire layout (inside the sealed envelope):
//!
//! ```text
//! u32 json_len | json metadata (policy, labels, keys, config)
//! u32 par_len  | paragraph-store codec bytes
//! u32 doc_len  | document-store codec bytes
//! ```

use crate::engine::{DisclosureEngine, EngineConfig, SegmentKey};
use crate::middleware::{BrowserFlow, EnforcementMode, Warning};
use crate::short_secret::ShortSecret;
use browserflow_store::{codec, CodecError, SealedBytes, SegmentId, StoreKey};
use browserflow_tdm::{Policy, SegmentLabel};
use std::fmt;

/// Error restoring persisted middleware state.
#[derive(Debug)]
#[non_exhaustive]
pub enum StateError {
    /// The sealed envelope or a store blob was rejected.
    Codec(CodecError),
    /// The JSON metadata was malformed.
    Metadata(serde_json::Error),
    /// The payload structure was invalid (lengths out of range).
    Malformed,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Codec(e) => write!(f, "store payload rejected: {e}"),
            StateError::Metadata(e) => write!(f, "metadata rejected: {e}"),
            StateError::Malformed => write!(f, "state payload is malformed"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<CodecError> for StateError {
    fn from(e: CodecError) -> Self {
        StateError::Codec(e)
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Metadata {
    engine: EngineConfig,
    mode: ModeRepr,
    policy: Policy,
    keys: Vec<(SegmentKey, u64)>,
    labels: Vec<(u64, SegmentLabel)>,
    seal_nonce: u64,
    #[serde(default)]
    short_secrets: Vec<ShortSecret>,
    #[serde(default)]
    warnings: Vec<Warning>,
}

/// Serde-friendly enforcement-mode representation.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
enum ModeRepr {
    Advisory,
    Block,
    Encrypt,
}

impl From<EnforcementMode> for ModeRepr {
    fn from(mode: EnforcementMode) -> Self {
        match mode {
            EnforcementMode::Advisory => ModeRepr::Advisory,
            EnforcementMode::Block => ModeRepr::Block,
            EnforcementMode::Encrypt => ModeRepr::Encrypt,
        }
    }
}

impl From<ModeRepr> for EnforcementMode {
    fn from(mode: ModeRepr) -> Self {
        match mode {
            ModeRepr::Advisory => EnforcementMode::Advisory,
            ModeRepr::Block => EnforcementMode::Block,
            ModeRepr::Encrypt => EnforcementMode::Encrypt,
        }
    }
}

fn push_chunk(out: &mut Vec<u8>, chunk: &[u8]) {
    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    out.extend_from_slice(chunk);
}

fn read_chunk<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], StateError> {
    if *pos + 4 > bytes.len() {
        return Err(StateError::Malformed);
    }
    let len = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap()) as usize;
    *pos += 4;
    if *pos + len > bytes.len() {
        return Err(StateError::Malformed);
    }
    let chunk = &bytes[*pos..*pos + len];
    *pos += len;
    Ok(chunk)
}

impl BrowserFlow {
    /// Serialises the complete middleware state and seals it under the
    /// configured store key (a zero key is used if none was configured —
    /// set one via [`crate::BrowserFlowBuilder::store_key`] in production).
    pub fn export_sealed(&self, nonce: u64) -> SealedBytes {
        let metadata = Metadata {
            engine: *self.engine().config(),
            mode: self.mode().into(),
            policy: self.policy().clone(),
            keys: self
                .engine()
                .key_map()
                .into_iter()
                .map(|(k, id)| (k, id.get()))
                .collect(),
            labels: self
                .labels_snapshot()
                .into_iter()
                .map(|(id, label)| (id.get(), label))
                .collect(),
            seal_nonce: self.seal_nonce_value(),
            short_secrets: self.short_secrets_snapshot(),
            warnings: self.warnings(),
        };
        let json = serde_json::to_vec(&metadata).expect("state always serialises");
        let mut payload = Vec::new();
        push_chunk(&mut payload, &json);
        push_chunk(
            &mut payload,
            &codec::encode(self.engine().paragraph_store()),
        );
        push_chunk(&mut payload, &codec::encode(self.engine().document_store()));
        self.store_key_ref().seal(nonce, &payload)
    }

    /// Restores a middleware instance exported with
    /// [`BrowserFlow::export_sealed`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on key mismatch, tampering, or a malformed
    /// payload.
    pub fn import_sealed(key: StoreKey, sealed: &SealedBytes) -> Result<Self, StateError> {
        let payload = key
            .unseal(sealed)
            .map_err(|e| StateError::Codec(CodecError::Sealed(e)))?;
        let mut pos = 0usize;
        let json = read_chunk(&payload, &mut pos)?;
        let par_bytes = read_chunk(&payload, &mut pos)?;
        let doc_bytes = read_chunk(&payload, &mut pos)?;
        if pos != payload.len() {
            return Err(StateError::Malformed);
        }
        let metadata: Metadata = serde_json::from_slice(json).map_err(StateError::Metadata)?;
        let paragraphs = codec::decode(par_bytes)?;
        let documents = codec::decode(doc_bytes)?;
        let engine = DisclosureEngine::from_parts(
            metadata.engine,
            paragraphs,
            documents,
            metadata
                .keys
                .into_iter()
                .map(|(k, id)| (k, SegmentId::new(id)))
                .collect(),
        );
        let mut flow = BrowserFlow::from_restored(
            engine,
            metadata.policy,
            metadata
                .labels
                .into_iter()
                .map(|(id, label)| (SegmentId::new(id), label))
                .collect(),
            metadata.mode.into(),
            key,
            metadata.seal_nonce,
            metadata.short_secrets,
        );
        flow.restore_warnings(metadata.warnings);
        Ok(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckRequest, DocKey, SegmentKey, UploadAction};
    use browserflow_tdm::{Service, Tag, TagSet, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SECRET: &str = "the confidential interview rubric awards extra points for \
                          candidates who ask incisive clarifying questions early";

    fn sample_flow() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([3u8; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap();
        flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
            .unwrap();
        flow
    }

    #[test]
    fn export_import_roundtrip_preserves_decisions() {
        let flow = sample_flow();
        let before = flow
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(before.action, UploadAction::Block);

        let sealed = flow.export_sealed(1);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        let after = restored
            .check_one(&CheckRequest::paragraph("gdocs", "d2", 0, SECRET))
            .unwrap();
        assert_eq!(after.action, UploadAction::Block);
        assert_eq!(after.violations[0].source, before.violations[0].source);
        assert_eq!(restored.mode(), EnforcementMode::Block);
    }

    #[test]
    fn roundtrip_preserves_suppressions_and_audit() {
        let mut flow = sample_flow();
        let key = SegmentKey::paragraph(DocKey::new("itool", "eval"), 0);
        flow.suppress_tag(&key, &Tag::new("ti").unwrap(), &UserId::new("alice"), "ok")
            .unwrap();
        let sealed = flow.export_sealed(2);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // The suppression survives: the upload is now allowed.
        assert_eq!(
            restored
                .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
                .unwrap()
                .action,
            UploadAction::Allow
        );
        assert_eq!(restored.policy().audit_log().len(), 1);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let flow = sample_flow();
        let sealed = flow.export_sealed(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            BrowserFlow::import_sealed(StoreKey::generate(&mut rng), &sealed),
            Err(StateError::Codec(CodecError::Sealed(_)))
        ));
    }

    #[test]
    fn restored_flow_keeps_allocating_fresh_segment_ids() {
        let flow = sample_flow();
        let sealed = flow.export_sealed(4);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // New observations must not collide with restored ids.
        let status = restored
            .observe_paragraph(&"gdocs".into(), "new-doc", 0, "fresh text here")
            .unwrap();
        let existing = restored
            .engine()
            .segment_id_readonly(&SegmentKey::paragraph(DocKey::new("itool", "eval"), 0))
            .unwrap();
        assert_ne!(status.segment, existing);
    }

    #[test]
    fn short_secrets_survive_restore() {
        let mut flow = sample_flow();
        flow.register_short_secret(&"itool".into(), "api-key", "Kx9#q2!z")
            .unwrap();
        let sealed = flow.export_sealed(6);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        assert_eq!(restored.short_secret_count(), 1);
        let decision = restored
            .check_one(&CheckRequest::paragraph(
                "gdocs",
                "d",
                0,
                "leaking kx9q2z now",
            ))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
    }

    #[test]
    fn warning_trail_survives_restore() {
        let flow = sample_flow();
        flow.check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(flow.warnings().len(), 1);
        let sealed = flow.export_sealed(7);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        assert_eq!(restored.warnings().len(), 1);
        assert_eq!(restored.warnings()[0].destination.as_str(), "gdocs");
    }

    #[test]
    fn seal_nonce_continues_after_restore() {
        let flow = sample_flow();
        let first = flow.seal_body("x");
        assert!(first.starts_with("bf-sealed:0:"));
        let sealed = flow.export_sealed(5);
        let restored =
            BrowserFlow::import_sealed(StoreKey::from_bytes([3u8; 32]), &sealed).unwrap();
        // Nonce must not be reused after the restart.
        let next = restored.seal_body("y");
        assert!(next.starts_with("bf-sealed:1:"), "{next}");
    }
}
