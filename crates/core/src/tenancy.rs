//! Multi-tenant admission over the asynchronous pipeline (§5 deployment).
//!
//! A disclosure daemon serves many users from one process. Each tenant
//! owns an isolated [`BrowserFlow`] — its own stores, labels and audit
//! trail — behind its own [`AsyncDecider`], so one tenant's fingerprints
//! can never match another tenant's uploads and one tenant's queue
//! pressure never stalls another tenant's keystrokes.
//!
//! The layer this module adds is *admission control*: every check enters
//! through [`Tenant::try_check`], which enforces a per-tenant in-flight
//! quota and converts the decider's bounded-queue refusal
//! ([`TrySubmitError::QueueFull`]) into a typed [`AdmissionError`]. The
//! caller (the `bfd` daemon front-end) turns that into a structured
//! backpressure reply — overload is *reported*, never silently dropped.
//!
//! [`TenantRegistry::drain_all`] implements graceful shutdown: each
//! decider drains its queue ([`AsyncDecider::shutdown`]), pending callers
//! get real decisions, and the recovered [`BrowserFlow`] is persisted as
//! a sealed state directory per tenant.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::asynchronous::{
    AsyncDecider, DeciderConfig, DeciderError, PendingBatch, PendingDecision, PipelineStats,
    TrySubmitError,
};
use crate::middleware::BrowserFlow;
use crate::request::CheckRequest;
use crate::state::StateError;

// --- Tenant identity ------------------------------------------------------

/// A validated tenant name.
///
/// Tenant ids become directory names under the daemon's state root and
/// appear verbatim in audit output, so the alphabet is restricted to
/// `[A-Za-z0-9._-]`, the first byte must be alphanumeric, and the length
/// is capped at 64 bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

/// Why a tenant name was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenantIdError {
    /// The name was empty.
    Empty,
    /// The name exceeded 64 bytes.
    TooLong,
    /// The name contained a byte outside `[A-Za-z0-9._-]`, or did not
    /// start with an alphanumeric byte.
    BadCharacter,
}

impl fmt::Display for TenantIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("tenant id is empty"),
            Self::TooLong => f.write_str("tenant id exceeds 64 bytes"),
            Self::BadCharacter => {
                f.write_str("tenant id must start alphanumeric and use only [A-Za-z0-9._-]")
            }
        }
    }
}

impl std::error::Error for TenantIdError {}

impl TenantId {
    /// Validates and wraps a tenant name.
    ///
    /// # Errors
    ///
    /// Returns [`TenantIdError`] when the name is empty, longer than 64
    /// bytes, or contains a byte outside the directory-safe alphabet.
    pub fn new(name: impl Into<String>) -> Result<Self, TenantIdError> {
        let name = name.into();
        if name.is_empty() {
            return Err(TenantIdError::Empty);
        }
        if name.len() > 64 {
            return Err(TenantIdError::TooLong);
        }
        let mut bytes = name.bytes();
        let first = bytes.next().expect("checked non-empty");
        if !first.is_ascii_alphanumeric() {
            return Err(TenantIdError::BadCharacter);
        }
        if !bytes.all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')) {
            return Err(TenantIdError::BadCharacter);
        }
        Ok(Self(name))
    }

    /// The validated name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for TenantId {
    type Err = TenantIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::new(s)
    }
}

// --- Admission ------------------------------------------------------------

/// Per-tenant pipeline tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Maximum checks a tenant may have in flight (admitted but not yet
    /// decided) before admission refuses with
    /// [`AdmissionError::QuotaExceeded`].
    pub max_in_flight: usize,
    /// Tunables for the tenant's private [`AsyncDecider`].
    pub decider: DeciderConfig,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            decider: DeciderConfig::default(),
        }
    }
}

/// Why a request was refused at the admission boundary.
///
/// Every variant is *backpressure, not loss*: the caller learns exactly
/// why the check did not run and can retry; nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The tenant is at its in-flight quota.
    QuotaExceeded {
        /// Checks currently in flight for this tenant.
        in_flight: usize,
        /// The tenant's quota.
        max_in_flight: usize,
    },
    /// The tenant's decider queue is at capacity
    /// ([`TrySubmitError::QueueFull`]).
    QueueFull {
        /// The decider's configured queue capacity.
        queue_capacity: usize,
    },
    /// The tenant is draining (or drained) and accepts no new work.
    Draining,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QuotaExceeded {
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "tenant quota exceeded: {in_flight} of {max_in_flight} checks in flight"
            ),
            Self::QueueFull { queue_capacity } => {
                write!(f, "tenant queue full (capacity {queue_capacity})")
            }
            Self::Draining => f.write_str("tenant is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// An admitted check's slot in the tenant's in-flight accounting.
///
/// Dropping the permit releases the slot; hold it until the decision has
/// been delivered (or abandoned) so the quota reflects real outstanding
/// work.
#[derive(Debug)]
pub struct InFlightPermit {
    in_flight: Arc<AtomicUsize>,
}

impl InFlightPermit {
    fn acquire(in_flight: &Arc<AtomicUsize>, max_in_flight: usize) -> Result<Self, AdmissionError> {
        let mut current = in_flight.load(Ordering::Relaxed);
        loop {
            if current >= max_in_flight {
                return Err(AdmissionError::QuotaExceeded {
                    in_flight: current,
                    max_in_flight,
                });
            }
            match in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(Self {
                        in_flight: Arc::clone(in_flight),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for InFlightPermit {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

// --- Tenant ---------------------------------------------------------------

/// One tenant: an isolated [`BrowserFlow`] behind its own decider, plus
/// the admission state guarding it.
pub struct Tenant {
    id: TenantId,
    config: TenantConfig,
    decider: RwLock<Option<AsyncDecider>>,
    in_flight: Arc<AtomicUsize>,
}

impl Tenant {
    fn spawn(id: TenantId, flow: BrowserFlow, config: TenantConfig) -> Self {
        Self {
            id,
            config,
            decider: RwLock::new(Some(AsyncDecider::spawn_with(flow, config.decider))),
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The tenant's validated id.
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// The tenant's admission configuration.
    pub fn config(&self) -> TenantConfig {
        self.config
    }

    /// Checks currently admitted but not yet released.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Admits a check: quota first, then the decider's bounded queue.
    ///
    /// On success the caller holds both the pending decision and the
    /// in-flight permit; the permit must outlive the wait.
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the quota or queue refuses — the
    /// request has *not* been enqueued and the caller must reply with
    /// backpressure, not drop the check on the floor.
    pub fn try_check(
        &self,
        request: CheckRequest<'_>,
    ) -> Result<(PendingBatch, InFlightPermit), AdmissionError> {
        let guard = self.decider.read();
        let decider = guard.as_ref().ok_or(AdmissionError::Draining)?;
        let permit = InFlightPermit::acquire(&self.in_flight, self.config.max_in_flight)?;
        match decider.try_submit(request) {
            Ok(batch) => Ok((batch, permit)),
            Err(TrySubmitError::QueueFull) => Err(AdmissionError::QueueFull {
                queue_capacity: self.config.decider.queue_capacity,
            }),
            Err(TrySubmitError::Closed) => Err(AdmissionError::Draining),
        }
    }

    /// Admits a coalescing keystroke check (same quota and queue gates as
    /// [`Tenant::try_check`]; superseded keystrokes release their permits
    /// when the caller drops them).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the quota or queue refuses.
    pub fn try_keystroke(
        &self,
        service: impl Into<browserflow_tdm::ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<(PendingDecision, InFlightPermit), AdmissionError> {
        let guard = self.decider.read();
        let decider = guard.as_ref().ok_or(AdmissionError::Draining)?;
        let permit = InFlightPermit::acquire(&self.in_flight, self.config.max_in_flight)?;
        match decider.submit_keystroke(service.into(), document.into(), index, text.into()) {
            Ok(pending) => Ok((pending, permit)),
            Err(TrySubmitError::QueueFull) => Err(AdmissionError::QueueFull {
                queue_capacity: self.config.decider.queue_capacity,
            }),
            Err(TrySubmitError::Closed) => Err(AdmissionError::Draining),
        }
    }

    /// Observes a paragraph (stores its fingerprint) on the tenant's
    /// worker, waiting for completion.
    ///
    /// # Errors
    ///
    /// [`DeciderError::Closed`] when the tenant is draining; otherwise
    /// whatever the pipeline reports.
    pub fn observe(
        &self,
        service: impl Into<browserflow_tdm::ServiceId>,
        document: impl Into<String>,
        index: usize,
        text: impl Into<String>,
    ) -> Result<(), DeciderError> {
        let guard = self.decider.read();
        let decider = guard.as_ref().ok_or(DeciderError::Closed)?;
        decider.observe(service.into(), document.into(), index, text.into())
    }

    /// Bulk-ingests a document's paragraph slots on the tenant's worker
    /// in one queue round-trip
    /// ([`AsyncDecider::observe_batch`](crate::AsyncDecider::observe_batch)),
    /// waiting for completion. Returns the number of paragraphs observed.
    ///
    /// # Errors
    ///
    /// [`DeciderError::Closed`] when the tenant is draining; otherwise
    /// whatever the pipeline reports.
    pub fn observe_batch(
        &self,
        service: impl Into<browserflow_tdm::ServiceId>,
        document: impl Into<String>,
        paragraphs: Vec<(usize, String)>,
    ) -> Result<usize, DeciderError> {
        let guard = self.decider.read();
        let decider = guard.as_ref().ok_or(DeciderError::Closed)?;
        decider.observe_batch(service.into(), document.into(), paragraphs)
    }

    /// Runs a read-only closure against the tenant's [`BrowserFlow`] on
    /// its worker thread, in queue order with the pending checks, and
    /// returns the closure's result.
    ///
    /// This is the daemon's inspection hook: lineage queries, alert
    /// listings and background snapshots all go through here so they see
    /// a consistent flow without draining the tenant.
    ///
    /// # Errors
    ///
    /// [`DeciderError::Closed`] when the tenant is draining.
    pub fn with_flow<T: Send + 'static>(
        &self,
        f: impl FnOnce(&BrowserFlow) -> T + Send + 'static,
    ) -> Result<T, DeciderError> {
        let guard = self.decider.read();
        let decider = guard.as_ref().ok_or(DeciderError::Closed)?;
        decider.with_flow(f)
    }

    /// Persists the tenant's current state to `dir` *without* draining:
    /// the snapshot runs on the worker thread in queue order, so it is a
    /// consistent cut, and the tenant keeps serving afterwards.
    ///
    /// # Errors
    ///
    /// [`StateError::Unsupported`] when the tenant is draining; otherwise
    /// whatever persistence reports.
    pub fn snapshot_to(&self, dir: &Path, tiered: bool) -> Result<(), StateError> {
        let dir = dir.to_path_buf();
        self.with_flow(move |flow| persist_tenant(flow, &dir, tiered))
            .map_err(|_| StateError::Unsupported("tenant is draining"))?
    }

    /// A snapshot of the tenant's pipeline counters, or `None` once the
    /// tenant has drained.
    pub fn stats(&self) -> Option<PipelineStats> {
        self.decider.read().as_ref().map(AsyncDecider::stats)
    }

    /// Takes the decider out of the tenant (subsequent admissions see
    /// [`AdmissionError::Draining`]) and drains it gracefully.
    fn drain(&self) -> Option<(PipelineStats, Result<BrowserFlow, DeciderError>)> {
        let decider = self.decider.write().take()?;
        let stats = decider.stats();
        Some((stats, decider.shutdown()))
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("in_flight", &self.in_flight())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

// --- Registry -------------------------------------------------------------

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A tenant with this id already exists.
    DuplicateTenant(TenantId),
    /// No tenant with this id exists.
    UnknownTenant(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateTenant(id) => write!(f, "tenant {id} already exists"),
            Self::UnknownTenant(name) => write!(f, "no tenant named {name}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// What happened to one tenant during [`TenantRegistry::drain_all`].
#[derive(Debug)]
pub struct TenantDrainReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Final pipeline counters at the moment the drain began.
    pub stats: PipelineStats,
    /// Where the tenant's sealed state directory was written, when a
    /// state root was supplied and persistence succeeded.
    pub persisted_to: Option<PathBuf>,
    /// The first error hit while draining or persisting, if any. The
    /// drain continues past failures so every tenant gets its chance.
    pub error: Option<String>,
}

/// The daemon's tenant table: id → isolated pipeline.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: RwLock<HashMap<TenantId, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant around `flow`, spawning its private decider.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateTenant`] if the id is taken.
    pub fn create(
        &self,
        id: TenantId,
        flow: BrowserFlow,
        config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        let mut tenants = self.tenants.write();
        if tenants.contains_key(&id) {
            return Err(RegistryError::DuplicateTenant(id));
        }
        let tenant = Arc::new(Tenant::spawn(id.clone(), flow, config));
        tenants.insert(id, Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks a tenant up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        let id = TenantId::new(name).ok()?;
        self.tenants.read().get(&id).cloned()
    }

    /// All tenant ids, sorted.
    pub fn list(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    /// Drains every tenant: queues finish ([`AsyncDecider::shutdown`]),
    /// pending callers get decisions, and — when `state_root` is given —
    /// each recovered [`BrowserFlow`] is persisted to
    /// `state_root/<tenant-id>` as a sealed state directory.
    ///
    /// Failures are per-tenant and recorded in the reports; one tenant's
    /// broken persistence never aborts another tenant's drain.
    pub fn drain_all(&self, state_root: Option<&Path>) -> Vec<TenantDrainReport> {
        self.drain_all_with(state_root, false)
    }

    /// Like [`TenantRegistry::drain_all`], but when `tiered` is set each
    /// tenant's fingerprint stores are persisted as plain v3 tiered
    /// directories ([`BrowserFlow::persist_tiered_to_dir`]), so the next
    /// daemon bind maps the cold shards in place instead of decoding
    /// every fingerprint up front.
    pub fn drain_all_with(
        &self,
        state_root: Option<&Path>,
        tiered: bool,
    ) -> Vec<TenantDrainReport> {
        let tenants: Vec<Arc<Tenant>> = {
            let mut table = self.tenants.write();
            let mut entries: Vec<_> = table.drain().map(|(_, tenant)| tenant).collect();
            entries.sort_by(|a, b| a.id.cmp(&b.id));
            entries
        };
        tenants
            .into_iter()
            .filter_map(|tenant| {
                let (stats, flow) = tenant.drain()?;
                let mut report = TenantDrainReport {
                    tenant: tenant.id.clone(),
                    stats,
                    persisted_to: None,
                    error: None,
                };
                match flow {
                    Ok(flow) => {
                        if let Some(root) = state_root {
                            let dir = root.join(tenant.id.as_str());
                            match persist_tenant(&flow, &dir, tiered) {
                                Ok(()) => report.persisted_to = Some(dir),
                                Err(e) => report.error = Some(e.to_string()),
                            }
                        }
                    }
                    Err(e) => report.error = Some(e.to_string()),
                }
                Some(report)
            })
            .collect()
    }

    /// Snapshots every live tenant to `state_root/<tenant-id>` *without*
    /// draining anyone: each snapshot runs on that tenant's worker in
    /// queue order, so every cut is internally consistent and service
    /// continues uninterrupted.
    ///
    /// Tenants that are mid-drain are skipped (their drain persists them).
    /// Failures are per-tenant; one tenant's broken persistence never
    /// blocks another's snapshot.
    pub fn snapshot_all_with(
        &self,
        state_root: &Path,
        tiered: bool,
    ) -> Vec<(TenantId, Result<PathBuf, StateError>)> {
        let tenants: Vec<Arc<Tenant>> = {
            let table = self.tenants.read();
            let mut entries: Vec<_> = table.values().cloned().collect();
            entries.sort_by(|a, b| a.id.cmp(&b.id));
            entries
        };
        tenants
            .into_iter()
            .filter_map(|tenant| {
                let dir = state_root.join(tenant.id.as_str());
                match tenant.snapshot_to(&dir, tiered) {
                    Ok(()) => Some((tenant.id.clone(), Ok(dir))),
                    Err(StateError::Unsupported(_)) => None,
                    Err(e) => Some((tenant.id.clone(), Err(e))),
                }
            })
            .collect()
    }
}

fn persist_tenant(flow: &BrowserFlow, dir: &Path, tiered: bool) -> Result<(), StateError> {
    std::fs::create_dir_all(dir)?;
    if tiered {
        flow.persist_tiered_to_dir(dir)
    } else {
        flow.persist_to_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::{EnforcementMode, UploadAction};
    use browserflow_store::StoreKey;
    use browserflow_tdm::{Service, Tag, TagSet};

    const SECRET: &str = "a long enough confidential paragraph about interview scoring \
                          criteria to produce a solid fingerprint for matching";

    fn flow() -> BrowserFlow {
        let ti = Tag::new("ti").unwrap();
        BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([5u8; 32]))
            .service(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([ti.clone()]))
                    .with_confidentiality(TagSet::from_iter([ti])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()
            .unwrap()
    }

    fn tid(name: &str) -> TenantId {
        TenantId::new(name).unwrap()
    }

    #[test]
    fn tenant_id_validation() {
        assert!(TenantId::new("alice").is_ok());
        assert!(TenantId::new("team-a.prod_2").is_ok());
        assert_eq!(TenantId::new(""), Err(TenantIdError::Empty));
        assert_eq!(TenantId::new("a".repeat(65)), Err(TenantIdError::TooLong));
        assert_eq!(TenantId::new("../etc"), Err(TenantIdError::BadCharacter));
        assert_eq!(TenantId::new("-dash"), Err(TenantIdError::BadCharacter));
        assert_eq!(TenantId::new("a/b"), Err(TenantIdError::BadCharacter));
        assert_eq!(TenantId::new("a b"), Err(TenantIdError::BadCharacter));
    }

    #[test]
    fn tenants_are_isolated() {
        let registry = TenantRegistry::new();
        let alice = registry
            .create(tid("alice"), flow(), TenantConfig::default())
            .unwrap();
        let bob = registry
            .create(tid("bob"), flow(), TenantConfig::default())
            .unwrap();

        // Alice's secret is observed only in Alice's store.
        alice.observe("itool", "eval", 0, SECRET).unwrap();

        let (pending, _permit) = alice
            .try_check(CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        let timed = pending.wait().unwrap();
        assert_eq!(timed.decisions[0].action, UploadAction::Block);

        // Bob uploading the same text sees nothing: his store never saw it.
        let (pending, _permit) = bob
            .try_check(CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        let timed = pending.wait().unwrap();
        assert_eq!(timed.decisions[0].action, UploadAction::Allow);
    }

    #[test]
    fn duplicate_tenant_is_refused() {
        let registry = TenantRegistry::new();
        registry
            .create(tid("alice"), flow(), TenantConfig::default())
            .unwrap();
        assert!(matches!(
            registry.create(tid("alice"), flow(), TenantConfig::default()),
            Err(RegistryError::DuplicateTenant(_))
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn quota_refuses_with_structured_backpressure() {
        let registry = TenantRegistry::new();
        let tenant = registry
            .create(
                tid("alice"),
                flow(),
                TenantConfig {
                    max_in_flight: 2,
                    ..TenantConfig::default()
                },
            )
            .unwrap();

        // In-flight accounting is permit-based: the two admitted checks
        // occupy quota slots until *we* release their permits, however
        // fast the worker replies.
        let a = tenant
            .try_check(CheckRequest::paragraph("gdocs", "d", 0, "first"))
            .unwrap();
        let b = tenant
            .try_check(CheckRequest::paragraph("gdocs", "d", 1, "second"))
            .unwrap();
        assert_eq!(tenant.in_flight(), 2);

        let refused = tenant
            .try_check(CheckRequest::paragraph("gdocs", "d", 2, "text"))
            .unwrap_err();
        assert_eq!(
            refused,
            AdmissionError::QuotaExceeded {
                in_flight: 2,
                max_in_flight: 2
            }
        );

        // Releasing a permit frees the slot.
        let (batch, permit) = a;
        batch.wait().unwrap();
        drop(permit);
        drop(b);
        assert_eq!(tenant.in_flight(), 0);
        tenant
            .try_check(CheckRequest::paragraph("gdocs", "d", 2, "text"))
            .unwrap();
    }

    #[test]
    fn queue_full_is_reported_not_dropped() {
        let registry = TenantRegistry::new();
        let tenant = registry
            .create(
                tid("alice"),
                flow(),
                TenantConfig {
                    max_in_flight: 64,
                    decider: DeciderConfig {
                        queue_capacity: 1,
                        check_timeout: None,
                    },
                },
            )
            .unwrap();

        // One stalled check occupies the worker; the queue holds one more.
        let _guard = crate::engine::test_hooks::lock();
        crate::engine::test_hooks::set_delay_ms_on_marker(200);
        let marker = crate::engine::test_hooks::FAULT_MARKER;
        let stall = format!("stall {marker}");
        let _a = tenant
            .try_check(CheckRequest::paragraph("gdocs", "d", 0, stall))
            .unwrap();
        // Fill the queue slot (may take a moment for the worker to pick
        // up the first request).
        let mut admitted = Vec::new();
        let mut saw_queue_full = false;
        for index in 1..50 {
            match tenant.try_check(CheckRequest::paragraph("gdocs", "d", index, "text")) {
                Ok(pending) => admitted.push(pending),
                Err(AdmissionError::QueueFull { queue_capacity }) => {
                    assert_eq!(queue_capacity, 1);
                    saw_queue_full = true;
                    break;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        crate::engine::test_hooks::set_delay_ms_on_marker(0);
        assert!(saw_queue_full, "bounded queue never refused");
        // Every admitted check resolves — zero silent drops.
        for (batch, permit) in admitted {
            batch.wait().unwrap();
            drop(permit);
        }
    }

    #[test]
    fn drain_persists_every_tenant_and_refuses_new_work() {
        let registry = TenantRegistry::new();
        let alice = registry
            .create(tid("alice"), flow(), TenantConfig::default())
            .unwrap();
        let bob = registry
            .create(tid("bob"), flow(), TenantConfig::default())
            .unwrap();
        alice.observe("itool", "eval", 0, SECRET).unwrap();

        let root = std::env::temp_dir().join(format!("bf-tenancy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let reports = registry.drain_all(Some(&root));
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert!(report.error.is_none(), "drain failed: {:?}", report.error);
            assert!(report.persisted_to.as_deref().unwrap().is_dir());
        }
        assert!(registry.is_empty());

        // New work on a retained handle sees Draining.
        assert!(matches!(
            alice.try_check(CheckRequest::paragraph("gdocs", "d", 0, "text")),
            Err(AdmissionError::Draining)
        ));
        assert!(bob.stats().is_none());

        // The persisted state round-trips: Alice's secret still blocks.
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([5u8; 32]), &root.join("alice"))
                .unwrap();
        assert!(report.is_complete());
        let decision = restored
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_drain_persists_cold_mappable_state() {
        let registry = TenantRegistry::new();
        let alice = registry
            .create(tid("alice"), flow(), TenantConfig::default())
            .unwrap();
        alice.observe("itool", "eval", 0, SECRET).unwrap();

        let root = std::env::temp_dir().join(format!("bf-tenancy-tiered-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let reports = registry.drain_all_with(Some(&root), true);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].error.is_none(), "{:?}", reports[0].error);

        // The restored flow serves Alice's fingerprints from mapped cold
        // shards, and verdicts are unchanged.
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([5u8; 32]), &root.join("alice"))
                .unwrap();
        assert!(report.is_complete());
        assert!(restored.engine().paragraph_store().stats().cold_shards > 0);
        let decision = restored
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn background_snapshot_persists_without_draining() {
        let registry = TenantRegistry::new();
        let alice = registry
            .create(tid("alice"), flow(), TenantConfig::default())
            .unwrap();
        alice.observe("itool", "eval", 0, SECRET).unwrap();

        let root = std::env::temp_dir().join(format!("bf-tenancy-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let results = registry.snapshot_all_with(&root, false);
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok(), "{:?}", results[0].1);

        // The tenant keeps serving: snapshot is non-destructive.
        let (pending, _permit) = alice
            .try_check(CheckRequest::paragraph("gdocs", "draft", 0, SECRET))
            .unwrap();
        assert_eq!(
            pending.wait().unwrap().decisions[0].action,
            UploadAction::Block
        );

        // The snapshot alone round-trips the observation.
        let (restored, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes([5u8; 32]), &root.join("alice"))
                .unwrap();
        assert!(report.is_complete());
        let decision = restored
            .check_one(&CheckRequest::paragraph("gdocs", "d", 0, SECRET))
            .unwrap();
        assert_eq!(decision.action, UploadAction::Block);

        // A second sweep overwrites in place (periodic operation), and a
        // drained tenant is skipped rather than reported as a failure.
        let results = registry.snapshot_all_with(&root, false);
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok(), "{:?}", results[0].1);
        registry.drain_all(None);
        assert!(alice.snapshot_to(&root.join("alice"), false).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
