//! Property-based tests of the disclosure engine and middleware.

use browserflow::{
    BrowserFlow, CheckRequest, DisclosureEngine, DocKey, EnforcementMode, EngineConfig,
};
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet};
use proptest::prelude::*;

fn config(cache: bool) -> EngineConfig {
    EngineConfig {
        fingerprint: FingerprintConfig::builder()
            .ngram_len(6)
            .window(4)
            .build()
            .unwrap(),
        cache_decisions: cache,
        ..EngineConfig::default()
    }
}

fn prose() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{2,9}", 5..40).prop_map(|ws| ws.join(" "))
}

proptest! {
    /// The engine never reports the segment being checked as its own
    /// source, no matter what is stored.
    #[test]
    fn never_reports_self(texts in proptest::collection::vec(prose(), 1..6)) {
        let engine = DisclosureEngine::new(config(true));
        let doc = DocKey::new("svc", "doc");
        for (i, text) in texts.iter().enumerate() {
            engine.observe_paragraph(&doc, i, text, None);
        }
        for (i, text) in texts.iter().enumerate() {
            let own_key = browserflow::SegmentKey::paragraph(doc.clone(), i);
            for found in engine.check_paragraph(&doc, i, text) {
                prop_assert_ne!(&found.source, &own_key);
            }
        }
    }

    /// Cached and uncached engines produce identical results over any
    /// observe/check interleaving.
    #[test]
    fn cache_is_transparent(
        stored in proptest::collection::vec(prose(), 0..5),
        probes in proptest::collection::vec(prose(), 1..5),
    ) {
        let cached = DisclosureEngine::new(config(true));
        let uncached = DisclosureEngine::new(config(false));
        let source = DocKey::new("src", "doc");
        for (i, text) in stored.iter().enumerate() {
            cached.observe_paragraph(&source, i, text, None);
            uncached.observe_paragraph(&source, i, text, None);
        }
        let target = DocKey::new("dst", "doc");
        for (i, probe) in probes.iter().enumerate() {
            // Check twice so the second cached call exercises a hit.
            let a1 = cached.check_paragraph(&target, i, probe);
            let a2 = cached.check_paragraph(&target, i, probe);
            let b = uncached.check_paragraph(&target, i, probe);
            prop_assert_eq!(&a1, &b);
            prop_assert_eq!(&a1, &a2);
        }
    }

    /// Reported disclosure of a stored source never *increases* when the
    /// probe text shrinks (monotonicity under prefix truncation).
    #[test]
    fn disclosure_monotone_under_truncation(text in prose()) {
        let engine = DisclosureEngine::new(config(false));
        let source = DocKey::new("src", "doc");
        engine.observe_paragraph(&source, 0, &text, Some(0.0));
        let target = DocKey::new("dst", "doc");
        let full = engine.check_paragraph(&target, 0, &text);
        let half: String = text.chars().take(text.chars().count() / 2).collect();
        let partial = engine.check_paragraph(&target, 1, &half);
        let full_d = full.first().map(|m| m.disclosure).unwrap_or(0.0);
        let partial_d = partial.first().map(|m| m.disclosure).unwrap_or(0.0);
        prop_assert!(partial_d <= full_d + 1e-12);
    }

    /// Middleware upload decisions are deterministic functions of the
    /// observation history.
    #[test]
    fn middleware_decisions_are_deterministic(
        stored in prose(),
        probe in prose(),
    ) {
        let build = || {
            let ts = Tag::new("s").unwrap();
            let flow = BrowserFlow::builder()
                .mode(EnforcementMode::Block)
                .engine(config(true))
                .service(
                    Service::new("internal", "Internal")
                        .with_privilege(TagSet::from_iter([ts.clone()]))
                        .with_confidentiality(TagSet::from_iter([ts.clone()])),
                )
                .service(Service::new("external", "External"))
                .build()
                .unwrap();
            flow.observe_paragraph(&"internal".into(), "doc", 0, &stored)
                .unwrap();
            flow.check_one(&CheckRequest::paragraph("external", "out", 0, &probe))
                .unwrap()
        };
        prop_assert_eq!(build(), build());
    }

    /// Exporting and importing middleware state preserves every upload
    /// decision.
    #[test]
    fn persistence_preserves_decisions(stored in prose(), probe in prose()) {
        use browserflow_store::StoreKey;
        let ts = Tag::new("s").unwrap();
        let flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes([9u8; 32]))
            .engine(config(true))
            .service(
                Service::new("internal", "Internal")
                    .with_privilege(TagSet::from_iter([ts.clone()]))
                    .with_confidentiality(TagSet::from_iter([ts.clone()])),
            )
            .service(Service::new("external", "External"))
            .build()
            .unwrap();
        flow.observe_paragraph(&"internal".into(), "doc", 0, &stored).unwrap();
        let before = flow.check_one(&CheckRequest::paragraph("external", "out", 0, &probe)).unwrap();
        let sealed = flow.export_sealed();
        let restored = BrowserFlow::import_sealed(
            StoreKey::from_bytes([9u8; 32]),
            &sealed,
        ).unwrap();
        let after = restored.check_one(&CheckRequest::paragraph("external", "out2", 0, &probe)).unwrap();
        prop_assert_eq!(before.action, after.action);
        prop_assert_eq!(before.violations.len(), after.violations.len());
    }
}
