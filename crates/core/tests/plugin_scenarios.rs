//! Plug-in lifecycle edge cases: multiple tabs on one origin, navigation
//! tearing observers down, origin rebinding, and mixed service types in
//! one browser session.

use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, EnforcementMode, EngineConfig};
use browserflow_browser::services::{parse_notes_sync, static_site, DocsApp, NotesApp};
use browserflow_browser::Browser;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet};

const WIKI: &str = "https://wiki.internal";
const DOCS: &str = "https://docs.example.com";
const NOTES: &str = "https://notes.example.com";

const SECRET: &str = "the migration runbook lists the production database credentials \
                      rotation order and the rollback procedure step by step";

fn plugin() -> Plugin {
    let tw = Tag::new("tw").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .service(Service::new("notes", "External Notes"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin(WIKI, "wiki", "kb");
    plugin.bind_origin(DOCS, "gdocs", "draft");
    plugin.bind_origin_with_parser(NOTES, "notes", "note", parse_notes_sync);
    plugin
}

fn seed_secret(plugin: &Plugin, browser: &mut Browser) {
    let page = static_site::article_page("Runbook", &[SECRET.to_string()]);
    let tab = browser.open_tab_with_html(WIKI, &page);
    assert_eq!(plugin.observe_page(browser, tab), 1);
}

#[test]
fn two_tabs_on_the_same_origin_are_both_enforced() {
    let plugin = plugin();
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    seed_secret(&plugin, &mut browser);

    let tab_a = browser.open_tab(DOCS);
    let mut docs_a = DocsApp::attach(&mut browser, tab_a);
    plugin.watch_docs(&mut browser, &docs_a);
    let tab_b = browser.open_tab(DOCS);
    let mut docs_b = DocsApp::attach(&mut browser, tab_b);
    plugin.watch_docs(&mut browser, &docs_b);

    docs_a.create_paragraph(&mut browser);
    docs_b.create_paragraph(&mut browser);
    assert!(!docs_a.type_text(&mut browser, 0, SECRET).is_delivered());
    assert!(!docs_b.type_text(&mut browser, 0, SECRET).is_delivered());
    assert!(docs_b
        .set_paragraph_text(&mut browser, 0, "harmless content instead")
        .is_delivered());
    assert!(!browser.backend(DOCS).saw_text("runbook"));
}

#[test]
fn docs_and_notes_coexist_with_different_wire_formats() {
    let plugin = plugin();
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    seed_secret(&plugin, &mut browser);

    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    let notes_tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, notes_tab);
    plugin.watch_notes(&mut browser, &notes);

    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, SECRET).is_delivered());
    let (_, result) = notes.add_block(&mut browser, SECRET);
    assert!(!result.is_delivered());
    assert!(notes
        .set_title(&mut browser, "harmless title")
        .is_delivered());
    for origin in [DOCS, NOTES] {
        assert!(!browser.backend(origin).saw_text("runbook"), "{origin}");
    }
}

#[test]
fn navigation_requires_reattaching_the_watcher() {
    let plugin = plugin();
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    seed_secret(&plugin, &mut browser);

    let tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, SECRET).is_delivered());

    // The user navigates the tab; observers are torn down with the page.
    browser.navigate(tab, DOCS, "");
    let mut docs = DocsApp::attach(&mut browser, tab);
    // Even without the (lookup) observer, the XHR enforcement hook is
    // global and still blocks outgoing leaks.
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, SECRET).is_delivered());
    // Re-attaching restores the UI flagging too.
    plugin.watch_docs(&mut browser, &docs);
    docs.set_paragraph_text(&mut browser, 0, SECRET);
    let node = docs.paragraph_node(&browser, 0);
    assert_eq!(
        browser.tab(tab).document().attr(node, "data-bf-flagged"),
        Some("true")
    );
}

#[test]
fn rebinding_an_origin_changes_its_service_identity() {
    let plugin = plugin();
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    seed_secret(&plugin, &mut browser);

    // Initially DOCS is untrusted gdocs: the paste is blocked.
    let tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, tab);
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, SECRET).is_delivered());

    // The organisation onboards the origin as a trusted wiki frontend.
    plugin.bind_origin(DOCS, "wiki", "trusted-editor");
    assert!(docs
        .set_paragraph_text(&mut browser, 0, SECRET)
        .is_delivered());
}

#[test]
fn shared_middleware_state_is_visible_across_plugin_clones() {
    let plugin = plugin();
    let clone = plugin.clone();
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    seed_secret(&plugin, &mut browser);

    // The clone sees the same engine state.
    let state = clone.state();
    assert_eq!(state.read().engine().paragraph_count(), 1);
    // Binding through the clone is visible to the original's hook chain.
    clone.bind_origin("https://late.example", "gdocs", "late-doc");
    let tab = browser.open_tab("https://late.example");
    let mut docs = DocsApp::attach(&mut browser, tab);
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, SECRET).is_delivered());
}
