//! The Table 1 dataset equivalents.
//!
//! Each builder takes a seed and (where relevant) a scale configuration;
//! `Default` configurations are laptop-friendly, while `paper_scale()`
//! matches the sizes reported in the paper's Table 1.

use crate::document::Document;
use crate::edits::EditProfile;
use crate::revisions::{CheckpointChain, RevisionChain};
use crate::textgen::TextGen;

/// Churn level of a Wikipedia article (drives Figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnLevel {
    /// Mature article with stable length ("Chicago", "C++", ...).
    Low,
    /// Controversial or immature article ("Dow Jones", "Dementia", ...).
    High,
}

/// Configuration for the Wikipedia-equivalent dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WikipediaConfig {
    /// Number of articles.
    pub articles: usize,
    /// Revisions per article (the paper keeps the last 1000).
    pub revisions: usize,
    /// Paragraphs per base article (Table 1 reports ~60 on average).
    pub paragraphs: usize,
    /// Sentences per paragraph.
    pub sentences: usize,
    /// Fraction of articles with [`ChurnLevel::High`].
    pub high_churn_fraction: f64,
}

impl Default for WikipediaConfig {
    /// A scaled-down configuration suitable for tests: 8 articles with 50
    /// revisions each.
    fn default() -> Self {
        Self {
            articles: 8,
            revisions: 50,
            paragraphs: 20,
            sentences: 4,
            high_churn_fraction: 0.5,
        }
    }
}

impl WikipediaConfig {
    /// The paper's scale: 100 articles, 1000 revisions, ~60 paragraphs.
    pub fn paper_scale() -> Self {
        Self {
            articles: 100,
            revisions: 1000,
            paragraphs: 60,
            sentences: 4,
            high_churn_fraction: 0.5,
        }
    }
}

/// One article of the Wikipedia-equivalent dataset.
#[derive(Debug, Clone)]
pub struct WikiArticle {
    /// Article name.
    pub name: String,
    /// Assigned churn level.
    pub churn: ChurnLevel,
    /// The revision history.
    pub chain: RevisionChain,
}

/// The Wikipedia-equivalent dataset: articles with long revision chains at
/// two churn levels.
///
/// # Example
///
/// ```rust
/// use browserflow_corpus::datasets::{WikipediaConfig, WikipediaDataset};
///
/// let config = WikipediaConfig { articles: 2, revisions: 5, ..WikipediaConfig::default() };
/// let wiki = WikipediaDataset::generate(1, &config);
/// assert_eq!(wiki.articles().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WikipediaDataset {
    articles: Vec<WikiArticle>,
}

/// Names borrowed from the articles the paper cites as examples.
const LOW_CHURN_NAMES: &[&str] = &["Chicago", "C++", "IP address", "Liverpool FC"];
const HIGH_CHURN_NAMES: &[&str] = &["Chemotherapy", "Dementia", "Dow Jones", "Radiotherapy"];

/// The per-article plan shared by the full and checkpointed generators:
/// name, churn level, and the per-revision profile (calibrated to the
/// chain length so the decay spreads across the whole x-axis — the
/// profiles are tuned for ~100-revision chains).
fn wikipedia_article_plan(config: &WikipediaConfig) -> Vec<(String, ChurnLevel, EditProfile)> {
    let high_count = (config.articles as f64 * config.high_churn_fraction).round() as usize;
    let time_scale = (100.0 / config.revisions.max(1) as f64).min(1.0);
    (0..config.articles)
        .map(|index| {
            let churn = if index < high_count {
                ChurnLevel::High
            } else {
                ChurnLevel::Low
            };
            let name = match churn {
                ChurnLevel::High if index < HIGH_CHURN_NAMES.len() => {
                    HIGH_CHURN_NAMES[index].to_string()
                }
                ChurnLevel::Low if index - high_count < LOW_CHURN_NAMES.len() => {
                    LOW_CHURN_NAMES[index - high_count].to_string()
                }
                _ => format!("Article {index}"),
            };
            let profile = match churn {
                ChurnLevel::Low => EditProfile::stable().scale_frequency(time_scale),
                ChurnLevel::High => EditProfile::churning().scale_frequency(time_scale),
            };
            (name, churn, profile)
        })
        .collect()
}

impl WikipediaDataset {
    /// Generates the dataset deterministically from `seed`, keeping every
    /// revision in memory. Suitable for test-scale configurations; use
    /// [`WikipediaCheckpoints`] for the paper's 1000-revision chains.
    pub fn generate(seed: u64, config: &WikipediaConfig) -> Self {
        let mut gen = TextGen::new(seed);
        let articles = wikipedia_article_plan(config)
            .into_iter()
            .map(|(name, churn, profile)| {
                let chain = RevisionChain::generate(
                    &mut gen,
                    &name,
                    config.paragraphs,
                    config.sentences,
                    config.revisions,
                    &profile,
                );
                WikiArticle { name, churn, chain }
            })
            .collect();
        Self { articles }
    }

    /// All articles.
    pub fn articles(&self) -> &[WikiArticle] {
        &self.articles
    }

    /// Articles of the given churn level.
    pub fn by_churn(&self, churn: ChurnLevel) -> impl Iterator<Item = &WikiArticle> {
        self.articles.iter().filter(move |a| a.churn == churn)
    }
}

/// One article of the checkpointed Wikipedia dataset.
#[derive(Debug, Clone)]
pub struct WikiArticleCheckpoints {
    /// Article name.
    pub name: String,
    /// Assigned churn level.
    pub churn: ChurnLevel,
    /// Base + snapshots at the requested revisions.
    pub chain: CheckpointChain,
}

/// The Wikipedia dataset with snapshot-only revision storage — the
/// memory-feasible form of the paper's 100 × 1000-revision corpus.
///
/// Deterministically identical (same seed, same config) to the documents
/// [`WikipediaDataset`] would produce at the same revision numbers.
#[derive(Debug, Clone)]
pub struct WikipediaCheckpoints {
    articles: Vec<WikiArticleCheckpoints>,
}

impl WikipediaCheckpoints {
    /// Generates the dataset, snapshotting each article at `checkpoints`
    /// (revision numbers; 0 = base).
    pub fn generate(seed: u64, config: &WikipediaConfig, checkpoints: &[usize]) -> Self {
        let mut gen = TextGen::new(seed);
        let articles = wikipedia_article_plan(config)
            .into_iter()
            .map(|(name, churn, profile)| {
                let chain = CheckpointChain::generate(
                    &mut gen,
                    &name,
                    config.paragraphs,
                    config.sentences,
                    &profile,
                    checkpoints,
                );
                WikiArticleCheckpoints { name, churn, chain }
            })
            .collect();
        Self { articles }
    }

    /// All articles.
    pub fn articles(&self) -> &[WikiArticleCheckpoints] {
        &self.articles
    }

    /// Articles of the given churn level.
    pub fn by_churn(&self, churn: ChurnLevel) -> impl Iterator<Item = &WikiArticleCheckpoints> {
        self.articles.iter().filter(move |a| a.churn == churn)
    }
}

/// The four manual chapters of Table 1 / Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManualChapterKind {
    /// iPhone manual, "Camera" chapter — rewritten substantially each
    /// major iOS version (Figure 10a).
    IphoneCamera,
    /// iPhone manual, "Message" chapter — rewritten even more heavily
    /// (Figure 10b).
    IphoneMessage,
    /// MySQL manual, "New Features" chapter — reduced disclosure after
    /// version 4.1 (Figure 10c).
    MySqlNewFeatures,
    /// MySQL manual, "What's MySQL" chapter — essentially unchanged across
    /// versions (Figure 10d).
    MySqlWhatsMySql,
}

impl ManualChapterKind {
    /// All four chapters in Table 1 order.
    pub const ALL: [ManualChapterKind; 4] = [
        ManualChapterKind::IphoneCamera,
        ManualChapterKind::IphoneMessage,
        ManualChapterKind::MySqlNewFeatures,
        ManualChapterKind::MySqlWhatsMySql,
    ];

    /// Human-readable chapter name.
    pub fn name(&self) -> &'static str {
        match self {
            ManualChapterKind::IphoneCamera => "IPhone Camera",
            ManualChapterKind::IphoneMessage => "IPhone Message",
            ManualChapterKind::MySqlNewFeatures => "MySQL New Features",
            ManualChapterKind::MySqlWhatsMySql => "MySQL What's MySQL",
        }
    }

    /// Version labels for the chapter's four versions.
    pub fn version_labels(&self) -> [&'static str; 4] {
        match self {
            ManualChapterKind::IphoneCamera | ManualChapterKind::IphoneMessage => {
                ["iOS3", "iOS4", "iOS5", "iOS7"]
            }
            _ => ["4.0", "4.1", "5.0", "5.1"],
        }
    }

    /// Base size (paragraph count) per Table 1: iPhone Camera 40, iPhone
    /// Message 20, MySQL New Features 28, What's MySQL 8.
    pub fn paragraph_count(&self) -> usize {
        match self {
            ManualChapterKind::IphoneCamera => 40,
            ManualChapterKind::IphoneMessage => 20,
            ManualChapterKind::MySqlNewFeatures => 28,
            ManualChapterKind::MySqlWhatsMySql => 8,
        }
    }

    /// The per-version churn schedule (3 transitions for 4 versions).
    ///
    /// Version transitions rewrite a *fraction of paragraphs wholesale*
    /// (see [`EditProfile::rewrite_with_touch`]): documentation revisions
    /// are bimodal, which is what gives the paper's Figure 11 its wide
    /// threshold-insensitive plateau.
    fn schedule(&self) -> Vec<EditProfile> {
        let frozen = EditProfile::frozen();
        match self {
            // Steady heavy rewriting across iOS versions.
            ManualChapterKind::IphoneCamera => vec![
                EditProfile::rewrite_with_touch(0.35),
                EditProfile::rewrite_with_touch(0.45),
                EditProfile::rewrite_with_touch(0.6),
            ],
            ManualChapterKind::IphoneMessage => vec![
                EditProfile::rewrite_with_touch(0.5),
                EditProfile::rewrite_with_touch(0.6),
                EditProfile::rewrite_with_touch(0.7),
            ],
            // Mostly intact until 4.1, then substantial rework.
            ManualChapterKind::MySqlNewFeatures => vec![
                EditProfile::rewrite_with_touch(0.05),
                EditProfile::rewrite_with_touch(0.5),
                EditProfile::rewrite_with_touch(0.25),
            ],
            // Frozen throughout.
            ManualChapterKind::MySqlWhatsMySql => vec![frozen, frozen, frozen],
        }
    }
}

/// One manual chapter with its four versions.
#[derive(Debug, Clone)]
pub struct ManualChapter {
    /// Which chapter this is.
    pub kind: ManualChapterKind,
    /// The version chain (4 versions: base + 3 transitions).
    pub chain: RevisionChain,
}

impl ManualChapter {
    /// Ground truth for version `version` (0–3) at survival `cutoff`.
    pub fn ground_truth(&self, version: usize, cutoff: f64) -> crate::revisions::GroundTruth {
        self.chain.ground_truth(version, cutoff)
    }
}

/// The Manuals dataset: two chapters from each of two technical manuals,
/// four versions each (Table 1).
#[derive(Debug, Clone)]
pub struct ManualsDataset {
    chapters: Vec<ManualChapter>,
}

impl ManualsDataset {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut gen = TextGen::new(seed);
        let chapters = ManualChapterKind::ALL
            .iter()
            .map(|&kind| {
                let mut base = Document::generate(&mut gen, kind.name(), kind.paragraph_count(), 4);
                // Manual rewrites are systematic (every section is revised
                // for a new product version), not popularity-driven like
                // wiki edits: flatten the edit affinity.
                for paragraph in base.paragraphs_mut() {
                    *paragraph = paragraph.clone().with_edit_affinity(1.0);
                }
                let chain = RevisionChain::evolve_with_schedule(&mut gen, base, &kind.schedule());
                ManualChapter { kind, chain }
            })
            .collect();
        Self { chapters }
    }

    /// All chapters in Table 1 order.
    pub fn chapters(&self) -> &[ManualChapter] {
        &self.chapters
    }

    /// A specific chapter.
    pub fn chapter(&self, kind: ManualChapterKind) -> &ManualChapter {
        self.chapters
            .iter()
            .find(|c| c.kind == kind)
            .expect("all chapter kinds are generated")
    }
}

/// The News dataset of Table 1: a small set of standalone articles
/// (2 documents, ~27 paragraphs each in the paper).
#[derive(Debug, Clone)]
pub struct NewsDataset {
    articles: Vec<Document>,
}

impl NewsDataset {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut gen = TextGen::new(seed);
        let articles = (0..2)
            .map(|i| Document::generate(&mut gen, format!("News article {i}"), 27, 3))
            .collect();
        Self { articles }
    }

    /// The articles.
    pub fn articles(&self) -> &[Document] {
        &self.articles
    }
}

/// Configuration for the e-books dataset (drives Figures 12 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbooksConfig {
    /// Number of books (the paper loads 180).
    pub books: usize,
    /// Smallest target book size in bytes (paper: 300 KB).
    pub min_bytes: usize,
    /// Largest target book size in bytes (paper: 5.5 MB).
    pub max_bytes: usize,
    /// Skew exponent for the size distribution: sizes follow
    /// `min + (max-min)·t^skew`. 1 spreads sizes evenly; larger values
    /// concentrate books near `min_bytes` with a long tail, matching the
    /// paper's corpus (300 KB – 5.5 MB range but ~470 KB average, ~90 MB
    /// total).
    pub size_skew: u32,
}

impl Default for EbooksConfig {
    /// A scaled-down configuration: 12 books of 20–80 KB.
    fn default() -> Self {
        Self {
            books: 12,
            min_bytes: 20_000,
            max_bytes: 80_000,
            size_skew: 1,
        }
    }
}

impl EbooksConfig {
    /// The paper's scale: 180 books of 300 KB – 5.5 MB (~90 MB total,
    /// ~10 M distinct hashes).
    pub fn paper_scale() -> Self {
        Self {
            books: 180,
            min_bytes: 300_000,
            max_bytes: 5_500_000,
            size_skew: 20,
        }
    }
}

/// The e-books dataset: large fresh documents used to fill the hash
/// database for the performance experiments.
#[derive(Debug, Clone)]
pub struct EbooksDataset {
    books: Vec<Document>,
}

impl EbooksDataset {
    /// Generates the dataset deterministically from `seed`.
    ///
    /// Book sizes are spread evenly across `[min_bytes, max_bytes]`.
    /// Paragraphs average ~500 characters, matching the paste size used in
    /// the paper's scalability experiment.
    pub fn generate(seed: u64, config: &EbooksConfig) -> Self {
        let mut gen = TextGen::new(seed);
        let mut books = Vec::with_capacity(config.books);
        for index in 0..config.books {
            let t = if config.books <= 1 {
                0.0
            } else {
                index as f64 / (config.books - 1) as f64
            };
            let t = t.powi(config.size_skew.max(1) as i32);
            let target = config.min_bytes as f64 + t * (config.max_bytes - config.min_bytes) as f64;
            books.push(Self::generate_book(&mut gen, index, target as usize));
        }
        Self { books }
    }

    fn generate_book(gen: &mut TextGen, index: usize, target_bytes: usize) -> Document {
        // ~500 characters per paragraph => ~7 sentences of ~10 words of
        // ~6.5 chars.
        let approx_paragraph_bytes = 500;
        let paragraphs = (target_bytes / approx_paragraph_bytes).max(1);
        Document::generate(gen, format!("Book {index}"), paragraphs, 7)
    }

    /// All books.
    pub fn books(&self) -> &[Document] {
        &self.books
    }

    /// Total rendered size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.books.iter().map(Document::byte_len).sum()
    }
}

/// One row of the Table 1 summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Dataset group ("Wikipedia", "Manuals", ...).
    pub dataset: String,
    /// Item name within the group.
    pub item: String,
    /// Number of documents.
    pub documents: usize,
    /// Number of versions per document (0 when not versioned).
    pub versions: usize,
    /// Average paragraph count across versions.
    pub paragraphs: f64,
    /// Average rendered size in KiB across versions.
    pub size_kib: f64,
}

/// Builds the Table 1 summary rows for already-generated datasets.
pub fn table1_rows(
    wikipedia: &WikipediaDataset,
    manuals: &ManualsDataset,
    news: &NewsDataset,
    ebooks: &EbooksDataset,
) -> Vec<Table1Row> {
    let mut rows = Vec::new();

    let wiki_articles = wikipedia.articles();
    if !wiki_articles.is_empty() {
        let mut paragraphs = 0usize;
        let mut bytes = 0usize;
        let mut versions = 0usize;
        for article in wiki_articles {
            for revision in article.chain.revisions() {
                paragraphs += revision.paragraphs().len();
                bytes += revision.byte_len();
                versions += 1;
            }
        }
        rows.push(Table1Row {
            dataset: "Wikipedia".into(),
            item: "Articles".into(),
            documents: wiki_articles.len(),
            versions: wiki_articles[0].chain.len(),
            paragraphs: paragraphs as f64 / versions as f64,
            size_kib: bytes as f64 / versions as f64 / 1024.0,
        });
    }

    for chapter in manuals.chapters() {
        let revisions = chapter.chain.revisions();
        let paragraphs: usize = revisions.iter().map(|r| r.paragraphs().len()).sum();
        let bytes: usize = revisions.iter().map(Document::byte_len).sum();
        rows.push(Table1Row {
            dataset: "Manuals".into(),
            item: chapter.kind.name().into(),
            documents: 1,
            versions: revisions.len(),
            paragraphs: paragraphs as f64 / revisions.len() as f64,
            size_kib: bytes as f64 / revisions.len() as f64 / 1024.0,
        });
    }

    let articles = news.articles();
    if !articles.is_empty() {
        let paragraphs: usize = articles.iter().map(|a| a.paragraphs().len()).sum();
        let bytes: usize = articles.iter().map(Document::byte_len).sum();
        rows.push(Table1Row {
            dataset: "News".into(),
            item: "Articles".into(),
            documents: articles.len(),
            versions: 1,
            paragraphs: paragraphs as f64 / articles.len() as f64,
            size_kib: bytes as f64 / articles.len() as f64 / 1024.0,
        });
    }

    let books = ebooks.books();
    if !books.is_empty() {
        let paragraphs: usize = books.iter().map(|b| b.paragraphs().len()).sum();
        rows.push(Table1Row {
            dataset: "Ebooks".into(),
            item: "Books".into(),
            documents: books.len(),
            versions: 1,
            paragraphs: paragraphs as f64 / books.len() as f64,
            size_kib: ebooks.total_bytes() as f64 / books.len() as f64 / 1024.0,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_dataset_shape() {
        let config = WikipediaConfig {
            articles: 6,
            revisions: 10,
            paragraphs: 8,
            sentences: 3,
            high_churn_fraction: 0.5,
        };
        let wiki = WikipediaDataset::generate(1, &config);
        assert_eq!(wiki.articles().len(), 6);
        assert_eq!(wiki.by_churn(ChurnLevel::High).count(), 3);
        assert_eq!(wiki.by_churn(ChurnLevel::Low).count(), 3);
        for article in wiki.articles() {
            assert_eq!(article.chain.len(), 11);
        }
        // The paper's example names are used.
        assert!(wiki.articles().iter().any(|a| a.name == "Chemotherapy"));
        assert!(wiki.articles().iter().any(|a| a.name == "Chicago"));
    }

    #[test]
    fn high_churn_articles_change_length_more() {
        let config = WikipediaConfig {
            articles: 6,
            revisions: 40,
            paragraphs: 10,
            sentences: 3,
            high_churn_fraction: 0.5,
        };
        let wiki = WikipediaDataset::generate(2, &config);
        let mean = |level| {
            let values: Vec<f64> = wiki
                .by_churn(level)
                .map(|a| a.chain.relative_length_change())
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        assert!(mean(ChurnLevel::High) > mean(ChurnLevel::Low));
    }

    #[test]
    fn manuals_dataset_matches_table1_structure() {
        let manuals = ManualsDataset::generate(3);
        assert_eq!(manuals.chapters().len(), 4);
        for chapter in manuals.chapters() {
            assert_eq!(chapter.chain.len(), 4, "{}", chapter.kind.name());
            assert_eq!(
                chapter.chain.base().paragraphs().len(),
                chapter.kind.paragraph_count()
            );
        }
    }

    #[test]
    fn whats_mysql_is_frozen_and_iphone_chapters_churn() {
        let manuals = ManualsDataset::generate(4);
        let frozen = manuals.chapter(ManualChapterKind::MySqlWhatsMySql);
        assert_eq!(
            frozen.ground_truth(3, 0.9).disclosed_fraction(),
            1.0,
            "What's MySQL must stay fully disclosed"
        );
        let message = manuals.chapter(ManualChapterKind::IphoneMessage);
        assert!(
            message.ground_truth(3, 0.5).disclosed_fraction() < 0.3,
            "iPhone Message must lose most disclosure by iOS7"
        );
    }

    #[test]
    fn ebooks_sizes_scale_with_config() {
        let small = EbooksDataset::generate(
            5,
            &EbooksConfig {
                books: 3,
                min_bytes: 5_000,
                max_bytes: 15_000,
                size_skew: 1,
            },
        );
        assert_eq!(small.books().len(), 3);
        for book in small.books() {
            let bytes = book.byte_len();
            assert!(bytes > 2_000, "{bytes}");
            assert!(bytes < 40_000, "{bytes}");
        }
        // Sizes increase across the range.
        assert!(small.books()[2].byte_len() > small.books()[0].byte_len());
    }

    #[test]
    fn table1_rows_cover_all_groups() {
        let wiki = WikipediaDataset::generate(
            6,
            &WikipediaConfig {
                articles: 2,
                revisions: 3,
                paragraphs: 4,
                sentences: 3,
                high_churn_fraction: 0.5,
            },
        );
        let manuals = ManualsDataset::generate(6);
        let ebooks = EbooksDataset::generate(
            6,
            &EbooksConfig {
                books: 2,
                min_bytes: 5_000,
                max_bytes: 8_000,
                size_skew: 1,
            },
        );
        let news = NewsDataset::generate(6);
        let rows = table1_rows(&wiki, &manuals, &news, &ebooks);
        assert_eq!(rows.len(), 1 + 4 + 1 + 1);
        assert_eq!(rows[0].dataset, "Wikipedia");
        assert_eq!(rows[5].dataset, "News");
        assert_eq!(rows[6].dataset, "Ebooks");
        for row in &rows {
            assert!(row.paragraphs > 0.0);
            assert!(row.size_kib > 0.0);
        }
    }

    #[test]
    fn checkpointed_wikipedia_matches_full_generation() {
        let config = WikipediaConfig {
            articles: 3,
            revisions: 12,
            paragraphs: 5,
            sentences: 3,
            high_churn_fraction: 0.4,
        };
        let checkpoints = [0usize, 6, 12];
        let full = WikipediaDataset::generate(9, &config);
        let sparse = WikipediaCheckpoints::generate(9, &config, &checkpoints);
        assert_eq!(full.articles().len(), sparse.articles().len());
        for (a, b) in full.articles().iter().zip(sparse.articles()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.churn, b.churn);
            for (revision, document) in b.chain.snapshots() {
                assert_eq!(a.chain.revision(*revision).text(), document.text());
            }
            assert!(
                (a.chain.relative_length_change() - b.chain.relative_length_change()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = ManualsDataset::generate(7);
        let b = ManualsDataset::generate(7);
        for (ca, cb) in a.chapters().iter().zip(b.chapters()) {
            for (ra, rb) in ca.chain.revisions().iter().zip(cb.chain.revisions()) {
                assert_eq!(ra.text(), rb.text());
            }
        }
    }
}
