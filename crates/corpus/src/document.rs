//! Token-level document model with provenance.
//!
//! Every [`Token`] records whether it survives unmodified from the *base*
//! revision of its paragraph. Edits (see [`crate::edits`]) replace base
//! tokens with fresh ones, so at any revision the exact fraction of a base
//! paragraph that is still present verbatim can be read off the tokens —
//! this is the corpus's mechanical ground truth for "does revision N still
//! disclose base paragraph P?".

use crate::textgen::TextGen;

/// One word of a paragraph, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    word: String,
    /// Index of the base paragraph the word is unchanged from, if any.
    ///
    /// Tracking the *index* (not just a boolean) matters once paragraphs
    /// merge: a paragraph descending from base paragraph 0 that absorbs a
    /// neighbour descending from base paragraph 1 must not count the
    /// neighbour's surviving tokens towards base paragraph 0's survival.
    origin: Option<usize>,
}

impl Token {
    /// Creates a token that belongs to base paragraph `origin`.
    pub fn base(word: impl Into<String>, origin: usize) -> Self {
        Self {
            word: word.into(),
            origin: Some(origin),
        }
    }

    /// Creates a token introduced by a later edit.
    pub fn fresh(word: impl Into<String>) -> Self {
        Self {
            word: word.into(),
            origin: None,
        }
    }

    /// The word.
    pub fn word(&self) -> &str {
        &self.word
    }

    /// Whether the token survives from the base revision.
    pub fn is_from_base(&self) -> bool {
        self.origin.is_some()
    }

    /// The base paragraph this token survives from, if any.
    pub fn origin(&self) -> Option<usize> {
        self.origin
    }
}

/// A paragraph: a sequence of tokens plus provenance bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Paragraph {
    /// Index of the base paragraph this one descends from, if any.
    /// Paragraphs inserted by later revisions have no base origin.
    base_index: Option<usize>,
    /// Number of tokens the base paragraph originally had.
    base_len: usize,
    /// How attractive this paragraph is to editors, in `[0, ~3]` with
    /// mean 1. Real revision histories touch paragraphs very unevenly —
    /// lead sections churn, reference sections fossilise — and this
    /// heterogeneity is what gives disclosure curves their long plateau
    /// (Figure 9b). Multiplies the profile's touch probability.
    edit_affinity: f64,
    tokens: Vec<Token>,
}

impl Paragraph {
    /// Creates a base-revision paragraph from words.
    pub fn from_base_words<I, S>(base_index: usize, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<Token> = words
            .into_iter()
            .map(|word| Token::base(word, base_index))
            .collect();
        let base_len = tokens.len();
        Self {
            base_index: Some(base_index),
            base_len,
            edit_affinity: 1.0,
            tokens,
        }
    }

    /// Creates a paragraph introduced after the base revision (no origin).
    pub fn fresh<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            base_index: None,
            base_len: 0,
            edit_affinity: 1.0,
            tokens: words.into_iter().map(Token::fresh).collect(),
        }
    }

    /// Generates a fresh paragraph of `sentences` sentences.
    pub fn generate(gen: &mut TextGen, sentences: usize) -> Self {
        let mut words = Vec::new();
        for _ in 0..sentences {
            words.extend(gen.sentence_words());
        }
        Self::fresh(words)
    }

    /// The base paragraph index this paragraph descends from.
    pub fn base_index(&self) -> Option<usize> {
        self.base_index
    }

    /// The paragraph's edit affinity (mean 1; see the field docs).
    pub fn edit_affinity(&self) -> f64 {
        self.edit_affinity
    }

    /// Sets the edit affinity (builder style).
    pub fn with_edit_affinity(mut self, affinity: f64) -> Self {
        self.edit_affinity = affinity.max(0.0);
        self
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the paragraph has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Read access to the tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Mutable access to the tokens (used by edit operations).
    pub(crate) fn tokens_mut(&mut self) -> &mut Vec<Token> {
        &mut self.tokens
    }

    /// How many tokens of *this paragraph's own* base paragraph are still
    /// present. Tokens absorbed from a paragraph with a different lineage
    /// do not count (see [`Token::origin`]).
    pub fn surviving_base_tokens(&self) -> usize {
        match self.base_index {
            Some(base) => self
                .tokens
                .iter()
                .filter(|t| t.origin == Some(base))
                .count(),
            None => 0,
        }
    }

    /// Fraction of the base paragraph's original tokens still present
    /// (`0.0` for fresh paragraphs and empty bases).
    pub fn base_survival(&self) -> f64 {
        if self.base_len == 0 {
            return 0.0;
        }
        self.surviving_base_tokens() as f64 / self.base_len as f64
    }

    /// Splits the paragraph at token `at`, returning (head, tail). Both
    /// halves keep the base lineage and original base length, so their
    /// individual survival fractions sum to the original's.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range.
    pub fn split_at_token(&self, at: usize) -> (Paragraph, Paragraph) {
        assert!(at <= self.tokens.len(), "split point out of range");
        let head = Paragraph {
            base_index: self.base_index,
            base_len: self.base_len,
            edit_affinity: self.edit_affinity,
            tokens: self.tokens[..at].to_vec(),
        };
        let tail = Paragraph {
            base_index: self.base_index,
            base_len: self.base_len,
            edit_affinity: self.edit_affinity,
            tokens: self.tokens[at..].to_vec(),
        };
        (head, tail)
    }

    /// Appends another paragraph's tokens. The lineage (base index and
    /// base length) of the half contributing more base tokens wins.
    pub fn absorb(&mut self, other: Paragraph) {
        if other.surviving_base_tokens() > self.surviving_base_tokens() {
            self.base_index = other.base_index;
            self.base_len = other.base_len;
        }
        self.tokens.extend(other.tokens);
    }

    /// Renders the paragraph as prose: capitalised start, words separated
    /// by spaces, terminated with a period. (Sentence-internal punctuation
    /// is irrelevant — fingerprint normalisation strips it.)
    pub fn text(&self) -> String {
        let mut text = String::new();
        self.text_into(&mut text);
        text
    }

    /// Renders the paragraph into a reusable buffer (cleared first).
    ///
    /// The bulk-ingest shape: rendering thousands of corpus paragraphs
    /// into one recycled `String` keeps the fingerprint pipeline's
    /// steady-state allocation profile flat.
    pub fn text_into(&self, out: &mut String) {
        out.clear();
        let start = out.len();
        for (i, token) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&token.word);
        }
        if let Some(first) = out.get_mut(start..start + 1) {
            first.make_ascii_uppercase();
        }
        out.push('.');
    }
}

/// A document: a titled sequence of paragraphs.
///
/// # Example
///
/// ```rust
/// use browserflow_corpus::{Document, TextGen};
///
/// let mut gen = TextGen::new(1);
/// let doc = Document::generate(&mut gen, "intro", 5, 4);
/// assert_eq!(doc.paragraphs().len(), 5);
/// assert!(doc.text().len() > 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    title: String,
    paragraphs: Vec<Paragraph>,
}

impl Document {
    /// Creates a document from paragraphs.
    pub fn new(title: impl Into<String>, paragraphs: Vec<Paragraph>) -> Self {
        Self {
            title: title.into(),
            paragraphs,
        }
    }

    /// Generates a document of `paragraph_count` paragraphs with
    /// `sentences_per_paragraph` sentences each; every paragraph is marked
    /// as base paragraph `i`.
    pub fn generate(
        gen: &mut TextGen,
        title: impl Into<String>,
        paragraph_count: usize,
        sentences_per_paragraph: usize,
    ) -> Self {
        let paragraphs = (0..paragraph_count)
            .map(|i| {
                let mut words = Vec::new();
                for _ in 0..sentences_per_paragraph {
                    words.extend(gen.sentence_words());
                }
                // Skewed affinity (mean ~1): editors churn some paragraphs
                // relentlessly and never touch others.
                let u: f64 = rand::Rng::gen(gen.rng());
                Paragraph::from_base_words(i, words).with_edit_affinity(3.0 * u * u)
            })
            .collect();
        Self {
            title: title.into(),
            paragraphs,
        }
    }

    /// The document title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The paragraphs.
    pub fn paragraphs(&self) -> &[Paragraph] {
        &self.paragraphs
    }

    /// Mutable paragraph access (used by edit operations).
    pub(crate) fn paragraphs_mut(&mut self) -> &mut Vec<Paragraph> {
        &mut self.paragraphs
    }

    /// The document rendered as prose, paragraphs separated by blank lines.
    pub fn text(&self) -> String {
        self.paragraphs
            .iter()
            .map(Paragraph::text)
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Total size of the rendered text in bytes.
    pub fn byte_len(&self) -> usize {
        self.text().len()
    }

    /// Number of tokens across all paragraphs.
    pub fn token_count(&self) -> usize {
        self.paragraphs.iter().map(Paragraph::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_paragraph_survival_starts_at_one() {
        let p = Paragraph::from_base_words(0, ["alpha", "beta", "gamma"]);
        assert_eq!(p.base_survival(), 1.0);
        assert_eq!(p.base_index(), Some(0));
        assert_eq!(p.surviving_base_tokens(), 3);
    }

    #[test]
    fn fresh_paragraph_has_no_base() {
        let p = Paragraph::fresh(["new", "content"]);
        assert_eq!(p.base_index(), None);
        assert_eq!(p.base_survival(), 0.0);
    }

    #[test]
    fn survival_decreases_as_tokens_are_replaced() {
        let mut p = Paragraph::from_base_words(0, ["a", "b", "c", "d"]);
        p.tokens_mut()[1] = Token::fresh("x");
        p.tokens_mut()[2] = Token::fresh("y");
        assert_eq!(p.base_survival(), 0.5);
    }

    #[test]
    fn text_into_reuses_buffer_and_matches_text() {
        let mut buf = String::from("stale contents from the previous paragraph");
        let p = Paragraph::from_base_words(0, ["hello", "world"]);
        p.text_into(&mut buf);
        assert_eq!(buf, p.text());
        let empty = Paragraph::fresh(Vec::<String>::new());
        empty.text_into(&mut buf);
        assert_eq!(buf, empty.text());
    }

    #[test]
    fn text_rendering() {
        let p = Paragraph::from_base_words(0, ["hello", "world"]);
        assert_eq!(p.text(), "Hello world.");
        let doc = Document::new("t", vec![p.clone(), p]);
        assert_eq!(doc.text(), "Hello world.\n\nHello world.");
        assert_eq!(doc.token_count(), 4);
    }

    #[test]
    fn generated_document_structure() {
        let mut gen = TextGen::new(9);
        let doc = Document::generate(&mut gen, "spec", 3, 2);
        assert_eq!(doc.paragraphs().len(), 3);
        for (i, p) in doc.paragraphs().iter().enumerate() {
            assert_eq!(p.base_index(), Some(i));
            assert!(p.len() >= 12); // two sentences of >= 6 words
            assert_eq!(p.base_survival(), 1.0);
        }
    }
}
