//! Revision-style edit operations over documents.
//!
//! An [`EditProfile`] describes how aggressively one revision differs from
//! the previous one. Profiles are the knob behind the evaluation's
//! low-churn vs high-churn Wikipedia articles (Figure 9) and the
//! rewritten vs stable manual chapters (Figure 10).

use crate::document::{Document, Paragraph, Token};
use crate::textgen::TextGen;
use rand::Rng;

/// Per-revision edit rates. All probabilities/fractions are in `[0, 1]`.
///
/// # Example
///
/// ```rust
/// use browserflow_corpus::EditProfile;
///
/// let stable = EditProfile::stable();
/// let churn = EditProfile::churning();
/// assert!(churn.word_replace_rate > stable.word_replace_rate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditProfile {
    /// Fraction of each touched paragraph's words replaced with fresh ones.
    pub word_replace_rate: f64,
    /// Probability that a given paragraph is touched at all this revision.
    pub paragraph_touch_prob: f64,
    /// Probability that a touched paragraph loses a run of ~one sentence.
    pub sentence_delete_prob: f64,
    /// Probability that a touched paragraph gains a fresh sentence.
    pub sentence_insert_prob: f64,
    /// Probability that the revision appends a fresh paragraph.
    pub paragraph_insert_prob: f64,
    /// Probability that the revision deletes one existing paragraph.
    pub paragraph_delete_prob: f64,
    /// Probability that the revision swaps two paragraphs (reordering does
    /// not change content, and winnowing is robust to it).
    pub reorder_prob: f64,
    /// Probability that a paragraph receives a light touch-up (typo fixes,
    /// small clarifications) independent of the main edit pass.
    pub minor_touch_prob: f64,
    /// Fraction of words replaced by a light touch-up.
    pub minor_replace_rate: f64,
    /// Probability that the revision splits one paragraph in two.
    pub split_prob: f64,
    /// Probability that the revision merges two adjacent paragraphs.
    pub merge_prob: f64,
}

impl EditProfile {
    /// A mature, stable article: occasional small touch-ups
    /// (the "Chicago" / "C++" articles of Figure 9a).
    pub fn stable() -> Self {
        Self {
            word_replace_rate: 0.015,
            paragraph_touch_prob: 0.08,
            sentence_delete_prob: 0.005,
            sentence_insert_prob: 0.02,
            paragraph_insert_prob: 0.02,
            paragraph_delete_prob: 0.0,
            reorder_prob: 0.02,
            minor_touch_prob: 0.0,
            minor_replace_rate: 0.0,
            split_prob: 0.01,
            merge_prob: 0.01,
        }
    }

    /// A controversial or immature article: steady rewriting that erodes
    /// the base content over tens of revisions (the "Dow Jones" /
    /// "Dementia" articles of Figure 9b). Calibrated so base-paragraph
    /// content decays gradually across a ~100-revision chain; scale the
    /// profile with [`EditProfile::lerp`] for longer chains.
    pub fn churning() -> Self {
        Self {
            word_replace_rate: 0.05,
            paragraph_touch_prob: 0.45,
            sentence_delete_prob: 0.05,
            sentence_insert_prob: 0.1,
            paragraph_insert_prob: 0.1,
            paragraph_delete_prob: 0.02,
            reorder_prob: 0.1,
            minor_touch_prob: 0.0,
            minor_replace_rate: 0.0,
            split_prob: 0.05,
            merge_prob: 0.05,
        }
    }

    /// A chapter rewritten heavily between major versions (the iPhone
    /// manual chapters of Figure 10a–b). Rewriting is *bimodal*: a touched
    /// paragraph is rewritten almost entirely (90% of its words), an
    /// untouched one stays verbatim — which is how documentation is
    /// actually revised, and what makes detection insensitive to the exact
    /// threshold within [0.2, 0.8] (Figure 11).
    pub fn rewrite() -> Self {
        Self::rewrite_with_touch(0.55)
    }

    /// A [`EditProfile::rewrite`]-style profile with a custom fraction of
    /// paragraphs rewritten per version.
    pub fn rewrite_with_touch(paragraph_touch_prob: f64) -> Self {
        Self {
            word_replace_rate: 0.9,
            paragraph_touch_prob,
            sentence_delete_prob: 0.15,
            sentence_insert_prob: 0.2,
            paragraph_insert_prob: 0.2,
            paragraph_delete_prob: 0.05,
            reorder_prob: 0.1,
            // Untouched chapters still get light copy-editing between
            // product versions; these touch-ups are what make very high
            // thresholds (Tpar > 0.8) miss truly-disclosed paragraphs
            // (the false-negative tail of Figure 11).
            minor_touch_prob: 0.4,
            minor_replace_rate: 0.06,
            split_prob: 0.05,
            merge_prob: 0.05,
        }
    }

    /// A frozen chapter: no edits at all (the "What's MySQL" chapter of
    /// Figure 10d).
    pub fn frozen() -> Self {
        Self {
            word_replace_rate: 0.0,
            paragraph_touch_prob: 0.0,
            sentence_delete_prob: 0.0,
            sentence_insert_prob: 0.0,
            paragraph_insert_prob: 0.0,
            paragraph_delete_prob: 0.0,
            reorder_prob: 0.0,
            minor_touch_prob: 0.0,
            minor_replace_rate: 0.0,
            split_prob: 0.0,
            merge_prob: 0.0,
        }
    }

    /// Scales how *often* edits happen without changing how *big* each
    /// edit is: per-revision event probabilities are multiplied by
    /// `factor`, per-touch intensities (word replacement fraction) stay
    /// fixed.
    ///
    /// This is the correct way to stretch a churn profile over a longer
    /// revision chain — expected total content loss scales linearly with
    /// `factor × revisions`, so `profile.scale_frequency(100.0 / n)` over
    /// `n` revisions decays like the original over 100.
    pub fn scale_frequency(&self, factor: f64) -> EditProfile {
        let scale = |p: f64| (p * factor).clamp(0.0, 1.0);
        EditProfile {
            word_replace_rate: self.word_replace_rate,
            paragraph_touch_prob: scale(self.paragraph_touch_prob),
            sentence_delete_prob: self.sentence_delete_prob,
            sentence_insert_prob: self.sentence_insert_prob,
            paragraph_insert_prob: scale(self.paragraph_insert_prob),
            paragraph_delete_prob: scale(self.paragraph_delete_prob),
            reorder_prob: scale(self.reorder_prob),
            minor_touch_prob: scale(self.minor_touch_prob),
            minor_replace_rate: self.minor_replace_rate,
            split_prob: scale(self.split_prob),
            merge_prob: scale(self.merge_prob),
        }
    }

    /// Linear interpolation between two profiles (`t = 0` gives `self`,
    /// `t = 1` gives `other`). Used to build per-version churn schedules.
    pub fn lerp(&self, other: &EditProfile, t: f64) -> EditProfile {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: f64, b: f64| a + (b - a) * t;
        EditProfile {
            word_replace_rate: mix(self.word_replace_rate, other.word_replace_rate),
            paragraph_touch_prob: mix(self.paragraph_touch_prob, other.paragraph_touch_prob),
            sentence_delete_prob: mix(self.sentence_delete_prob, other.sentence_delete_prob),
            sentence_insert_prob: mix(self.sentence_insert_prob, other.sentence_insert_prob),
            paragraph_insert_prob: mix(self.paragraph_insert_prob, other.paragraph_insert_prob),
            paragraph_delete_prob: mix(self.paragraph_delete_prob, other.paragraph_delete_prob),
            reorder_prob: mix(self.reorder_prob, other.reorder_prob),
            minor_touch_prob: mix(self.minor_touch_prob, other.minor_touch_prob),
            minor_replace_rate: mix(self.minor_replace_rate, other.minor_replace_rate),
            split_prob: mix(self.split_prob, other.split_prob),
            merge_prob: mix(self.merge_prob, other.merge_prob),
        }
    }
}

/// Applies one revision's worth of edits to `document` in place, using the
/// deterministic stream of `gen`.
pub fn apply_revision(document: &mut Document, profile: &EditProfile, gen: &mut TextGen) {
    // Touch paragraphs: replace words, delete/insert sentence-sized runs.
    let paragraph_count = document.paragraphs().len();
    for index in 0..paragraph_count {
        let affinity = document.paragraphs()[index].edit_affinity();
        let touch_prob = (profile.paragraph_touch_prob * affinity).clamp(0.0, 1.0);
        if touch_prob == 0.0 || !gen.rng().gen_bool(touch_prob) {
            continue;
        }
        let replace_rate = profile.word_replace_rate;
        let delete = gen.rng().gen_bool(profile.sentence_delete_prob);
        let insert = gen.rng().gen_bool(profile.sentence_insert_prob);
        let paragraph = &mut document.paragraphs_mut()[index];
        replace_words(paragraph, replace_rate, gen);
        if delete {
            delete_run(paragraph, gen);
        }
        if insert {
            insert_run(paragraph, gen);
        }
    }

    // Light copy-editing pass (independent of edit affinity: typo fixes
    // land anywhere).
    if profile.minor_touch_prob > 0.0 {
        for index in 0..document.paragraphs().len() {
            if gen.rng().gen_bool(profile.minor_touch_prob.min(1.0)) {
                let rate = profile.minor_replace_rate;
                replace_words(&mut document.paragraphs_mut()[index], rate, gen);
            }
        }
    }

    // Structural edits.
    if gen.rng().gen_bool(profile.paragraph_delete_prob) && document.paragraphs().len() > 1 {
        let victim = gen.rng().gen_range(0..document.paragraphs().len());
        document.paragraphs_mut().remove(victim);
    }
    if gen.rng().gen_bool(profile.paragraph_insert_prob) {
        let sentences = gen.rng().gen_range(3..=8);
        let fresh = Paragraph::generate(gen, sentences);
        let at = gen.rng().gen_range(0..=document.paragraphs().len());
        document.paragraphs_mut().insert(at, fresh);
    }
    if gen.rng().gen_bool(profile.reorder_prob) && document.paragraphs().len() >= 2 {
        let len = document.paragraphs().len();
        let a = gen.rng().gen_range(0..len);
        let b = gen.rng().gen_range(0..len);
        document.paragraphs_mut().swap(a, b);
    }
    if gen.rng().gen_bool(profile.split_prob) && !document.paragraphs().is_empty() {
        let index = gen.rng().gen_range(0..document.paragraphs().len());
        split_paragraph(document, index, gen);
    }
    if gen.rng().gen_bool(profile.merge_prob) && document.paragraphs().len() >= 2 {
        let index = gen.rng().gen_range(0..document.paragraphs().len() - 1);
        merge_paragraphs(document, index);
    }
}

/// Splits paragraph `index` at a random token boundary into two
/// paragraphs. Both halves keep the original's base lineage, and token
/// origins are preserved, so the ground-truth oracle still counts every
/// surviving token towards its base paragraph (split content still counts
/// as disclosed where it survives).
pub fn split_paragraph(document: &mut Document, index: usize, gen: &mut TextGen) {
    let paragraph = &document.paragraphs()[index];
    if paragraph.len() < 8 {
        return;
    }
    let at = gen.rng().gen_range(4..paragraph.len() - 3);
    let (head, tail) = document.paragraphs()[index].split_at_token(at);
    document.paragraphs_mut()[index] = head;
    document.paragraphs_mut().insert(index + 1, tail);
}

/// Merges paragraph `index + 1` into paragraph `index`. The merged
/// paragraph keeps the lineage of the half with more base tokens.
pub fn merge_paragraphs(document: &mut Document, index: usize) {
    if index + 1 >= document.paragraphs().len() {
        return;
    }
    let tail = document.paragraphs_mut().remove(index + 1);
    let head = &mut document.paragraphs_mut()[index];
    head.absorb(tail);
}

/// Replaces roughly `rate` of the paragraph's words with fresh ones, in
/// contiguous sentence-sized runs.
///
/// Run-based (rather than scattered single-word) replacement models how
/// people actually revise text — whole clauses and sentences are
/// rewritten — and it keeps token-level ground truth aligned with
/// fingerprint-level similarity: a rewritten *run* destroys about as many
/// n-grams as tokens, whereas scattered replacements would destroy every
/// n-gram spanning them.
pub fn replace_words(paragraph: &mut Paragraph, rate: f64, gen: &mut TextGen) {
    if rate <= 0.0 {
        return;
    }
    let len = paragraph.len();
    if len == 0 {
        return;
    }
    let target = (len as f64 * rate.min(1.0)).round() as usize;
    let mut replaced = 0usize;
    let mut visited = vec![false; len];
    // Bounded attempts: overlapping runs re-hit visited positions, which
    // do not count towards the target.
    let mut attempts = 0usize;
    while replaced < target && attempts < 8 * len {
        attempts += 1;
        let run = gen.rng().gen_range(6..=12).min(len);
        let start = gen.rng().gen_range(0..=len - run);
        for (i, seen) in visited.iter_mut().enumerate().skip(start).take(run) {
            if replaced >= target {
                break;
            }
            if !*seen {
                *seen = true;
                let word = gen.word();
                paragraph.tokens_mut()[i] = Token::fresh(word);
                replaced += 1;
            }
        }
    }
}

/// Deletes a sentence-sized run (8–14 tokens) at a random position.
pub fn delete_run(paragraph: &mut Paragraph, gen: &mut TextGen) {
    let len = paragraph.len();
    if len < 4 {
        return;
    }
    let run = gen.rng().gen_range(8..=14).min(len - 1);
    let start = gen.rng().gen_range(0..=len - run);
    paragraph.tokens_mut().drain(start..start + run);
}

/// Inserts a fresh sentence at a random position.
pub fn insert_run(paragraph: &mut Paragraph, gen: &mut TextGen) {
    let words = gen.sentence_words();
    let at = gen.rng().gen_range(0..=paragraph.len());
    let fresh: Vec<Token> = words.into_iter().map(Token::fresh).collect();
    paragraph.tokens_mut().splice(at..at, fresh);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn base_doc(gen: &mut TextGen) -> Document {
        Document::generate(gen, "base", 10, 5)
    }

    #[test]
    fn frozen_profile_changes_nothing() {
        let mut gen = TextGen::new(11);
        let mut doc = base_doc(&mut gen);
        let before = doc.clone();
        apply_revision(&mut doc, &EditProfile::frozen(), &mut gen);
        assert_eq!(doc, before);
    }

    #[test]
    fn replace_words_reduces_survival_proportionally() {
        let mut gen = TextGen::new(12);
        let mut p = Paragraph::from_base_words(0, (0..1000).map(|i| format!("w{i}")));
        replace_words(&mut p, 0.3, &mut gen);
        let survival = p.base_survival();
        assert!((survival - 0.7).abs() < 0.06, "survival {survival}");
        assert_eq!(p.len(), 1000);
    }

    #[test]
    fn delete_run_shrinks_paragraph() {
        let mut gen = TextGen::new(13);
        let mut p = Paragraph::from_base_words(0, (0..100).map(|i| format!("w{i}")));
        delete_run(&mut p, &mut gen);
        assert!(p.len() < 100);
        assert!(p.base_survival() < 1.0);
    }

    #[test]
    fn insert_run_adds_fresh_tokens_only() {
        let mut gen = TextGen::new(14);
        let mut p = Paragraph::from_base_words(0, (0..20).map(|i| format!("w{i}")));
        insert_run(&mut p, &mut gen);
        assert!(p.len() > 20);
        // Inserting never destroys base tokens.
        assert_eq!(p.surviving_base_tokens(), 20);
    }

    #[test]
    fn churning_profile_erodes_survival_faster_than_stable() {
        let mut gen_a = TextGen::new(15);
        let mut stable = base_doc(&mut gen_a);
        let mut gen_b = TextGen::new(15);
        let mut churning = base_doc(&mut gen_b);
        for _ in 0..30 {
            apply_revision(&mut stable, &EditProfile::stable(), &mut gen_a);
            apply_revision(&mut churning, &EditProfile::churning(), &mut gen_b);
        }
        let mean_survival = |doc: &Document| {
            let descendants: Vec<f64> = doc
                .paragraphs()
                .iter()
                .filter(|p| p.base_index().is_some())
                .map(|p| p.base_survival())
                .collect();
            descendants.iter().sum::<f64>() / descendants.len().max(1) as f64
        };
        assert!(
            mean_survival(&stable) > mean_survival(&churning),
            "stable {} vs churning {}",
            mean_survival(&stable),
            mean_survival(&churning)
        );
    }

    #[test]
    fn scale_frequency_scales_probabilities_not_intensities() {
        let base = EditProfile::churning();
        let scaled = base.scale_frequency(0.1);
        assert!((scaled.paragraph_touch_prob - base.paragraph_touch_prob * 0.1).abs() < 1e-12);
        assert_eq!(scaled.word_replace_rate, base.word_replace_rate);
        assert_eq!(scaled.sentence_delete_prob, base.sentence_delete_prob);
        // Factor 1 is the identity; large factors clamp at 1.
        assert_eq!(base.scale_frequency(1.0), base);
        assert!(base.scale_frequency(1e9).paragraph_touch_prob <= 1.0);
    }

    #[test]
    fn split_preserves_tokens_and_lineage() {
        let mut gen = TextGen::new(41);
        let doc_words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
        let mut doc = Document::new("d", vec![Paragraph::from_base_words(0, doc_words.clone())]);
        split_paragraph(&mut doc, 0, &mut gen);
        assert_eq!(doc.paragraphs().len(), 2);
        assert_eq!(doc.token_count(), 40);
        assert_eq!(doc.paragraphs()[0].base_index(), Some(0));
        assert_eq!(doc.paragraphs()[1].base_index(), Some(0));
        // Survival of the base is split between the halves; the oracle
        // sums token origins, so no content is lost to the split.
        let s0 = doc.paragraphs()[0].base_survival();
        let s1 = doc.paragraphs()[1].base_survival();
        assert!((s0 + s1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_tokens_and_keeps_majority_lineage() {
        let a = Paragraph::from_base_words(0, (0..30).map(|i| format!("a{i}")));
        let b = Paragraph::from_base_words(1, (0..10).map(|i| format!("b{i}")));
        let mut doc = Document::new("d", vec![a, b]);
        merge_paragraphs(&mut doc, 0);
        assert_eq!(doc.paragraphs().len(), 1);
        assert_eq!(doc.paragraphs()[0].len(), 40);
        // The bigger contributor (paragraph 0) keeps the lineage.
        assert_eq!(doc.paragraphs()[0].base_index(), Some(0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = EditProfile::frozen();
        let b = EditProfile::rewrite();
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.word_replace_rate - b.word_replace_rate / 2.0).abs() < 1e-12);
    }

    #[test]
    fn revisions_are_deterministic() {
        let run = || {
            let mut gen = TextGen::new(16);
            let mut doc = base_doc(&mut gen);
            for _ in 0..10 {
                apply_revision(&mut doc, &EditProfile::churning(), &mut gen);
            }
            doc.text()
        };
        assert_eq!(run(), run());
    }
}
