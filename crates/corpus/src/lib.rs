//! Deterministic synthetic corpora for the BrowserFlow evaluation.
//!
//! The paper evaluates imprecise data flow tracking on datasets that are
//! not redistributable (Wikipedia revision dumps, iPhone and MySQL manual
//! versions, Project Gutenberg e-books — Table 1). This crate provides
//! *seeded, reproducible* substitutes that preserve the property the
//! evaluation measures: **how detected disclosure decays as text is
//! edited across revisions**, with an exact, mechanical ground truth.
//!
//! - [`textgen`] generates prose-like text from a seeded RNG: a closed
//!   function-word lexicon plus an unbounded syllable-built content
//!   vocabulary, so corpora can range from kilobytes to hundreds of
//!   megabytes of high-entropy text.
//! - [`document`] models documents as paragraphs of *tokens*, where every
//!   token remembers whether it survives unmodified from the base
//!   revision. That per-token provenance is the ground truth.
//! - [`edits`] applies revision-style edit operations (word replacement,
//!   sentence deletion/insertion, paragraph insertion/removal, reordering)
//!   according to an [`edits::EditProfile`].
//! - [`revisions`] chains edits into revision histories mimicking stable
//!   and churning Wikipedia articles or manual chapters.
//! - [`datasets`] assembles the Table 1 dataset equivalents.
//!
//! # Example
//!
//! ```rust
//! use browserflow_corpus::datasets::{ManualChapterKind, ManualsDataset};
//!
//! let manuals = ManualsDataset::generate(42);
//! let chapter = manuals.chapter(ManualChapterKind::MySqlWhatsMySql);
//! // The "What's MySQL" chapter barely changes across versions: the last
//! // version still discloses almost all base paragraphs.
//! let truth = chapter.ground_truth(3, 0.5);
//! assert!(truth.disclosed_fraction() > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod document;
pub mod edits;
pub mod revisions;
pub mod textgen;

pub use document::{Document, Paragraph, Token};
pub use edits::EditProfile;
pub use revisions::{ground_truth_of, CheckpointChain, GroundTruth, RevisionChain};
pub use textgen::TextGen;
