//! Revision chains and the ground-truth oracle.

use crate::document::Document;
use crate::edits::{apply_revision, EditProfile};
use crate::textgen::TextGen;

/// A document together with its full revision history.
///
/// Revision 0 is the base document; revision `i+1` is revision `i` with
/// one [`EditProfile`]'s worth of edits applied. Token provenance is
/// preserved across the chain, so the exact surviving fraction of every
/// base paragraph can be queried at every revision.
///
/// # Example
///
/// ```rust
/// use browserflow_corpus::{EditProfile, RevisionChain, TextGen};
///
/// let mut gen = TextGen::new(1);
/// let chain = RevisionChain::generate(&mut gen, "article", 8, 5, 20, &EditProfile::stable());
/// assert_eq!(chain.len(), 21); // base + 20 revisions
/// // A stable article still discloses most base paragraphs at the end.
/// let truth = chain.ground_truth(20, 0.5);
/// assert!(truth.disclosed_fraction() > 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct RevisionChain {
    revisions: Vec<Document>,
}

impl RevisionChain {
    /// Generates a chain: a base document of `paragraphs` paragraphs
    /// (`sentences` sentences each) followed by `revision_count` revisions
    /// under `profile`.
    pub fn generate(
        gen: &mut TextGen,
        title: &str,
        paragraphs: usize,
        sentences: usize,
        revision_count: usize,
        profile: &EditProfile,
    ) -> Self {
        let base = Document::generate(gen, title, paragraphs, sentences);
        Self::evolve(gen, base, revision_count, profile)
    }

    /// Evolves an existing base document through `revision_count`
    /// revisions under `profile`.
    pub fn evolve(
        gen: &mut TextGen,
        base: Document,
        revision_count: usize,
        profile: &EditProfile,
    ) -> Self {
        Self::evolve_with_schedule(gen, base, &vec![*profile; revision_count])
    }

    /// Evolves a base document with a per-revision profile schedule
    /// (one entry per revision). Used for manual chapters whose churn
    /// varies between versions.
    pub fn evolve_with_schedule(
        gen: &mut TextGen,
        base: Document,
        schedule: &[EditProfile],
    ) -> Self {
        let mut revisions = Vec::with_capacity(schedule.len() + 1);
        revisions.push(base);
        for profile in schedule {
            let mut next = revisions.last().expect("base exists").clone();
            apply_revision(&mut next, profile, gen);
            revisions.push(next);
        }
        Self { revisions }
    }

    /// Number of stored revisions including the base.
    pub fn len(&self) -> usize {
        self.revisions.len()
    }

    /// Whether the chain is empty (never true for generated chains).
    pub fn is_empty(&self) -> bool {
        self.revisions.is_empty()
    }

    /// The base document (revision 0).
    pub fn base(&self) -> &Document {
        &self.revisions[0]
    }

    /// A specific revision.
    ///
    /// # Panics
    ///
    /// Panics if `revision >= len()`.
    pub fn revision(&self, revision: usize) -> &Document {
        &self.revisions[revision]
    }

    /// All revisions, base first.
    pub fn revisions(&self) -> &[Document] {
        &self.revisions
    }

    /// Relative difference of rendered content sizes between the base and
    /// the newest revision: `|len(newest) - len(base)| / len(base)`.
    ///
    /// This is the churn heuristic of Figure 8, which the paper uses to
    /// split articles into low- and high-variation groups.
    pub fn relative_length_change(&self) -> f64 {
        let base_len = self.base().byte_len() as f64;
        let last_len = self.revisions.last().expect("base exists").byte_len() as f64;
        if base_len == 0.0 {
            return 0.0;
        }
        (last_len - base_len).abs() / base_len
    }

    /// The ground truth at `revision`: which base paragraphs are still
    /// disclosed, defined as base-token survival of at least `cutoff`.
    ///
    /// This substitutes for the paper's human expert on the Manuals
    /// dataset and for its article-length heuristic on Wikipedia (see
    /// DESIGN.md §4): a base paragraph whose content mostly survives
    /// verbatim is "similar content", one that was rephrased away is not.
    ///
    /// # Panics
    ///
    /// Panics if `revision >= len()`.
    pub fn ground_truth(&self, revision: usize, cutoff: f64) -> GroundTruth {
        ground_truth_of(self.base(), &self.revisions[revision], cutoff)
    }
}

/// Ground truth of `revision` against `base`, read off the token
/// provenance (see [`RevisionChain::ground_truth`]).
///
/// A base paragraph's surviving fraction counts its tokens wherever they
/// ended up — splits scatter them across descendants and merges gather
/// them back, neither creating nor destroying content — so survival is
/// invariant under structural edits and only word replacement and
/// deletion lower it.
pub fn ground_truth_of(base: &Document, revision: &Document, cutoff: f64) -> GroundTruth {
    let base_count = base.paragraphs().len();
    let mut surviving = vec![0usize; base_count];
    for paragraph in revision.paragraphs() {
        for token in paragraph.tokens() {
            if let Some(origin) = token.origin() {
                if origin < base_count {
                    surviving[origin] += 1;
                }
            }
        }
    }
    let survival = surviving
        .iter()
        .zip(base.paragraphs())
        .map(|(&count, base_paragraph)| {
            if base_paragraph.is_empty() {
                0.0
            } else {
                (count as f64 / base_paragraph.len() as f64).min(1.0)
            }
        })
        .collect();
    GroundTruth { survival, cutoff }
}

/// A revision history that keeps only selected snapshots.
///
/// [`RevisionChain`] stores every revision, which is convenient for tests
/// but needs O(revisions) memory — the paper's Wikipedia scale (100
/// articles × 1000 revisions) would not fit. `CheckpointChain` evolves the
/// document in place and snapshots it only at the requested revision
/// numbers.
#[derive(Debug, Clone)]
pub struct CheckpointChain {
    base: Document,
    snapshots: Vec<(usize, Document)>,
}

impl CheckpointChain {
    /// Generates a fresh base document and evolves it for
    /// `max(checkpoints)` revisions under `profile`, snapshotting at each
    /// checkpoint (checkpoint 0 = the base itself; duplicates ignored).
    pub fn generate(
        gen: &mut TextGen,
        title: &str,
        paragraphs: usize,
        sentences: usize,
        profile: &EditProfile,
        checkpoints: &[usize],
    ) -> Self {
        let base = Document::generate(gen, title, paragraphs, sentences);
        let mut wanted: Vec<usize> = checkpoints.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let last = wanted.last().copied().unwrap_or(0);
        let mut snapshots = Vec::with_capacity(wanted.len());
        let mut current = base.clone();
        if wanted.first() == Some(&0) {
            snapshots.push((0, base.clone()));
        }
        for revision in 1..=last {
            apply_revision(&mut current, profile, gen);
            if wanted.binary_search(&revision).is_ok() {
                snapshots.push((revision, current.clone()));
            }
        }
        Self { base, snapshots }
    }

    /// The base document (revision 0).
    pub fn base(&self) -> &Document {
        &self.base
    }

    /// The snapshots as (revision number, document), ascending.
    pub fn snapshots(&self) -> &[(usize, Document)] {
        &self.snapshots
    }

    /// Ground truth of the snapshot at `revision` (must be a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `revision` was not snapshotted.
    pub fn ground_truth(&self, revision: usize, cutoff: f64) -> GroundTruth {
        let (_, document) = self
            .snapshots
            .iter()
            .find(|(r, _)| *r == revision)
            .expect("revision was snapshotted");
        ground_truth_of(&self.base, document, cutoff)
    }

    /// Relative length change between the base and the newest snapshot
    /// (the Figure 8 churn heuristic).
    pub fn relative_length_change(&self) -> f64 {
        let base_len = self.base.byte_len() as f64;
        let last_len = self
            .snapshots
            .last()
            .map(|(_, d)| d.byte_len() as f64)
            .unwrap_or(base_len);
        if base_len == 0.0 {
            return 0.0;
        }
        (last_len - base_len).abs() / base_len
    }
}

/// Ground-truth disclosure of base paragraphs by one revision.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    survival: Vec<f64>,
    cutoff: f64,
}

impl GroundTruth {
    /// Creates a ground truth directly from survival fractions (used by
    /// tests and by datasets that assemble revisions manually).
    pub fn from_survival(survival: Vec<f64>, cutoff: f64) -> Self {
        Self { survival, cutoff }
    }

    /// Number of base paragraphs.
    pub fn len(&self) -> usize {
        self.survival.len()
    }

    /// Whether there are no base paragraphs.
    pub fn is_empty(&self) -> bool {
        self.survival.is_empty()
    }

    /// Surviving fraction of base paragraph `index`.
    pub fn survival(&self, index: usize) -> f64 {
        self.survival[index]
    }

    /// Whether base paragraph `index` counts as disclosed.
    pub fn is_disclosed(&self, index: usize) -> bool {
        self.survival[index] >= self.cutoff
    }

    /// Indices of disclosed base paragraphs.
    pub fn disclosed(&self) -> Vec<usize> {
        (0..self.survival.len())
            .filter(|&i| self.is_disclosed(i))
            .collect()
    }

    /// Number of disclosed base paragraphs.
    pub fn disclosed_count(&self) -> usize {
        self.disclosed().len()
    }

    /// Fraction of base paragraphs disclosed (`0.0` when there are none).
    pub fn disclosed_fraction(&self) -> f64 {
        if self.survival.is_empty() {
            return 0.0;
        }
        self.disclosed_count() as f64 / self.survival.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_revision_discloses_everything() {
        let mut gen = TextGen::new(21);
        let chain = RevisionChain::generate(&mut gen, "a", 6, 4, 5, &EditProfile::stable());
        let truth = chain.ground_truth(0, 0.5);
        assert_eq!(truth.disclosed_count(), 6);
        assert_eq!(truth.disclosed_fraction(), 1.0);
        for i in 0..6 {
            assert_eq!(truth.survival(i), 1.0);
        }
    }

    #[test]
    fn frozen_chain_never_loses_disclosure() {
        let mut gen = TextGen::new(22);
        let chain = RevisionChain::generate(&mut gen, "a", 6, 4, 10, &EditProfile::frozen());
        for r in 0..chain.len() {
            assert_eq!(chain.ground_truth(r, 0.99).disclosed_fraction(), 1.0);
        }
        assert_eq!(chain.relative_length_change(), 0.0);
    }

    #[test]
    fn rewrite_chain_loses_disclosure() {
        let mut gen = TextGen::new(23);
        let chain = RevisionChain::generate(&mut gen, "a", 8, 5, 12, &EditProfile::rewrite());
        let early = chain.ground_truth(1, 0.5).disclosed_fraction();
        let late = chain.ground_truth(12, 0.5).disclosed_fraction();
        assert!(late < early, "late {late} not below early {early}");
        assert!(
            late < 0.4,
            "heavy rewriting should erase most paragraphs, got {late}"
        );
    }

    #[test]
    fn ground_truth_survival_is_monotone_under_cutoff() {
        let truth = GroundTruth::from_survival(vec![0.0, 0.4, 0.6, 1.0], 0.5);
        assert_eq!(truth.disclosed(), vec![2, 3]);
        let looser = GroundTruth::from_survival(vec![0.0, 0.4, 0.6, 1.0], 0.3);
        assert!(looser.disclosed_count() >= truth.disclosed_count());
    }

    #[test]
    fn chains_are_deterministic() {
        let build = || {
            let mut gen = TextGen::new(24);
            RevisionChain::generate(&mut gen, "a", 5, 4, 8, &EditProfile::churning())
        };
        let a = build();
        let b = build();
        for r in 0..a.len() {
            assert_eq!(a.revision(r).text(), b.revision(r).text());
        }
    }

    #[test]
    fn checkpoint_chain_matches_full_chain() {
        // Same seed, same profile: the checkpointed snapshots must be
        // byte-identical to the corresponding full-chain revisions.
        let profile = EditProfile::churning();
        let checkpoints = [0usize, 3, 7, 10];
        let full = {
            let mut gen = TextGen::new(77);
            RevisionChain::generate(&mut gen, "a", 6, 4, 10, &profile)
        };
        let sparse = {
            let mut gen = TextGen::new(77);
            CheckpointChain::generate(&mut gen, "a", 6, 4, &profile, &checkpoints)
        };
        assert_eq!(sparse.snapshots().len(), checkpoints.len());
        for (revision, document) in sparse.snapshots() {
            assert_eq!(
                document.text(),
                full.revision(*revision).text(),
                "snapshot {revision} diverges"
            );
            assert_eq!(
                sparse.ground_truth(*revision, 0.5),
                full.ground_truth(*revision, 0.5)
            );
        }
        assert!((sparse.relative_length_change() - full.relative_length_change()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "snapshotted")]
    fn checkpoint_ground_truth_requires_a_snapshot() {
        let mut gen = TextGen::new(78);
        let chain = CheckpointChain::generate(&mut gen, "a", 3, 3, &EditProfile::stable(), &[0, 5]);
        chain.ground_truth(3, 0.5);
    }

    #[test]
    fn schedule_lengths() {
        let mut gen = TextGen::new(25);
        let base = Document::generate(&mut gen, "m", 4, 3);
        let schedule = [
            EditProfile::frozen(),
            EditProfile::stable(),
            EditProfile::rewrite(),
        ];
        let chain = RevisionChain::evolve_with_schedule(&mut gen, base, &schedule);
        assert_eq!(chain.len(), 4);
        // Frozen first step: revision 1 identical to base.
        assert_eq!(chain.revision(1).text(), chain.base().text());
    }
}
