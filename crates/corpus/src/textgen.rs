//! Seeded prose-like text generation.
//!
//! Sentences are built from a small closed set of English function words
//! interleaved with content words drawn from an unbounded syllable-built
//! vocabulary. The result is not English, but it has English-like
//! statistics where fingerprinting is concerned: word lengths of 2–12
//! characters, whitespace and punctuation to be normalised away, and an
//! effectively unbounded vocabulary so that large corpora produce tens of
//! millions of *distinct* n-gram hashes (needed for the Figure 13
//! scalability experiment).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FUNCTION_WORDS: &[&str] = &[
    "the",
    "a",
    "an",
    "of",
    "to",
    "in",
    "for",
    "with",
    "on",
    "at",
    "from",
    "by",
    "about",
    "into",
    "over",
    "after",
    "under",
    "between",
    "and",
    "or",
    "but",
    "so",
    "because",
    "while",
    "although",
    "however",
    "therefore",
    "moreover",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "has",
    "have",
    "had",
    "will",
    "would",
    "can",
    "could",
    "should",
    "may",
    "might",
    "must",
    "this",
    "that",
    "these",
    "those",
    "it",
    "its",
    "they",
    "their",
    "we",
    "our",
    "you",
    "your",
    "which",
    "when",
    "where",
    "who",
    "whose",
    "what",
    "how",
    "not",
    "no",
    "only",
    "also",
    "more",
    "most",
    "some",
    "any",
    "each",
    "every",
    "other",
    "such",
    "than",
    "then",
    "very",
];

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "cr", "dr", "fr", "gr", "pr", "tr", "bl", "cl", "fl", "gl", "pl", "sl", "sh", "ch", "th", "st",
    "sp", "sc", "sk", "sm", "sn", "sw",
];

const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou", "oa"];

const CODAS: &[&str] = &[
    "", "", "", "n", "r", "s", "t", "l", "m", "d", "k", "p", "g", "nd", "nt", "st", "rs", "ck",
    "ng", "rt", "ll", "ss",
];

/// A deterministic prose generator.
///
/// Two generators created with the same seed produce identical text.
///
/// # Example
///
/// ```rust
/// use browserflow_corpus::TextGen;
///
/// let mut a = TextGen::new(7);
/// let mut b = TextGen::new(7);
/// assert_eq!(a.sentence(), b.sentence());
/// ```
#[derive(Debug, Clone)]
pub struct TextGen {
    rng: StdRng,
}

impl TextGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator that continues from an existing RNG state.
    pub fn from_rng(rng: StdRng) -> Self {
        Self { rng }
    }

    /// Generates one word: mostly novel content words, with function words
    /// mixed in at roughly English frequency.
    pub fn word(&mut self) -> String {
        if self.rng.gen_bool(0.4) {
            FUNCTION_WORDS[self.rng.gen_range(0..FUNCTION_WORDS.len())].to_string()
        } else {
            self.content_word()
        }
    }

    /// Generates a syllable-built content word (2–4 syllables).
    pub fn content_word(&mut self) -> String {
        let syllables = self.rng.gen_range(2..=4);
        let mut word = String::new();
        for _ in 0..syllables {
            word.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
            word.push_str(NUCLEI[self.rng.gen_range(0..NUCLEI.len())]);
            word.push_str(CODAS[self.rng.gen_range(0..CODAS.len())]);
        }
        word
    }

    /// Generates a sentence of 6–18 words as a vector (no punctuation).
    pub fn sentence_words(&mut self) -> Vec<String> {
        let len = self.rng.gen_range(6..=18);
        (0..len).map(|_| self.word()).collect()
    }

    /// Generates a sentence as text, capitalised and terminated.
    pub fn sentence(&mut self) -> String {
        let words = self.sentence_words();
        let mut text = words.join(" ");
        if let Some(first) = text.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
        text.push('.');
        text
    }

    /// Generates a paragraph of `sentences` sentences as text.
    pub fn paragraph(&mut self, sentences: usize) -> String {
        (0..sentences)
            .map(|_| self.sentence())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Generates a title of 2–5 content words.
    pub fn title(&mut self) -> String {
        let len = self.rng.gen_range(2..=5);
        let words: Vec<String> = (0..len).map(|_| self.content_word()).collect();
        words.join(" ")
    }

    /// Access to the underlying RNG for callers that need coin flips with
    /// the same deterministic stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TextGen::new(1);
        let mut b = TextGen::new(1);
        for _ in 0..20 {
            assert_eq!(a.word(), b.word());
        }
        assert_eq!(TextGen::new(2).paragraph(3), TextGen::new(2).paragraph(3));
        assert_ne!(TextGen::new(1).paragraph(3), TextGen::new(2).paragraph(3));
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let mut gen = TextGen::new(3);
        for _ in 0..200 {
            let word = gen.word();
            assert!(!word.is_empty());
            assert!(word.chars().all(|c| c.is_ascii_lowercase()), "{word}");
        }
    }

    #[test]
    fn vocabulary_is_large() {
        let mut gen = TextGen::new(4);
        let distinct: HashSet<String> = (0..5000).map(|_| gen.content_word()).collect();
        // Syllable construction yields a huge vocabulary; collisions are rare.
        assert!(
            distinct.len() > 4000,
            "only {} distinct words",
            distinct.len()
        );
    }

    #[test]
    fn sentences_are_capitalised_and_terminated() {
        let mut gen = TextGen::new(5);
        for _ in 0..20 {
            let s = gen.sentence();
            assert!(s.starts_with(char::is_uppercase), "{s}");
            assert!(s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn paragraph_has_requested_sentence_count() {
        let mut gen = TextGen::new(6);
        let p = gen.paragraph(7);
        assert_eq!(p.matches(". ").count() + 1, 7);
    }
}
