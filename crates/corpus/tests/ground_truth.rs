//! Integration tests of the provenance ground-truth oracle across edit
//! types, and the checkpoint/full chain equivalence under every profile.

use browserflow_corpus::datasets::{WikipediaConfig, WikipediaDataset};
use browserflow_corpus::{
    edits, CheckpointChain, Document, EditProfile, Paragraph, RevisionChain, TextGen,
};

#[test]
fn oracle_tracks_survival_through_split_then_edit() {
    let mut gen = TextGen::new(7001);
    let words: Vec<String> = (0..60).map(|i| format!("w{i}")).collect();
    let mut doc = Document::new("d", vec![Paragraph::from_base_words(0, words)]);
    // Split the paragraph; the base is still fully disclosed (its best
    // descendant has all its half, and max() over descendants covers it
    // only partially — survival is per-descendant).
    edits::split_paragraph(&mut doc, 0, &mut gen);
    assert_eq!(doc.paragraphs().len(), 2);
    let best = doc
        .paragraphs()
        .iter()
        .map(|p| p.base_survival())
        .fold(0.0f64, f64::max);
    assert!(best < 1.0, "split halves each hold part of the base");
    assert!(best > 0.0);

    // Merging back restores full survival in a single descendant.
    edits::merge_paragraphs(&mut doc, 0);
    assert_eq!(doc.paragraphs().len(), 1);
    assert_eq!(doc.paragraphs()[0].base_survival(), 1.0);
}

#[test]
fn oracle_counts_replacements_exactly() {
    let mut gen = TextGen::new(7002);
    let mut paragraph = Paragraph::from_base_words(0, (0..200).map(|i| format!("w{i}")));
    edits::replace_words(&mut paragraph, 0.25, &mut gen);
    // Run-based replacement with a visited mask replaces exactly the
    // target count of distinct positions.
    assert_eq!(paragraph.surviving_base_tokens(), 150);
    assert_eq!(paragraph.base_survival(), 0.75);
    // A second pass replaces a quarter of the *length* again, but may hit
    // already-fresh positions; survival can only go down.
    edits::replace_words(&mut paragraph, 0.25, &mut gen);
    assert!(paragraph.base_survival() <= 0.75);
    assert!(paragraph.base_survival() >= 0.45);
}

#[test]
fn frozen_checkpoints_equal_their_base_under_every_builtin_profile() {
    // For every built-in profile, checkpoint generation is deterministic
    // and agrees with the full chain.
    for (name, profile) in [
        ("stable", EditProfile::stable()),
        ("churning", EditProfile::churning()),
        ("rewrite", EditProfile::rewrite()),
        ("frozen", EditProfile::frozen()),
    ] {
        let full = {
            let mut gen = TextGen::new(7003);
            RevisionChain::generate(&mut gen, name, 6, 4, 15, &profile)
        };
        let sparse = {
            let mut gen = TextGen::new(7003);
            CheckpointChain::generate(&mut gen, name, 6, 4, &profile, &[0, 5, 10, 15])
        };
        for (revision, document) in sparse.snapshots() {
            assert_eq!(
                document.text(),
                full.revision(*revision).text(),
                "{name} revision {revision}"
            );
            assert_eq!(
                sparse.ground_truth(*revision, 0.5),
                full.ground_truth(*revision, 0.5),
                "{name} ground truth at {revision}"
            );
        }
    }
}

#[test]
fn ground_truth_is_monotone_in_the_cutoff() {
    let mut gen = TextGen::new(7004);
    let chain = RevisionChain::generate(&mut gen, "a", 10, 4, 20, &EditProfile::churning());
    for revision in [5usize, 10, 20] {
        let mut previous = usize::MAX;
        for cutoff in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let disclosed = chain.ground_truth(revision, cutoff).disclosed_count();
            assert!(
                disclosed <= previous,
                "raising the cutoff must not increase disclosures (rev {revision})"
            );
            previous = disclosed;
        }
    }
}

#[test]
fn ground_truth_is_weakly_decreasing_along_a_chain_without_reinsertion() {
    // Profiles without sentence/paragraph insertion can only destroy base
    // content, so per-paragraph survival never increases over revisions.
    let profile = EditProfile {
        sentence_insert_prob: 0.0,
        paragraph_insert_prob: 0.0,
        ..EditProfile::churning()
    };
    let mut gen = TextGen::new(7005);
    let chain = RevisionChain::generate(&mut gen, "a", 8, 4, 25, &profile);
    let base_count = chain.base().paragraphs().len();
    for index in 0..base_count {
        let mut previous = f64::INFINITY;
        for revision in 0..chain.len() {
            let survival = chain.ground_truth(revision, 0.5).survival(index);
            assert!(
                survival <= previous + 1e-12,
                "paragraph {index} survival rose at revision {revision}"
            );
            previous = survival;
        }
    }
}

#[test]
fn wikipedia_dataset_ground_truth_matches_detection_direction() {
    // Sanity link between the oracle and the churn levels: low-churn
    // articles end with higher mean survival than high-churn ones.
    let config = WikipediaConfig {
        articles: 6,
        revisions: 40,
        paragraphs: 10,
        sentences: 4,
        high_churn_fraction: 0.5,
    };
    let wiki = WikipediaDataset::generate(7006, &config);
    let mean_final_survival = |churn| {
        let mut total = 0.0;
        let mut count = 0;
        for article in wiki.by_churn(churn) {
            let truth = article.chain.ground_truth(config.revisions, 0.0);
            for i in 0..truth.len() {
                total += truth.survival(i);
                count += 1;
            }
        }
        total / count as f64
    };
    let low = mean_final_survival(browserflow_corpus::datasets::ChurnLevel::Low);
    let high = mean_final_survival(browserflow_corpus::datasets::ChurnLevel::High);
    assert!(
        low > high,
        "low-churn survival {low:.2} must exceed high-churn {high:.2}"
    );
}
