//! A blocking client for the `bfd` socket protocol (used by `bfctl` and
//! the service load generator).

use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{read_reply, write_request, FrameError, ParagraphSlot, Reply, Request};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach (or stay connected to) the daemon.
    Io(io::Error),
    /// The daemon replied with something unreadable, or hung up before
    /// replying.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot reach bfd: {e}"),
            Self::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => Self::Io(io),
            other => Self::Protocol(other.to_string()),
        }
    }
}

/// One connection to a running `bfd`.
///
/// The protocol is strict request→reply, so a client is cheap state: a
/// stream and nothing else. Clone-free; open more clients for more
/// concurrency.
pub struct DaemonClient {
    stream: UnixStream,
}

impl DaemonClient {
    /// Connects to the daemon socket.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(socket_path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Ok(Self {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] when the daemon
    /// hangs up before replying.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        write_request(&mut self.stream, request)?;
        read_reply(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("daemon closed before replying".to_string()))
    }

    /// Liveness probe; returns the daemon's protocol version.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn ping(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Ping)? {
            Reply::Pong { version } => Ok(version),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Observes a paragraph in a tenant's flow.
    ///
    /// # Errors
    ///
    /// Transport failures or a daemon-side error reply.
    pub fn observe(
        &mut self,
        tenant: &str,
        service: &str,
        document: &str,
        index: usize,
        text: &str,
    ) -> Result<(), ClientError> {
        match self.request(&Request::Observe {
            tenant: tenant.to_string(),
            service: service.to_string(),
            document: document.to_string(),
            index,
            text: text.to_string(),
        })? {
            Reply::Observed => Ok(()),
            Reply::Error { message } => Err(ClientError::Protocol(message)),
            other => Err(unexpected("Observed", &other)),
        }
    }

    /// Observes a whole document's paragraph slots in one frame (the
    /// bulk-ingest counterpart of [`DaemonClient::observe`]).
    ///
    /// # Errors
    ///
    /// Transport failures or a daemon-side error reply.
    pub fn observe_batch(
        &mut self,
        tenant: &str,
        service: &str,
        document: &str,
        paragraphs: Vec<ParagraphSlot>,
    ) -> Result<(), ClientError> {
        match self.request(&Request::ObserveBatch {
            tenant: tenant.to_string(),
            service: service.to_string(),
            document: document.to_string(),
            paragraphs,
        })? {
            Reply::Observed => Ok(()),
            Reply::Error { message } => Err(ClientError::Protocol(message)),
            other => Err(unexpected("Observed", &other)),
        }
    }

    /// Checks a batch of paragraphs; returns the raw reply so callers
    /// can distinguish decisions from backpressure.
    ///
    /// # Errors
    ///
    /// Transport failures only — backpressure is a successful reply.
    pub fn check(
        &mut self,
        tenant: &str,
        service: &str,
        document: &str,
        paragraphs: Vec<ParagraphSlot>,
    ) -> Result<Reply, ClientError> {
        self.request(&Request::Check {
            tenant: tenant.to_string(),
            service: service.to_string(),
            document: document.to_string(),
            paragraphs,
        })
    }

    /// Fetches a tenant's cross-service lineage graph.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] on a daemon-side
    /// error reply.
    pub fn lineage(
        &mut self,
        tenant: &str,
    ) -> Result<(Vec<browserflow::FlowEdge>, u64), ClientError> {
        match self.request(&Request::Lineage {
            tenant: tenant.to_string(),
        })? {
            Reply::Lineage { edges, clock } => Ok((edges, clock)),
            Reply::Error { message } => Err(ClientError::Protocol(message)),
            other => Err(unexpected("Lineage", &other)),
        }
    }

    /// Fetches a tenant's exfiltration alerts.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] on a daemon-side
    /// error reply.
    pub fn alerts(
        &mut self,
        tenant: &str,
    ) -> Result<Vec<browserflow::ExfiltrationAlert>, ClientError> {
        match self.request(&Request::Alerts {
            tenant: tenant.to_string(),
        })? {
            Reply::Alerts { alerts } => Ok(alerts),
            Reply::Error { message } => Err(ClientError::Protocol(message)),
            other => Err(unexpected("Alerts", &other)),
        }
    }

    /// Submits a coalescing keystroke check.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn keystroke(
        &mut self,
        tenant: &str,
        service: &str,
        document: &str,
        index: usize,
        text: &str,
    ) -> Result<Reply, ClientError> {
        self.request(&Request::Keystroke {
            tenant: tenant.to_string(),
            service: service.to_string(),
            document: document.to_string(),
            index,
            text: text.to_string(),
        })
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
