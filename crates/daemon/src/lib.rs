//! **bfd** — the multi-tenant BrowserFlow disclosure daemon.
//!
//! One process serves many tenants, each with an isolated
//! [`browserflow::BrowserFlow`] (own stores, labels, audit trail) behind
//! its own bounded decision pipeline. The front-end is a Unix domain
//! socket speaking length-prefixed JSON frames ([`protocol`]); admission
//! is backpressure-correct — quota and queue refusals are structured
//! replies, never silent drops ([`browserflow::tenancy`]).
//!
//! - [`server`] — the daemon: accept loop, per-connection handlers,
//!   graceful drain with per-tenant sealed persistence.
//! - [`client`] — a blocking client ([`client::DaemonClient`]) used by
//!   `bfctl` and the service load generator.
//! - [`protocol`] — the wire format and its fail-closed frame codec.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, DaemonClient};
pub use protocol::{
    ParagraphSlot, Reply, Request, WireDecision, WireDrainReport, WireTenant, WireViolation,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Daemon, DaemonConfig, ShutdownHandle};
