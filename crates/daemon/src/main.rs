//! `bfd` — the BrowserFlow disclosure daemon.
//!
//! ```text
//! bfd --socket /run/bfd.sock [--state-dir /var/lib/bfd] [--key <64-hex>]
//!     [--tiered-state] [--snapshot-interval <ms>]
//! ```
//!
//! Serves the framed-socket protocol until SIGTERM/SIGINT (or an
//! in-band `drain` request), then drains every tenant gracefully and —
//! when a state directory is configured — persists each tenant as a
//! sealed snapshot that the next start restores.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use browserflow_daemon::{Daemon, DaemonConfig};
use browserflow_store::StoreKey;

/// Set by the signal handler; bridged to the daemon's shutdown handle.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: a relaxed store.
    SIGNALLED.store(true, Ordering::Relaxed);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    // POSIX `signal(2)`. The container has no libc crate; declaring the
    // symbol directly keeps the daemon dependency-free.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    // SAFETY: `signal` is the POSIX API with the documented signature;
    // the handler only performs an atomic store.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("bfd: {message}");
            eprintln!(
                "usage: bfd --socket <path> [--state-dir <dir>] [--key <64-hex>] \
                 [--tiered-state] [--snapshot-interval <ms>]"
            );
            return ExitCode::from(2);
        }
    };

    let daemon = match Daemon::bind(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("bfd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for tenant in daemon.restored_tenants() {
        eprintln!("bfd: restored tenant {tenant}");
    }

    install_signal_handlers();
    let handle = daemon.shutdown_handle();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::Relaxed) {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    eprintln!("bfd: serving");
    match daemon.run() {
        Ok(reports) => {
            for report in &reports {
                if report.error.is_empty() {
                    eprintln!(
                        "bfd: drained tenant {} ({} checks completed){}",
                        report.tenant,
                        report.completed,
                        if report.persisted_to.is_empty() {
                            String::new()
                        } else {
                            format!(", persisted to {}", report.persisted_to)
                        }
                    );
                } else {
                    eprintln!(
                        "bfd: tenant {} drain error: {}",
                        report.tenant, report.error
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bfd: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut socket: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut key_hex: Option<String> = None;
    let mut tiered_state = false;
    let mut snapshot_interval_ms: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => socket = Some(take_value(&mut iter, "--socket")?),
            "--state-dir" => state_dir = Some(take_value(&mut iter, "--state-dir")?),
            "--key" => key_hex = Some(take_value(&mut iter, "--key")?),
            "--tiered-state" => tiered_state = true,
            "--snapshot-interval" => {
                let value = take_value(&mut iter, "--snapshot-interval")?;
                let ms: u64 = value.parse().map_err(|_| {
                    format!("--snapshot-interval expects milliseconds, got {value:?}")
                })?;
                if ms == 0 {
                    return Err("--snapshot-interval must be at least 1 ms".to_string());
                }
                snapshot_interval_ms = Some(ms);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let socket = socket.ok_or_else(|| "--socket is required".to_string())?;
    if snapshot_interval_ms.is_some() && state_dir.is_none() {
        return Err("--snapshot-interval requires --state-dir".to_string());
    }
    let mut config = DaemonConfig::new(socket);
    config.state_root = state_dir.map(Into::into);
    config.tiered_state = tiered_state;
    config.snapshot_interval = snapshot_interval_ms.map(Duration::from_millis);
    if let Some(hex) = key_hex {
        config.store_key = StoreKey::from_bytes(parse_key(&hex)?);
    }
    Ok(config)
}

fn take_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    iter.next()
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_key(hex: &str) -> Result<[u8; 32], String> {
    if hex.len() != 64 {
        return Err(format!("--key must be 64 hex chars, got {}", hex.len()));
    }
    let mut key = [0u8; 32];
    for (i, byte) in key.iter_mut().enumerate() {
        let pair = &hex[2 * i..2 * i + 2];
        *byte = u8::from_str_radix(pair, 16).map_err(|_| format!("bad hex in --key: {pair:?}"))?;
    }
    Ok(key)
}
