//! The `bfd` wire protocol: length-prefixed JSON frames over a Unix
//! domain socket.
//!
//! Every frame is a 4-byte little-endian length followed by that many
//! bytes of JSON (one [`Request`] or [`Reply`]). The length is capped at
//! [`MAX_FRAME_LEN`]; both sides treat the peer as untrusted and fail
//! closed on truncated, oversized or malformed frames — the decode path
//! never panics, never over-allocates ahead of received bytes, and never
//! silently resynchronises.
//!
//! The protocol is strictly request→reply: the client writes one frame
//! and reads exactly one frame back. Backpressure is in-band — an
//! admission refusal is a [`Reply::Backpressure`] frame, not a closed
//! socket, so an overloaded daemon is indistinguishable from a lossless
//! one at the transport layer.

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

/// Upper bound on a frame body (16 MiB): generous for document batches,
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Protocol version spoken by this build (replied to `Ping`).
pub const PROTOCOL_VERSION: &str = "bfd/1";

// --- Frame codec ----------------------------------------------------------

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure.
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge {
        /// The hostile length prefix.
        declared: u64,
    },
    /// The frame body was not valid JSON for the expected type.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frame transport error: {e}"),
            Self::Truncated => f.write_str("peer closed the connection mid-frame"),
            Self::TooLarge { declared } => {
                write!(f, "frame length {declared} exceeds {MAX_FRAME_LEN} bytes")
            }
            Self::Malformed(detail) => write!(f, "malformed frame: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes one `len ‖ body` frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when `body` exceeds [`MAX_FRAME_LEN`];
/// otherwise transport errors.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            declared: body.len() as u64,
        });
    }
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame body. Returns `Ok(None)` on a clean EOF *before* the
/// first header byte (the peer hung up between requests).
///
/// # Errors
///
/// [`FrameError::Truncated`] when the peer disappears mid-frame,
/// [`FrameError::TooLarge`] on a hostile length prefix, transport errors
/// otherwise. Timeout errors (`WouldBlock`/`TimedOut`) surface as
/// [`FrameError::Io`] so pollers can keep their own loop.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(reader, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => return Err(FrameError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            declared: len as u64,
        });
    }
    // Read incrementally rather than pre-allocating `len` bytes: the
    // length field is attacker-controlled until the body actually
    // arrives.
    let mut body = Vec::new();
    let mut chunk = [0u8; 8192];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        let got = reader.read(&mut chunk[..want])?;
        if got == 0 {
            return Err(FrameError::Truncated);
        }
        body.extend_from_slice(&chunk[..got]);
    }
    Ok(Some(body))
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        let got = reader.read(&mut buf[filled..])?;
        if got == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial
            });
        }
        filled += got;
    }
    Ok(ReadOutcome::Full)
}

/// Serialises and writes one request frame.
///
/// # Errors
///
/// Transport errors from [`write_frame`].
pub fn write_request(writer: &mut impl Write, request: &Request) -> Result<(), FrameError> {
    let body = serde_json::to_vec(request).map_err(|e| FrameError::Malformed(e.to_string()))?;
    write_frame(writer, &body)
}

/// Serialises and writes one reply frame.
///
/// # Errors
///
/// Transport errors from [`write_frame`].
pub fn write_reply(writer: &mut impl Write, reply: &Reply) -> Result<(), FrameError> {
    let body = serde_json::to_vec(reply).map_err(|e| FrameError::Malformed(e.to_string()))?;
    write_frame(writer, &body)
}

/// Reads and decodes one request frame (`Ok(None)` on clean EOF).
///
/// # Errors
///
/// [`FrameError::Malformed`] when the body is not a [`Request`].
pub fn read_request(reader: &mut impl Read) -> Result<Option<Request>, FrameError> {
    match read_frame(reader)? {
        None => Ok(None),
        Some(body) => serde_json::from_slice(&body)
            .map(Some)
            .map_err(|e| FrameError::Malformed(e.to_string())),
    }
}

/// Reads and decodes one reply frame (`Ok(None)` on clean EOF).
///
/// # Errors
///
/// [`FrameError::Malformed`] when the body is not a [`Reply`].
pub fn read_reply(reader: &mut impl Read) -> Result<Option<Reply>, FrameError> {
    match read_frame(reader)? {
        None => Ok(None),
        Some(body) => serde_json::from_slice(&body)
            .map(Some)
            .map_err(|e| FrameError::Malformed(e.to_string())),
    }
}

// --- Requests -------------------------------------------------------------

/// One indexed paragraph in a check batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParagraphSlot {
    /// The paragraph's index within the document.
    pub index: usize,
    /// The paragraph text.
    pub text: String,
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Registers a tenant with its own isolated store, labels and audit
    /// trail.
    TenantCreate {
        /// The tenant id (validated server-side).
        tenant: String,
        /// Enforcement mode: `advisory`, `block` or `encrypt`.
        mode: String,
        /// The tenant's policy as JSON (same format `bfctl policy
        /// validate` accepts).
        policy_json: String,
        /// Per-tenant in-flight quota; `0` takes the server default.
        max_in_flight: u64,
        /// Decider queue capacity; `0` takes the server default.
        queue_capacity: u64,
    },
    /// Lists registered tenants.
    TenantList,
    /// Observes (stores) a paragraph in the tenant's flow.
    Observe {
        /// The tenant.
        tenant: String,
        /// Service the paragraph appeared in.
        service: String,
        /// Document id.
        document: String,
        /// Paragraph index.
        index: usize,
        /// Paragraph text.
        text: String,
    },
    /// Observes (stores) a whole document's paragraph slots in one frame —
    /// the bulk-ingest counterpart of [`Request::Observe`]. The server
    /// lands all slots through the batched store path (one stripe-lock
    /// round-trip per touched stripe) and replies [`Reply::Observed`].
    ObserveBatch {
        /// The tenant.
        tenant: String,
        /// Service the document lives in.
        service: String,
        /// Document id.
        document: String,
        /// The paragraph slots to observe.
        paragraphs: Vec<ParagraphSlot>,
    },
    /// Checks a batch of paragraphs for disclosure before upload.
    Check {
        /// The tenant.
        tenant: String,
        /// Destination service.
        service: String,
        /// Document id.
        document: String,
        /// The paragraphs to check.
        paragraphs: Vec<ParagraphSlot>,
    },
    /// A coalescing keystroke check for one paragraph slot.
    Keystroke {
        /// The tenant.
        tenant: String,
        /// Destination service.
        service: String,
        /// Document id.
        document: String,
        /// Paragraph index.
        index: usize,
        /// Full paragraph text after the keystroke.
        text: String,
    },
    /// Pipeline counters for one tenant.
    Stats {
        /// The tenant.
        tenant: String,
    },
    /// The tenant's cross-service lineage graph: every recorded flow
    /// edge, read consistently on the tenant's worker.
    Lineage {
        /// The tenant.
        tenant: String,
    },
    /// The tenant's exfiltration alerts (multi-hop covert chains the
    /// sentinel confirmed), with their containment receipts.
    Alerts {
        /// The tenant.
        tenant: String,
    },
    /// Graceful drain: finish queued work, persist every tenant, reply
    /// with the per-tenant reports, then shut the daemon down.
    Drain,
}

// --- Replies --------------------------------------------------------------

/// One violation behind a non-allow decision, flattened for the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireViolation {
    /// The disclosing source segment (`service/document#pN` form).
    pub source: String,
    /// Measured disclosure of that source.
    pub disclosure: f64,
    /// Tags the destination service lacks.
    pub missing_tags: Vec<String>,
    /// Byte ranges of the checked text that match the source.
    pub matching_spans: Vec<(usize, usize)>,
}

/// One upload decision, flattened for the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireDecision {
    /// `allow`, `warn`, `block` or `encrypt`.
    pub action: String,
    /// The violations behind a non-allow action.
    pub violations: Vec<WireViolation>,
}

/// One registered tenant, as listed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTenant {
    /// The tenant id.
    pub tenant: String,
    /// Checks currently in flight.
    pub in_flight: u64,
    /// The tenant's in-flight quota.
    pub max_in_flight: u64,
}

/// One tenant's drain outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDrainReport {
    /// The tenant id.
    pub tenant: String,
    /// Checks the tenant completed over its lifetime.
    pub completed: u64,
    /// Where the sealed state directory was written (empty when the
    /// daemon runs without a state root).
    pub persisted_to: String,
    /// First drain/persist error, empty on success.
    pub error: String,
}

/// A server reply frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Liveness answer.
    Pong {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: String,
    },
    /// The tenant was registered.
    TenantCreated {
        /// The validated tenant id.
        tenant: String,
    },
    /// The registered tenants.
    Tenants {
        /// One entry per tenant, sorted by id.
        tenants: Vec<WireTenant>,
    },
    /// The paragraph was observed and fingerprinted.
    Observed,
    /// Decisions for a check batch, in request order.
    Decisions {
        /// One decision per requested paragraph.
        decisions: Vec<WireDecision>,
        /// Queue-to-decision latency in microseconds.
        latency_us: u64,
    },
    /// The request was refused at admission — *backpressure, not loss*.
    /// The check did not run. Transient refusals (`quota-exceeded`,
    /// `queue-full`) clear if retried after `retry_after_ms`; a
    /// `terminal` refusal (`draining`) will never succeed against this
    /// daemon instance, so `retry_after_ms` is the suggested delay
    /// before probing for a *restarted* daemon instead.
    Backpressure {
        /// `quota-exceeded`, `queue-full` or `draining`.
        reason: String,
        /// Checks in flight for the tenant at refusal time.
        in_flight: u64,
        /// The limit that refused (quota or queue capacity).
        limit: u64,
        /// Suggested retry delay — always non-zero; see `terminal` for
        /// whether a retry can succeed here at all.
        retry_after_ms: u64,
        /// `true` when the refusal is permanent for this daemon
        /// instance (the tenant is draining for good). Absent frames
        /// from older peers decode as `false`.
        #[serde(default)]
        terminal: bool,
    },
    /// A newer keystroke for the same slot superseded this check before
    /// it ran (normal coalescing, not an error).
    Superseded,
    /// Pipeline counters for one tenant.
    Stats {
        /// The decider's counters.
        pipeline: browserflow::PipelineStats,
        /// Checks currently in flight (admission view).
        in_flight: u64,
        /// The tenant's quota.
        max_in_flight: u64,
    },
    /// The tenant's lineage graph.
    Lineage {
        /// Every recorded flow edge, in deterministic (content-key)
        /// order.
        edges: Vec<browserflow::FlowEdge>,
        /// The graph's logical clock (edges recorded so far).
        clock: u64,
    },
    /// The tenant's exfiltration alerts.
    Alerts {
        /// Confirmed multi-hop covert chains, oldest first, each with
        /// its containment receipt.
        alerts: Vec<browserflow::ExfiltrationAlert>,
    },
    /// Drain finished; the daemon exits after this reply.
    Drained {
        /// Per-tenant outcomes, sorted by tenant id.
        reports: Vec<WireDrainReport>,
    },
    /// The request failed (unknown tenant, bad policy, middleware
    /// error, …).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::Check {
                tenant: "alice".into(),
                service: "gdocs".into(),
                document: "draft".into(),
                paragraphs: vec![ParagraphSlot {
                    index: 3,
                    text: "hello".into(),
                }],
            },
        )
        .unwrap();
        let mut cursor = &wire[..];
        let parsed = read_request(&mut cursor).unwrap().unwrap();
        assert!(matches!(parsed, Request::Check { ref tenant, .. } if tenant == "alice"));
        // Clean EOF after the single frame.
        assert!(read_request(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn reply_roundtrip() {
        let mut wire = Vec::new();
        write_reply(
            &mut wire,
            &Reply::Backpressure {
                reason: "queue-full".into(),
                in_flight: 7,
                limit: 8,
                retry_after_ms: 25,
                terminal: false,
            },
        )
        .unwrap();
        let parsed = read_reply(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(
            parsed,
            Reply::Backpressure {
                reason: "queue-full".into(),
                in_flight: 7,
                limit: 8,
                retry_after_ms: 25,
                terminal: false,
            }
        );
    }

    #[test]
    fn truncated_frames_fail_closed() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).unwrap();
        // Every strict prefix must error (or report clean EOF at 0..4),
        // never panic and never hand back a half-frame.
        for len in 0..wire.len() {
            match read_frame(&mut &wire[..len]) {
                Ok(None) => assert!(len == 0, "EOF only before the first header byte"),
                Ok(Some(_)) => panic!("{len}-byte prefix decoded as a full frame"),
                Err(FrameError::Truncated) => {}
                Err(other) => panic!("unexpected error on {len}-byte prefix: {other}"),
            }
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"tiny");
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn garbage_json_is_malformed_not_panic() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{not json").unwrap();
        assert!(matches!(
            read_request(&mut &wire[..]),
            Err(FrameError::Malformed(_))
        ));
    }
}
