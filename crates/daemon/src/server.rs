//! The `bfd` daemon: a Unix-socket front-end over a [`TenantRegistry`].
//!
//! One OS thread per connection, strict request→reply framing
//! ([`crate::protocol`]), and a poll-based accept loop so a SIGTERM (or
//! an in-band [`Request::Drain`]) can stop admissions, drain every
//! tenant's decider gracefully, persist per-tenant sealed snapshots and
//! exit without abandoning a single in-flight check.

use std::io::{self, Read};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use browserflow::tenancy::{AdmissionError, Tenant, TenantConfig, TenantId, TenantRegistry};
use browserflow::{
    BrowserFlow, CheckRequest, DeciderConfig, DeciderError, EnforcementMode, TimedBatch,
    UploadAction, UploadDecision, Violation,
};
use browserflow_store::StoreKey;
use browserflow_tdm::Policy;

use crate::protocol::{
    read_frame, write_reply, FrameError, Reply, Request, WireDecision, WireDrainReport, WireTenant,
    WireViolation, PROTOCOL_VERSION,
};

/// How often blocked waits (accept loop, idle connections) re-check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Suggested client retry delay for a quota refusal.
const QUOTA_RETRY_MS: u64 = 10;
/// Suggested client retry delay for a full decider queue.
const QUEUE_RETRY_MS: u64 = 25;
/// Suggested delay before probing for a *restarted* daemon after a
/// terminal `draining` refusal: a retry against this instance can never
/// succeed, so the hint is deliberately coarse.
const DRAIN_RETRY_MS: u64 = 1000;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to bind the Unix socket.
    pub socket_path: PathBuf,
    /// Root directory for per-tenant sealed state. Existing
    /// `state_root/<tenant>` directories are restored at startup; every
    /// tenant is persisted back on drain. `None` runs stateless.
    pub state_root: Option<PathBuf>,
    /// The key sealing all tenant state.
    pub store_key: StoreKey,
    /// Persist drained tenants as tiered (plain v3) store directories
    /// whose cold shards the next bind maps in place, instead of fully
    /// sealed snapshots that must be decoded up front. Restores
    /// auto-detect the layout either way, so flipping this flag between
    /// restarts is safe.
    pub tiered_state: bool,
    /// Admission defaults for tenants that do not override them.
    pub default_tenant: TenantConfig,
    /// When set (and a state root is configured), every live tenant is
    /// snapshotted to the state root at this interval *without*
    /// draining — a `kill -9` then loses at most one interval of
    /// observations instead of everything since the last drain. Tiered
    /// stores also get their idle shards demoted to cold files during
    /// the sweep.
    pub snapshot_interval: Option<Duration>,
}

impl DaemonConfig {
    /// A config with defaults for everything but the socket path.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        Self {
            socket_path: socket_path.into(),
            state_root: None,
            store_key: StoreKey::from_bytes([0u8; 32]),
            tiered_state: false,
            default_tenant: TenantConfig::default(),
            snapshot_interval: None,
        }
    }
}

struct Shared {
    registry: TenantRegistry,
    config: DaemonConfig,
    /// Set to begin the drain (SIGTERM bridge, or an in-band `Drain`).
    shutdown: AtomicBool,
    /// Set once the drain completed; idle connections exit.
    closed: AtomicBool,
    /// The drain runs exactly once; later callers get the cached reports.
    drain_reports: Mutex<Option<Vec<WireDrainReport>>>,
}

/// A running (bound but not yet serving) daemon.
pub struct Daemon {
    listener: UnixListener,
    shared: Arc<Shared>,
    /// Tenants restored from the state root at bind time.
    restored: Vec<String>,
}

impl Daemon {
    /// Binds the socket and restores any persisted tenants from the
    /// state root.
    ///
    /// # Errors
    ///
    /// Propagates socket/bind failures. Per-tenant restore failures are
    /// *not* fatal — a corrupt tenant directory must not keep every
    /// other tenant offline — they are reported on stderr and the
    /// tenant is skipped.
    pub fn bind(config: DaemonConfig) -> io::Result<Self> {
        // A stale socket file from a killed daemon would fail the bind.
        let _ = std::fs::remove_file(&config.socket_path);
        let listener = UnixListener::bind(&config.socket_path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            registry: TenantRegistry::new(),
            config,
            shutdown: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            drain_reports: Mutex::new(None),
        });
        let restored = restore_tenants(&shared);
        Ok(Self {
            listener,
            shared,
            restored,
        })
    }

    /// Tenant ids restored from the state root at bind time.
    pub fn restored_tenants(&self) -> &[String] {
        &self.restored
    }

    /// A handle that initiates graceful drain when set (wire a SIGTERM
    /// bridge to this).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until drained (by SIGTERM bridge or an in-band
    /// [`Request::Drain`]), then returns the per-tenant drain reports.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop transport errors only; per-connection errors
    /// end that connection.
    pub fn run(self) -> io::Result<Vec<WireDrainReport>> {
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut last_sweep = std::time::Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(thread::spawn(move || serve_connection(stream, &shared)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
            if let Some(interval) = self.shared.config.snapshot_interval {
                if last_sweep.elapsed() >= interval {
                    snapshot_sweep(&self.shared);
                    last_sweep = std::time::Instant::now();
                }
            }
        }
        // Stop admitting, drain every tenant (queued work finishes, so
        // handler threads blocked on pending decisions get real replies),
        // then release idle connections and join.
        let reports = drain_once(&self.shared);
        self.shared.closed.store(true, Ordering::SeqCst);
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket_path);
        Ok(reports)
    }
}

/// Sets the daemon's shutdown flag from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Initiates graceful drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

fn restore_tenants(shared: &Arc<Shared>) -> Vec<String> {
    let Some(root) = shared.config.state_root.as_deref() else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    let mut restored = Vec::new();
    let mut names: Vec<_> = entries
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        let Ok(id) = TenantId::new(name.as_str()) else {
            eprintln!("bfd: skipping state directory {name:?}: not a valid tenant id");
            continue;
        };
        let dir = root.join(id.as_str());
        match BrowserFlow::load_from_dir(shared.config.store_key.clone(), &dir) {
            Ok((flow, report)) => {
                if !report.is_complete() {
                    eprintln!("bfd: tenant {id} restored with losses: {report:?}");
                }
                match shared
                    .registry
                    .create(id.clone(), flow, shared.config.default_tenant)
                {
                    Ok(_) => restored.push(id.as_str().to_string()),
                    Err(e) => eprintln!("bfd: tenant {id} not registered: {e}"),
                }
            }
            Err(e) => eprintln!("bfd: tenant {id} not restored: {e}"),
        }
    }
    restored
}

fn drain_once(shared: &Shared) -> Vec<WireDrainReport> {
    let mut cached = shared
        .drain_reports
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(reports) = cached.as_ref() {
        return reports.clone();
    }
    let reports: Vec<WireDrainReport> = shared
        .registry
        .drain_all_with(
            shared.config.state_root.as_deref(),
            shared.config.tiered_state,
        )
        .into_iter()
        .map(|report| WireDrainReport {
            tenant: report.tenant.as_str().to_string(),
            completed: report.stats.completed,
            persisted_to: report
                .persisted_to
                .map(|path| path.display().to_string())
                .unwrap_or_default(),
            error: report.error.unwrap_or_default(),
        })
        .collect();
    *cached = Some(reports.clone());
    reports
}

/// One periodic durability sweep: snapshots every live tenant to the
/// state root without draining (each cut runs on that tenant's worker in
/// queue order, so it is internally consistent), and — for tiered stores
/// with an attached cold tier — demotes idle shards to cold files so hot
/// memory tracks the working set instead of the tenant's history.
fn snapshot_sweep(shared: &Shared) {
    let Some(root) = shared.config.state_root.as_deref() else {
        return;
    };
    for (tenant, result) in shared
        .registry
        .snapshot_all_with(root, shared.config.tiered_state)
    {
        if let Err(e) = result {
            eprintln!("bfd: snapshot of tenant {tenant} failed: {e}");
        }
    }
    if shared.config.tiered_state {
        for id in shared.registry.list() {
            let Some(tenant) = shared.registry.get(id.as_str()) else {
                continue;
            };
            // Unsupported (no tier attached — e.g. a tenant created hot
            // this run) is the normal case to skip silently; the full
            // snapshot above already covered it.
            let _ = tenant.with_flow(|flow| {
                let engine = flow.engine();
                for store in [engine.paragraph_store(), engine.document_store()] {
                    let _ = store.demote_idle_shards(store.now());
                }
            });
        }
    }
}

// --- Connection handling --------------------------------------------------

/// A reader that tolerates read timeouts while *waiting* for a frame
/// (so idle connections can notice the daemon closing) but treats a
/// timeout mid-frame as "keep waiting" — a slow writer is not a
/// truncated one.
struct PatientReader<'a> {
    stream: &'a UnixStream,
    closed: &'a AtomicBool,
    mid_frame: bool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // `Read` is implemented for `&UnixStream`, so no clone is needed.
        let mut stream = self.stream;
        loop {
            match stream.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.mid_frame = true;
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.closed.load(Ordering::SeqCst) && !self.mid_frame {
                        // Daemon is done and no frame is in progress:
                        // report a clean EOF so the handler exits.
                        return Ok(0);
                    }
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(stream: UnixStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    loop {
        let mut reader = PatientReader {
            stream: &stream,
            closed: &shared.closed,
            mid_frame: false,
        };
        let request = match read_frame(&mut reader) {
            Ok(None) => return,
            Ok(Some(body)) => match serde_json::from_slice::<Request>(&body) {
                Ok(request) => request,
                Err(e) => {
                    // A malformed frame gets a typed error reply; the
                    // framing itself is still in sync, so keep serving.
                    let reply = Reply::Error {
                        message: format!("malformed request: {e}"),
                    };
                    if write_reply(&mut writer, &reply).is_err() {
                        return;
                    }
                    continue;
                }
            },
            Err(FrameError::TooLarge { declared }) => {
                // Oversized length prefix: reply, then hang up — the
                // stream position is unrecoverable.
                let _ = write_reply(
                    &mut writer,
                    &Reply::Error {
                        message: format!("frame length {declared} exceeds the protocol limit"),
                    },
                );
                // Discard already-buffered bytes so the close sends an
                // orderly EOF (closing with unread data resets the
                // connection and the peer may never see the reply).
                let mut sink = [0u8; 8192];
                let mut stream_ref = &stream;
                while matches!(stream_ref.read(&mut sink), Ok(n) if n > 0) {}
                return;
            }
            Err(_) => return,
        };
        let drain_requested = matches!(request, Request::Drain);
        let reply = handle_request(shared, request);
        if write_reply(&mut writer, &reply).is_err() {
            return;
        }
        if drain_requested {
            return;
        }
    }
}

fn handle_request(shared: &Shared, request: Request) -> Reply {
    match request {
        Request::Ping => Reply::Pong {
            version: PROTOCOL_VERSION.to_string(),
        },
        Request::TenantCreate {
            tenant,
            mode,
            policy_json,
            max_in_flight,
            queue_capacity,
        } => tenant_create(
            shared,
            &tenant,
            &mode,
            &policy_json,
            max_in_flight,
            queue_capacity,
        ),
        Request::TenantList => {
            let tenants = shared
                .registry
                .list()
                .into_iter()
                .filter_map(|id| shared.registry.get(id.as_str()))
                .map(|tenant| WireTenant {
                    tenant: tenant.id().as_str().to_string(),
                    in_flight: tenant.in_flight() as u64,
                    max_in_flight: tenant.config().max_in_flight as u64,
                })
                .collect();
            Reply::Tenants { tenants }
        }
        Request::Observe {
            tenant,
            service,
            document,
            index,
            text,
        } => with_tenant(shared, &tenant, |tenant| {
            match tenant.observe(service.as_str(), document, index, text) {
                Ok(()) => Reply::Observed,
                Err(DeciderError::Closed) => draining_reply(),
                Err(e) => error_reply(&e),
            }
        }),
        Request::ObserveBatch {
            tenant,
            service,
            document,
            paragraphs,
        } => with_tenant(shared, &tenant, |tenant| {
            let slots: Vec<(usize, String)> = paragraphs
                .into_iter()
                .map(|slot| (slot.index, slot.text))
                .collect();
            match tenant.observe_batch(service.as_str(), document, slots) {
                Ok(_) => Reply::Observed,
                Err(DeciderError::Closed) => draining_reply(),
                Err(e) => error_reply(&e),
            }
        }),
        Request::Check {
            tenant,
            service,
            document,
            paragraphs,
        } => with_tenant(shared, &tenant, |tenant| {
            let mut request = CheckRequest::new(service.as_str(), document);
            for slot in &paragraphs {
                request = request.with_paragraph(slot.index, slot.text.as_str());
            }
            match tenant.try_check(request) {
                Ok((batch, _permit)) => match batch.wait() {
                    Ok(timed) => decisions_reply(timed),
                    Err(e) => error_reply(&e),
                },
                Err(refusal) => backpressure_reply(tenant, refusal),
            }
        }),
        Request::Keystroke {
            tenant,
            service,
            document,
            index,
            text,
        } => with_tenant(shared, &tenant, |tenant| {
            match tenant.try_keystroke(service.as_str(), document, index, text) {
                Ok((pending, _permit)) => match pending.wait() {
                    Ok(timed) => decisions_reply(TimedBatch {
                        decisions: vec![timed.decision],
                        latency: timed.latency,
                    }),
                    Err(DeciderError::Superseded) => Reply::Superseded,
                    Err(e) => error_reply(&e),
                },
                Err(refusal) => backpressure_reply(tenant, refusal),
            }
        }),
        Request::Stats { tenant } => with_tenant(shared, &tenant, |tenant| match tenant.stats() {
            Some(pipeline) => Reply::Stats {
                pipeline,
                in_flight: tenant.in_flight() as u64,
                max_in_flight: tenant.config().max_in_flight as u64,
            },
            None => draining_reply(),
        }),
        Request::Lineage { tenant } => with_tenant(shared, &tenant, |tenant| {
            match tenant.with_flow(|flow| (flow.lineage().edges(), flow.lineage().clock())) {
                Ok((edges, clock)) => Reply::Lineage { edges, clock },
                Err(_) => draining_reply(),
            }
        }),
        Request::Alerts { tenant } => with_tenant(shared, &tenant, |tenant| {
            match tenant.with_flow(BrowserFlow::alerts) {
                Ok(alerts) => Reply::Alerts { alerts },
                Err(_) => draining_reply(),
            }
        }),
        Request::Drain => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Reply::Drained {
                reports: drain_once(shared),
            }
        }
    }
}

fn tenant_create(
    shared: &Shared,
    tenant: &str,
    mode: &str,
    policy_json: &str,
    max_in_flight: u64,
    queue_capacity: u64,
) -> Reply {
    let id = match TenantId::new(tenant) {
        Ok(id) => id,
        Err(e) => {
            return Reply::Error {
                message: format!("invalid tenant id: {e}"),
            }
        }
    };
    let mode = match parse_mode(mode) {
        Some(mode) => mode,
        None => {
            return Reply::Error {
                message: format!("unknown mode {mode:?}; expected advisory, block or encrypt"),
            }
        }
    };
    let policy: Policy = match serde_json::from_str(policy_json) {
        Ok(policy) => policy,
        Err(e) => {
            return Reply::Error {
                message: format!("invalid policy JSON: {e}"),
            }
        }
    };
    let flow = match BrowserFlow::builder()
        .mode(mode)
        .policy(policy)
        .store_key(shared.config.store_key.clone())
        .build()
    {
        Ok(flow) => flow,
        Err(e) => {
            return Reply::Error {
                message: format!("policy rejected: {e}"),
            }
        }
    };
    let defaults = shared.config.default_tenant;
    let config = TenantConfig {
        max_in_flight: if max_in_flight == 0 {
            defaults.max_in_flight
        } else {
            max_in_flight as usize
        },
        decider: DeciderConfig {
            queue_capacity: if queue_capacity == 0 {
                defaults.decider.queue_capacity
            } else {
                queue_capacity as usize
            },
            ..defaults.decider
        },
    };
    match shared.registry.create(id, flow, config) {
        Ok(tenant) => Reply::TenantCreated {
            tenant: tenant.id().as_str().to_string(),
        },
        Err(e) => Reply::Error {
            message: e.to_string(),
        },
    }
}

fn with_tenant(shared: &Shared, name: &str, op: impl FnOnce(&Tenant) -> Reply) -> Reply {
    match shared.registry.get(name) {
        Some(tenant) => op(&tenant),
        // The drain empties the tenant table, so a miss during shutdown
        // is the drain, not a typo: answer with the terminal refusal
        // instead of a misleading "no tenant" error.
        None if shared.shutdown.load(Ordering::SeqCst) => draining_reply(),
        None => Reply::Error {
            message: format!("no tenant named {name}"),
        },
    }
}

fn parse_mode(mode: &str) -> Option<EnforcementMode> {
    match mode {
        "advisory" => Some(EnforcementMode::Advisory),
        "block" => Some(EnforcementMode::Block),
        "encrypt" => Some(EnforcementMode::Encrypt),
        _ => None,
    }
}

fn decisions_reply(timed: TimedBatch) -> Reply {
    Reply::Decisions {
        decisions: timed.decisions.into_iter().map(wire_decision).collect(),
        latency_us: timed.latency.as_micros().min(u128::from(u64::MAX)) as u64,
    }
}

fn wire_decision(decision: UploadDecision) -> WireDecision {
    WireDecision {
        action: action_str(decision.action).to_string(),
        violations: decision
            .violations
            .into_iter()
            .map(wire_violation)
            .collect(),
    }
}

fn wire_violation(violation: Violation) -> WireViolation {
    WireViolation {
        source: violation.source.to_string(),
        disclosure: violation.disclosure,
        missing_tags: violation
            .missing_tags
            .iter()
            .map(|tag| tag.to_string())
            .collect(),
        matching_spans: violation
            .matching_spans
            .into_iter()
            .map(|range| (range.start, range.end))
            .collect(),
    }
}

fn action_str(action: UploadAction) -> &'static str {
    match action {
        UploadAction::Allow => "allow",
        UploadAction::Warn => "warn",
        UploadAction::Block => "block",
        UploadAction::Encrypt => "encrypt",
    }
}

fn backpressure_reply(tenant: &Tenant, refusal: AdmissionError) -> Reply {
    match refusal {
        AdmissionError::QuotaExceeded {
            in_flight,
            max_in_flight,
        } => Reply::Backpressure {
            reason: "quota-exceeded".to_string(),
            in_flight: in_flight as u64,
            limit: max_in_flight as u64,
            retry_after_ms: QUOTA_RETRY_MS,
            terminal: false,
        },
        AdmissionError::QueueFull { queue_capacity } => Reply::Backpressure {
            reason: "queue-full".to_string(),
            in_flight: tenant.in_flight() as u64,
            limit: queue_capacity as u64,
            retry_after_ms: QUEUE_RETRY_MS,
            terminal: false,
        },
        AdmissionError::Draining => draining_reply(),
        // `AdmissionError` is non-exhaustive from outside the core
        // crate; any future refusal is still backpressure.
        _ => Reply::Backpressure {
            reason: "refused".to_string(),
            in_flight: tenant.in_flight() as u64,
            limit: 0,
            retry_after_ms: QUEUE_RETRY_MS,
            terminal: false,
        },
    }
}

fn draining_reply() -> Reply {
    // Draining is terminal for this instance: `terminal` tells honest
    // clients to stop retrying here, and the non-zero hint paces the
    // ones that instead poll for a restarted daemon. (A zero hint used
    // to invite an immediate-retry busy loop against a dying socket.)
    Reply::Backpressure {
        reason: "draining".to_string(),
        in_flight: 0,
        limit: 0,
        retry_after_ms: DRAIN_RETRY_MS,
        terminal: true,
    }
}

fn error_reply(error: &dyn std::fmt::Display) -> Reply {
    Reply::Error {
        message: error.to_string(),
    }
}
