//! End-to-end tests for `bfd`: tenant isolation, backpressure-correct
//! admission, and graceful drain with sealed per-tenant persistence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use browserflow::test_hooks;
use browserflow_daemon::{Daemon, DaemonClient, DaemonConfig, ParagraphSlot, Reply, Request};
use browserflow_store::StoreKey;
use browserflow_tdm::{Policy, Service, Tag, TagSet};

const SECRET: &str = "the confidential interview rubric awards extra points for \
                      candidates who ask incisive clarifying questions early";

static NEXT_SOCKET: AtomicU32 = AtomicU32::new(0);

fn socket_path(tag: &str) -> PathBuf {
    let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bfd-test-{tag}-{}-{n}.sock", std::process::id()))
}

fn policy_json() -> String {
    let ti = Tag::new("interview-data").unwrap();
    let mut policy = Policy::new();
    policy
        .register(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone()]))
                .with_confidentiality(TagSet::from_iter([ti])),
        )
        .unwrap();
    policy
        .register(Service::new("gdocs", "Google Docs"))
        .unwrap();
    serde_json::to_string(&policy).unwrap()
}

/// Binds a daemon on a fresh socket, runs it on a background thread,
/// and waits until the socket accepts connections.
fn start_daemon(
    config: DaemonConfig,
) -> (
    PathBuf,
    thread::JoinHandle<Vec<browserflow_daemon::WireDrainReport>>,
) {
    let socket = config.socket_path.clone();
    let daemon = Daemon::bind(config).expect("bind");
    let handle = thread::spawn(move || daemon.run().expect("daemon run"));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match DaemonClient::connect(&socket) {
            Ok(mut client) => {
                client.ping().expect("ping");
                break;
            }
            Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("daemon never came up: {e}"),
        }
    }
    (socket, handle)
}

fn create_tenant(client: &mut DaemonClient, tenant: &str, queue_capacity: u64) {
    let reply = client
        .request(&Request::TenantCreate {
            tenant: tenant.to_string(),
            mode: "block".to_string(),
            policy_json: policy_json(),
            max_in_flight: 0,
            queue_capacity,
        })
        .expect("tenant create");
    assert!(
        matches!(reply, Reply::TenantCreated { tenant: ref t } if t == tenant),
        "unexpected reply: {reply:?}"
    );
}

fn drain(client: &mut DaemonClient) -> Vec<browserflow_daemon::WireDrainReport> {
    match client.request(&Request::Drain).expect("drain") {
        Reply::Drained { reports } => reports,
        other => panic!("expected Drained, got {other:?}"),
    }
}

#[test]
fn tenants_are_isolated_end_to_end() {
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("isolation")));
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);
    create_tenant(&mut client, "bob", 0);

    // Alice's secret lives only in Alice's store.
    client.observe("alice", "itool", "eval", 0, SECRET).unwrap();

    let slot = vec![ParagraphSlot {
        index: 0,
        text: SECRET.to_string(),
    }];
    match client
        .check("alice", "gdocs", "draft", slot.clone())
        .unwrap()
    {
        Reply::Decisions { decisions, .. } => {
            assert_eq!(decisions[0].action, "block");
            assert!(!decisions[0].violations.is_empty());
            assert_eq!(decisions[0].violations[0].source, "itool/eval#p0");
        }
        other => panic!("expected Decisions, got {other:?}"),
    }
    // Bob uploading the identical text is clean: isolation, not policy.
    match client.check("bob", "gdocs", "draft", slot).unwrap() {
        Reply::Decisions { decisions, .. } => assert_eq!(decisions[0].action, "allow"),
        other => panic!("expected Decisions, got {other:?}"),
    }

    // Tenant listing sees both, sorted.
    match client.request(&Request::TenantList).unwrap() {
        Reply::Tenants { tenants } => {
            let names: Vec<&str> = tenants.iter().map(|t| t.tenant.as_str()).collect();
            assert_eq!(names, ["alice", "bob"]);
        }
        other => panic!("expected Tenants, got {other:?}"),
    }

    drain(&mut client);
    handle.join().unwrap();
}

#[test]
fn observe_batch_lands_a_whole_document_in_one_frame() {
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("observe-batch")));
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);

    // A three-paragraph document goes over the wire as a single frame;
    // the secret sits in the middle slot.
    let closing = "please return written feedback on every candidate within two \
                   business days so the committee can calibrate before debrief";
    let paragraphs = vec![
        ParagraphSlot {
            index: 0,
            text: "welcome to the interview packet for this hiring cycle; read \
                   the rubric below before scheduling any phone screens"
                .to_string(),
        },
        ParagraphSlot {
            index: 1,
            text: SECRET.to_string(),
        },
        ParagraphSlot {
            index: 2,
            text: closing.to_string(),
        },
    ];
    client
        .observe_batch("alice", "itool", "eval", paragraphs)
        .unwrap();

    // Every batched slot is attributable: the secret paragraph blocks
    // with its batch-assigned provenance, the benign ones stay allowed.
    let probe = vec![ParagraphSlot {
        index: 0,
        text: SECRET.to_string(),
    }];
    match client.check("alice", "gdocs", "draft", probe).unwrap() {
        Reply::Decisions { decisions, .. } => {
            assert_eq!(decisions[0].action, "block");
            assert_eq!(decisions[0].violations[0].source, "itool/eval#p1");
        }
        other => panic!("expected Decisions, got {other:?}"),
    }
    let benign = vec![ParagraphSlot {
        index: 0,
        text: closing.to_string(),
    }];
    match client.check("alice", "gdocs", "draft", benign).unwrap() {
        Reply::Decisions { decisions, .. } => {
            // Short benign text observed at itool is itool-owned too, but it
            // carries no confidential tags the destination lacks.
            assert_eq!(decisions[0].action, "block");
            assert_eq!(decisions[0].violations[0].source, "itool/eval#p2");
        }
        other => panic!("expected Decisions, got {other:?}"),
    }

    drain(&mut client);
    handle.join().unwrap();
}

#[test]
fn queue_full_is_a_backpressure_reply_with_zero_silent_drops() {
    let _hooks = test_hooks::lock();
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("backpressure")));
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 1);

    // Stall the tenant's worker on a marker paragraph so the bounded
    // queue (capacity 1) fills deterministically.
    test_hooks::set_delay_ms_on_marker(400);
    let stall_socket = socket.clone();
    let staller = thread::spawn(move || {
        let mut stall_client = DaemonClient::connect(&stall_socket).unwrap();
        let text = format!("stall {}", test_hooks::FAULT_MARKER);
        stall_client
            .check(
                "alice",
                "gdocs",
                "stall-doc",
                vec![ParagraphSlot { index: 0, text }],
            )
            .unwrap()
    });

    // Give the worker a moment to dequeue the stall request so the
    // queue slot is genuinely free for exactly one more check.
    thread::sleep(Duration::from_millis(100));

    // The protocol is strict request→reply, so pressure needs parallel
    // connections: fan out concurrent checks while the worker is stalled.
    let hammers: Vec<_> = (0..6)
        .map(|index| {
            let socket = socket.clone();
            thread::spawn(move || {
                let mut client = DaemonClient::connect(&socket).unwrap();
                client
                    .check(
                        "alice",
                        "gdocs",
                        "doc",
                        vec![ParagraphSlot {
                            index,
                            text: "harmless text".to_string(),
                        }],
                    )
                    .unwrap()
            })
        })
        .collect();
    let replies: Vec<Reply> = hammers.into_iter().map(|h| h.join().unwrap()).collect();
    test_hooks::set_delay_ms_on_marker(0);

    let mut decisions = 0u32;
    let mut refusals = Vec::new();
    for reply in replies {
        match reply {
            Reply::Decisions { .. } => decisions += 1,
            Reply::Backpressure {
                reason,
                limit,
                retry_after_ms,
                terminal,
                ..
            } => refusals.push((reason, limit, retry_after_ms, terminal)),
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    // Every concurrent check got exactly one structured answer: a real
    // decision or a backpressure refusal — nothing vanished.
    assert_eq!(decisions as usize + refusals.len(), 6);
    assert!(!refusals.is_empty(), "bounded queue never refused");
    for (reason, limit, retry_after_ms, terminal) in &refusals {
        assert_eq!(reason, "queue-full");
        assert_eq!(*limit, 1);
        assert!(*retry_after_ms > 0, "refusal must carry a retry hint");
        assert!(
            !terminal,
            "a full queue is transient backpressure, not a terminal refusal"
        );
    }

    // Zero silent drops: the stalled check also produced its decision.
    match staller.join().unwrap() {
        Reply::Decisions { .. } => {}
        other => panic!("stalled check lost: {other:?}"),
    }
    // And the refused check succeeds on retry once pressure clears.
    let retry = client
        .check(
            "alice",
            "gdocs",
            "doc",
            vec![ParagraphSlot {
                index: 999,
                text: "harmless text".to_string(),
            }],
        )
        .unwrap();
    assert!(
        matches!(retry, Reply::Decisions { .. }),
        "retry failed: {retry:?}"
    );
    let _ = decisions;

    drain(&mut client);
    handle.join().unwrap();
}

#[test]
fn draining_refusal_is_terminal_with_a_real_backoff_hint() {
    let _hooks = test_hooks::lock();
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("draining")));
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);

    // Stall the tenant's worker so the drain (which waits for queued
    // work) holds the tenant in its "decider taken, not yet drained"
    // window long enough to probe it.
    test_hooks::set_delay_ms_on_marker(400);
    let stall_socket = socket.clone();
    let staller = thread::spawn(move || {
        let mut stall_client = DaemonClient::connect(&stall_socket).unwrap();
        let text = format!("stall {}", test_hooks::FAULT_MARKER);
        stall_client
            .check(
                "alice",
                "gdocs",
                "stall-doc",
                vec![ParagraphSlot { index: 0, text }],
            )
            .unwrap()
    });
    thread::sleep(Duration::from_millis(100));
    let drain_socket = socket.clone();
    let drainer = thread::spawn(move || {
        let mut drain_client = DaemonClient::connect(&drain_socket).unwrap();
        drain(&mut drain_client)
    });
    thread::sleep(Duration::from_millis(100));

    // Admission during the drain: the refusal must say so terminally —
    // a retry against this instance can never succeed — and still carry
    // a non-zero pacing hint (a zero hint invites a busy loop).
    let reply = client
        .check(
            "alice",
            "gdocs",
            "draft",
            vec![ParagraphSlot {
                index: 0,
                text: "harmless".to_string(),
            }],
        )
        .unwrap();
    match reply {
        Reply::Backpressure {
            reason,
            retry_after_ms,
            terminal,
            ..
        } => {
            assert_eq!(reason, "draining");
            assert!(terminal, "draining must be flagged terminal");
            assert!(
                retry_after_ms > 0,
                "draining must not advertise an immediate retry"
            );
        }
        other => panic!("expected draining backpressure, got {other:?}"),
    }
    test_hooks::set_delay_ms_on_marker(0);

    // Zero silent drops even across the drain: the stalled check still
    // resolved with a real decision.
    assert!(matches!(staller.join().unwrap(), Reply::Decisions { .. }));
    drainer.join().unwrap();
    handle.join().unwrap();
}

#[test]
fn snapshot_sweep_persists_tenants_without_drain() {
    let state_root = std::env::temp_dir().join(format!("bfd-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);
    std::fs::create_dir_all(&state_root).unwrap();
    let key = StoreKey::from_bytes([0x17; 32]);

    let mut config = DaemonConfig::new(socket_path("sweep"));
    config.state_root = Some(state_root.clone());
    config.store_key = key.clone();
    config.snapshot_interval = Some(Duration::from_millis(50));
    let (socket, handle) = start_daemon(config);
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);
    client.observe("alice", "itool", "eval", 0, SECRET).unwrap();

    // Wait out a few sweep intervals; the daemon keeps serving — no
    // drain — yet the state root must become a loadable snapshot. This
    // is the `kill -9` durability bound: at most one interval is lost.
    let deadline = Instant::now() + Duration::from_secs(5);
    let restored = loop {
        match browserflow::BrowserFlow::load_from_dir(key.clone(), &state_root.join("alice")) {
            Ok((flow, report)) if report.is_complete() => break flow,
            _ if Instant::now() < deadline => thread::sleep(Duration::from_millis(25)),
            Ok(_) => panic!("snapshot stayed incomplete past the deadline"),
            Err(e) => panic!("no loadable snapshot appeared: {e}"),
        }
    };
    let decision = restored
        .check_one(&browserflow::CheckRequest::paragraph(
            "gdocs", "d", 0, SECRET,
        ))
        .unwrap();
    assert_eq!(decision.action, browserflow::UploadAction::Block);

    // The daemon never stopped serving while sweeping.
    client.ping().unwrap();
    drain(&mut client);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&state_root);
}

#[test]
fn drain_persists_tenants_and_a_new_daemon_restores_them() {
    let state_root = std::env::temp_dir().join(format!("bfd-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);
    std::fs::create_dir_all(&state_root).unwrap();
    let key = StoreKey::from_bytes([0x42; 32]);

    let mut config = DaemonConfig::new(socket_path("drain-a"));
    config.state_root = Some(state_root.clone());
    config.store_key = key.clone();
    let (socket, handle) = start_daemon(config);
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);
    client.observe("alice", "itool", "eval", 0, SECRET).unwrap();

    let reports = drain(&mut client);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].tenant, "alice");
    assert!(
        reports[0].error.is_empty(),
        "drain error: {}",
        reports[0].error
    );
    assert!(reports[0].persisted_to.ends_with("/alice"));
    handle.join().unwrap();
    assert!(state_root.join("alice").is_dir());

    // A fresh daemon over the same state root restores the tenant with
    // its fingerprints intact.
    let mut config = DaemonConfig::new(socket_path("drain-b"));
    config.state_root = Some(state_root.clone());
    config.store_key = key;
    let (socket, handle) = start_daemon(config);
    let mut client = DaemonClient::connect(&socket).unwrap();
    match client
        .check(
            "alice",
            "gdocs",
            "draft",
            vec![ParagraphSlot {
                index: 0,
                text: SECRET.to_string(),
            }],
        )
        .unwrap()
    {
        Reply::Decisions { decisions, .. } => assert_eq!(decisions[0].action, "block"),
        other => panic!("expected Decisions after restore, got {other:?}"),
    }
    drain(&mut client);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&state_root);
}

fn three_service_policy_json() -> String {
    let ti = Tag::new("interview-data").unwrap();
    let mut policy = Policy::new();
    policy
        .register(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone()]))
                .with_confidentiality(TagSet::from_iter([ti])),
        )
        .unwrap();
    policy
        .register(Service::new("gdocs", "Google Docs"))
        .unwrap();
    policy
        .register(Service::new("wiki", "Company Wiki"))
        .unwrap();
    serde_json::to_string(&policy).unwrap()
}

#[test]
fn lineage_and_alerts_survive_drain_and_restore_over_the_wire() {
    let state_root = std::env::temp_dir().join(format!("bfd-lineage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);
    std::fs::create_dir_all(&state_root).unwrap();
    let key = StoreKey::from_bytes([0x29; 32]);

    let mut config = DaemonConfig::new(socket_path("lineage-a"));
    config.state_root = Some(state_root.clone());
    config.store_key = key.clone();
    let (socket, handle) = start_daemon(config);
    let mut client = DaemonClient::connect(&socket).unwrap();
    let reply = client
        .request(&Request::TenantCreate {
            tenant: "alice".to_string(),
            mode: "block".to_string(),
            policy_json: three_service_policy_json(),
            max_in_flight: 0,
            queue_capacity: 0,
        })
        .unwrap();
    assert!(matches!(reply, Reply::TenantCreated { .. }));

    // A covert chain: the secret is born in the interview tool, drafted
    // (with the user's own framing — that is what makes the middle hop
    // authoritative) in Google Docs, then pasted into the wiki.
    client.observe("alice", "itool", "eval", 0, SECRET).unwrap();
    let draft = format!(
        "{SECRET} — drafting notes: summarise this rubric for the hiring \
         committee and circulate before the next debrief"
    );
    client
        .observe("alice", "gdocs", "draft", 0, &draft)
        .unwrap();
    match client
        .check(
            "alice",
            "wiki",
            "page",
            vec![ParagraphSlot {
                index: 0,
                text: draft.clone(),
            }],
        )
        .unwrap()
    {
        Reply::Decisions { decisions, .. } => assert_eq!(decisions[0].action, "block"),
        other => panic!("expected Decisions, got {other:?}"),
    }

    // The lineage reply carries the cross-service edges and the alerts
    // reply the confirmed multi-hop chain with its receipt.
    let (edges, clock) = client.lineage("alice").unwrap();
    assert!(clock >= 2, "expected at least two recorded edges");
    assert!(edges
        .iter()
        .any(|e| e.source == "itool" && e.sink == "gdocs"));
    assert!(edges
        .iter()
        .any(|e| e.source == "gdocs" && e.sink == "wiki"));
    let alerts = client.alerts("alice").unwrap();
    assert_eq!(alerts.len(), 1, "alerts: {alerts:?}");
    assert!(alerts[0].hops.len() >= 2);
    assert_eq!(alerts[0].receipt.action, "block");

    drain(&mut client);
    handle.join().unwrap();

    // A fresh daemon restores the tenant with graph and alerts intact.
    let mut config = DaemonConfig::new(socket_path("lineage-b"));
    config.state_root = Some(state_root.clone());
    config.store_key = key;
    let (socket, handle) = start_daemon(config);
    let mut client = DaemonClient::connect(&socket).unwrap();
    let (restored_edges, restored_clock) = client.lineage("alice").unwrap();
    assert_eq!(restored_edges, edges);
    assert_eq!(restored_clock, clock);
    let restored_alerts = client.alerts("alice").unwrap();
    assert_eq!(restored_alerts, alerts);
    drain(&mut client);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&state_root);
}

#[test]
fn admission_after_drain_is_draining_backpressure() {
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("post-drain")));
    let mut client = DaemonClient::connect(&socket).unwrap();
    create_tenant(&mut client, "alice", 0);

    // A second connection drains the daemon while the first stays open.
    let mut drainer = DaemonClient::connect(&socket).unwrap();
    drain(&mut drainer);
    handle.join().unwrap();
    // The daemon has exited; the first client's next request fails at
    // the transport (socket gone), which the client reports as an error
    // rather than hanging.
    let result = client.check(
        "alice",
        "gdocs",
        "draft",
        vec![ParagraphSlot {
            index: 0,
            text: "text".to_string(),
        }],
    );
    assert!(result.is_err() || !matches!(result, Ok(Reply::Decisions { .. })));
}

#[test]
fn malformed_and_hostile_frames_get_typed_errors() {
    use std::io::Write;
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("hostile")));

    // Malformed JSON body: typed error reply, connection stays usable.
    {
        let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        let body = b"{definitely not json";
        stream
            .write_all(&(body.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(body).unwrap();
        let reply = browserflow_daemon::protocol::read_reply(&mut stream)
            .unwrap()
            .unwrap();
        assert!(matches!(reply, Reply::Error { .. }), "got {reply:?}");
    }

    // Hostile length prefix: typed error, then hangup (stream position
    // is unrecoverable).
    {
        let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        stream.write_all(b"junk").unwrap();
        let reply = browserflow_daemon::protocol::read_reply(&mut stream)
            .unwrap()
            .unwrap();
        assert!(matches!(reply, Reply::Error { .. }), "got {reply:?}");
        assert!(browserflow_daemon::protocol::read_reply(&mut stream)
            .unwrap()
            .is_none());
    }

    let mut client = DaemonClient::connect(&socket).unwrap();
    drain(&mut client);
    handle.join().unwrap();
}

#[test]
fn unknown_tenant_and_bad_create_are_typed_errors() {
    let (socket, handle) = start_daemon(DaemonConfig::new(socket_path("errors")));
    let mut client = DaemonClient::connect(&socket).unwrap();

    let reply = client
        .check(
            "ghost",
            "gdocs",
            "draft",
            vec![ParagraphSlot {
                index: 0,
                text: "text".to_string(),
            }],
        )
        .unwrap();
    assert!(matches!(reply, Reply::Error { ref message } if message.contains("ghost")));

    let reply = client
        .request(&Request::TenantCreate {
            tenant: "../escape".to_string(),
            mode: "block".to_string(),
            policy_json: policy_json(),
            max_in_flight: 0,
            queue_capacity: 0,
        })
        .unwrap();
    assert!(matches!(reply, Reply::Error { ref message } if message.contains("tenant id")));

    let reply = client
        .request(&Request::TenantCreate {
            tenant: "alice".to_string(),
            mode: "block".to_string(),
            policy_json: "{broken".to_string(),
            max_in_flight: 0,
            queue_capacity: 0,
        })
        .unwrap();
    assert!(matches!(reply, Reply::Error { ref message } if message.contains("policy")));

    create_tenant(&mut client, "alice", 0);
    let reply = client
        .request(&Request::TenantCreate {
            tenant: "alice".to_string(),
            mode: "block".to_string(),
            policy_json: policy_json(),
            max_in_flight: 0,
            queue_capacity: 0,
        })
        .unwrap();
    assert!(matches!(reply, Reply::Error { ref message } if message.contains("exists")));

    drain(&mut client);
    handle.join().unwrap();
}
