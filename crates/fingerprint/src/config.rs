//! Fingerprinting configuration.

use std::fmt;

/// Default n-gram length in normalised characters.
///
/// The paper's evaluation uses 15-character n-grams (§6.1).
pub const DEFAULT_NGRAM_LEN: usize = 15;

/// Default winnowing window size, in consecutive n-gram hashes.
///
/// The paper's evaluation uses a window of 30 (§6.1).
pub const DEFAULT_WINDOW: usize = 30;

/// Configuration of the fingerprinting pipeline.
///
/// Use [`FingerprintConfig::builder`] to construct values with non-default
/// parameters; [`FingerprintConfig::default`] mirrors the paper's
/// evaluation settings (32-bit hashes over 15-character n-grams, window
/// size 30).
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::FingerprintConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = FingerprintConfig::builder().ngram_len(8).window(4).build()?;
/// assert_eq!(config.ngram_len(), 8);
/// assert_eq!(config.guarantee_threshold(), 11); // w + n - 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FingerprintConfig {
    ngram_len: usize,
    window: usize,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        Self {
            ngram_len: DEFAULT_NGRAM_LEN,
            window: DEFAULT_WINDOW,
        }
    }
}

impl FingerprintConfig {
    /// Starts building a configuration.
    pub fn builder() -> FingerprintConfigBuilder {
        FingerprintConfigBuilder::default()
    }

    /// n-gram length in normalised characters.
    pub fn ngram_len(&self) -> usize {
        self.ngram_len
    }

    /// Winnowing window size in consecutive hashes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The winnowing guarantee threshold `t = w + n - 1`.
    ///
    /// Any match between two normalised texts at least this long is
    /// guaranteed to be reflected by at least one shared fingerprint hash.
    pub fn guarantee_threshold(&self) -> usize {
        self.window + self.ngram_len - 1
    }

    /// Expected fingerprint density `2 / (w + 1)`.
    ///
    /// Winnowing selects on average this fraction of n-gram hashes from
    /// random input, so fingerprints stay linear in (and much smaller than)
    /// the segment size.
    pub fn expected_density(&self) -> f64 {
        2.0 / (self.window as f64 + 1.0)
    }
}

/// Builder for [`FingerprintConfig`].
#[derive(Debug, Clone, Default)]
pub struct FingerprintConfigBuilder {
    ngram_len: Option<usize>,
    window: Option<usize>,
}

impl FingerprintConfigBuilder {
    /// Sets the n-gram length (normalised characters per hashed gram).
    pub fn ngram_len(mut self, ngram_len: usize) -> Self {
        self.ngram_len = Some(ngram_len);
        self
    }

    /// Sets the winnowing window size (consecutive hashes per window).
    pub fn window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the n-gram length or window size is zero.
    pub fn build(self) -> Result<FingerprintConfig, ConfigError> {
        let ngram_len = self.ngram_len.unwrap_or(DEFAULT_NGRAM_LEN);
        let window = self.window.unwrap_or(DEFAULT_WINDOW);
        if ngram_len == 0 {
            return Err(ConfigError::ZeroNgramLen);
        }
        if window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        Ok(FingerprintConfig { ngram_len, window })
    }
}

/// Error building a [`FingerprintConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The n-gram length was zero.
    ZeroNgramLen,
    /// The window size was zero.
    ZeroWindow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroNgramLen => write!(f, "n-gram length must be at least 1"),
            ConfigError::ZeroWindow => write!(f, "window size must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_evaluation() {
        let config = FingerprintConfig::default();
        assert_eq!(config.ngram_len(), 15);
        assert_eq!(config.window(), 30);
        assert_eq!(config.guarantee_threshold(), 44);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert_eq!(
            FingerprintConfig::builder().ngram_len(0).build(),
            Err(ConfigError::ZeroNgramLen)
        );
        assert_eq!(
            FingerprintConfig::builder().window(0).build(),
            Err(ConfigError::ZeroWindow)
        );
    }

    #[test]
    fn density_is_two_over_w_plus_one() {
        let config = FingerprintConfig::builder().window(3).build().unwrap();
        assert!((config.expected_density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn error_messages_are_lowercase_without_period() {
        let message = ConfigError::ZeroWindow.to_string();
        assert!(message.starts_with(char::is_lowercase));
        assert!(!message.ends_with('.'));
    }
}
