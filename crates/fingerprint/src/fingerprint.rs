//! The [`Fingerprint`] type and similarity measures.

use std::collections::HashSet;
use std::ops::Range;

/// One hash selected into a fingerprint, with attribution back to the
/// source text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectedHash {
    hash: u32,
    position: usize,
    span: Range<usize>,
}

impl SelectedHash {
    /// Creates a selected hash.
    ///
    /// `position` is the n-gram start in normalised characters; `span` is
    /// the byte range of the n-gram in the *original* text.
    pub fn new(hash: u32, position: usize, span: Range<usize>) -> Self {
        Self {
            hash,
            position,
            span,
        }
    }

    /// The 32-bit hash value.
    pub fn hash(&self) -> u32 {
        self.hash
    }

    /// n-gram start position in normalised characters.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Byte range of the contributing n-gram in the original text.
    ///
    /// BrowserFlow uses this to highlight the passage that caused a
    /// disclosure report.
    pub fn span(&self) -> Range<usize> {
        self.span.clone()
    }
}

/// A text segment's fingerprint: the winnowed set of n-gram hashes, each
/// with its source location.
///
/// Two segments that share a sufficiently long passage share at least one
/// fingerprint hash (the winnowing guarantee), so set overlap between
/// fingerprints is a robust, imprecise signal of text propagation.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = Fingerprinter::new(FingerprintConfig::builder().ngram_len(6).window(3).build()?);
/// let original = fp.fingerprint("confidential interview notes about the candidate evaluation");
/// let copied = fp.fingerprint("PREFIX confidential interview notes about the candidate evaluation SUFFIX");
/// // Most of the original's hashes survive inside the copy.
/// assert!(original.containment_in(&copied) > 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fingerprint {
    entries: Vec<SelectedHash>,
    /// Sorted, deduplicated hash values of `entries`, computed once at
    /// construction so the similarity measures below never allocate.
    distinct: Vec<u32>,
}

fn sorted_distinct(entries: &[SelectedHash]) -> Vec<u32> {
    let mut distinct: Vec<u32> = entries.iter().map(|e| e.hash).collect();
    distinct.sort_unstable();
    distinct.dedup();
    distinct
}

/// Size of the intersection of two sorted, deduplicated slices.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

impl Fingerprint {
    /// Creates an empty fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fingerprint from selected hashes (kept in given order).
    pub fn from_entries(entries: Vec<SelectedHash>) -> Self {
        let distinct = sorted_distinct(&entries);
        Self { entries, distinct }
    }

    /// Number of selected hashes (with multiplicity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no hashes were selected.
    ///
    /// Segments shorter than the n-gram length always fingerprint to empty;
    /// the evaluation (§6.1) excludes such paragraphs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the selected hashes in position order.
    pub fn iter(&self) -> std::slice::Iter<'_, SelectedHash> {
        self.entries.iter()
    }

    /// The set of distinct hash values.
    ///
    /// Allocates a fresh `HashSet`; hot paths should prefer
    /// [`Fingerprint::distinct_hashes`], which borrows the sorted distinct
    /// values cached at construction.
    pub fn hash_set(&self) -> HashSet<u32> {
        self.distinct.iter().copied().collect()
    }

    /// The distinct hash values, sorted ascending.
    ///
    /// Computed once when the fingerprint is built; every similarity
    /// measure below runs off this slice without allocating.
    pub fn distinct_hashes(&self) -> &[u32] {
        &self.distinct
    }

    /// Number of distinct hash values.
    pub fn distinct_len(&self) -> usize {
        self.distinct.len()
    }

    /// Size of the intersection of distinct hash values with `other`.
    pub fn intersection_size(&self, other: &Fingerprint) -> usize {
        sorted_intersection_len(&self.distinct, &other.distinct)
    }

    /// Containment of `self` in `other`:
    /// `|F(self) ∩ F(other)| / |F(self)|` over distinct hashes.
    ///
    /// This is the paper's disclosure metric `D(A, B)` (§4.2): how much of
    /// `self`'s content is found in `other`. Returns 0.0 when `self` is
    /// empty.
    pub fn containment_in(&self, other: &Fingerprint) -> f64 {
        if self.distinct.is_empty() {
            return 0.0;
        }
        self.intersection_size(other) as f64 / self.distinct.len() as f64
    }

    /// Broder resemblance (Jaccard index) of the two hash sets.
    pub fn resemblance(&self, other: &Fingerprint) -> f64 {
        let intersection = self.intersection_size(other);
        let union = self.distinct.len() + other.distinct.len() - intersection;
        if union == 0 {
            return 0.0;
        }
        intersection as f64 / union as f64
    }

    /// Byte spans (in the original text of `self`'s segment) of the n-grams
    /// whose hashes also occur in `other`.
    ///
    /// Used to highlight which passages of a paragraph disclose content
    /// from another segment.
    pub fn matching_spans(&self, other: &Fingerprint) -> Vec<Range<usize>> {
        self.entries
            .iter()
            .filter(|e| other.distinct.binary_search(&e.hash).is_ok())
            .map(|e| e.span())
            .collect()
    }
}

impl<'a> IntoIterator for &'a Fingerprint {
    type Item = &'a SelectedHash;
    type IntoIter = std::slice::Iter<'a, SelectedHash>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<SelectedHash> for Fingerprint {
    fn from_iter<I: IntoIterator<Item = SelectedHash>>(iter: I) -> Self {
        Self::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(values: &[u32]) -> Fingerprint {
        values
            .iter()
            .enumerate()
            .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
            .collect()
    }

    #[test]
    fn containment_full_and_empty() {
        let a = fp(&[1, 2, 3]);
        let b = fp(&[1, 2, 3, 4, 5]);
        assert_eq!(a.containment_in(&b), 1.0);
        assert_eq!(b.containment_in(&a), 0.6);
        let empty = fp(&[]);
        assert_eq!(empty.containment_in(&a), 0.0);
        assert_eq!(a.containment_in(&empty), 0.0);
    }

    #[test]
    fn containment_uses_distinct_hashes() {
        // Duplicate hash values count once.
        let a = fp(&[1, 1, 2]);
        let b = fp(&[1]);
        assert_eq!(a.containment_in(&b), 0.5);
        assert_eq!(a.distinct_len(), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn resemblance_is_symmetric() {
        let a = fp(&[1, 2, 3, 4]);
        let b = fp(&[3, 4, 5, 6]);
        assert_eq!(a.resemblance(&b), b.resemblance(&a));
        assert!((a.resemblance(&b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(fp(&[]).resemblance(&fp(&[])), 0.0);
    }

    #[test]
    fn matching_spans_filters_to_shared_hashes() {
        let a = fp(&[10, 20, 30]);
        let b = fp(&[20, 40]);
        let spans = a.matching_spans(&b);
        assert_eq!(spans, vec![1..2]);
    }

    #[test]
    fn distinct_hashes_are_sorted_and_deduplicated() {
        let a = fp(&[5, 1, 5, 3, 1]);
        assert_eq!(a.distinct_hashes(), &[1, 3, 5]);
        assert_eq!(a.distinct_len(), 3);
        assert_eq!(a.hash_set(), [1, 3, 5].into_iter().collect());
        assert_eq!(a.intersection_size(&fp(&[3, 5, 9])), 2);
        assert!(fp(&[]).distinct_hashes().is_empty());
    }

    #[test]
    fn from_iterator_and_into_iterator_roundtrip() {
        let a = fp(&[7, 8]);
        let collected: Fingerprint = a.iter().cloned().collect();
        assert_eq!(a, collected);
    }
}
