//! Karp–Rabin rolling hash (step S2 of the fingerprinting pipeline).
//!
//! The paper computes 32-bit hashes over character n-grams using the
//! efficient randomised pattern-matching hash of Karp and Rabin (IBM JRD
//! 1987): the hash of a window is a polynomial in a fixed base evaluated
//! over the window's characters, and sliding the window by one character is
//! O(1) — subtract the outgoing character's contribution, multiply by the
//! base, add the incoming character.
//!
//! Arithmetic is carried out modulo 2³² via wrapping `u32` operations, with
//! an odd base so that the map stays well-mixed.

/// The polynomial base. Odd and large enough to mix 21-bit `char` values.
pub const BASE: u32 = 1_000_003;

/// A Karp–Rabin rolling hash over a window of `n` characters.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::hash::RollingHash;
///
/// let text: Vec<char> = "abcdef".chars().collect();
/// let mut rh = RollingHash::new(3);
/// // Prime with the first window "abc".
/// for &c in &text[..3] {
///     rh.push(c);
/// }
/// let h_abc = rh.value();
/// // Roll to "bcd".
/// rh.roll(text[0], text[3]);
/// let h_bcd = rh.value();
/// assert_ne!(h_abc, h_bcd);
///
/// // Rolling is equivalent to hashing from scratch.
/// let mut fresh = RollingHash::new(3);
/// for &c in &text[1..4] {
///     fresh.push(c);
/// }
/// assert_eq!(h_bcd, fresh.value());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingHash {
    value: u32,
    /// BASE^(n-1) mod 2^32: the multiplier of the outgoing character.
    high_power: u32,
    window_len: usize,
    filled: usize,
}

impl RollingHash {
    /// Creates a rolling hash over windows of `window_len` characters.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len > 0, "window_len must be positive");
        let mut high_power = 1u32;
        for _ in 0..window_len - 1 {
            high_power = high_power.wrapping_mul(BASE);
        }
        Self {
            value: 0,
            high_power,
            window_len,
            filled: 0,
        }
    }

    /// Appends a character while the first window is being primed.
    ///
    /// # Panics
    ///
    /// Panics if more than `window_len` characters are pushed; use
    /// [`RollingHash::roll`] once the window is full.
    pub fn push(&mut self, incoming: char) {
        assert!(
            self.filled < self.window_len,
            "window already full; use roll()"
        );
        self.value = self.value.wrapping_mul(BASE).wrapping_add(incoming as u32);
        self.filled += 1;
    }

    /// Slides the full window by one character.
    ///
    /// # Panics
    ///
    /// Panics if the window has not been fully primed with
    /// [`RollingHash::push`] yet.
    pub fn roll(&mut self, outgoing: char, incoming: char) {
        assert!(self.filled == self.window_len, "window not primed yet");
        let out_contrib = (outgoing as u32).wrapping_mul(self.high_power);
        self.value = self
            .value
            .wrapping_sub(out_contrib)
            .wrapping_mul(BASE)
            .wrapping_add(incoming as u32);
    }

    /// Whether the first window has been fully primed.
    pub fn is_primed(&self) -> bool {
        self.filled == self.window_len
    }

    /// The hash of the current window.
    pub fn value(&self) -> u32 {
        self.value
    }
}

/// Hashes one n-gram from scratch (non-rolling reference implementation).
pub fn hash_ngram(chars: &[char]) -> u32 {
    let mut value = 0u32;
    for &c in chars {
        value = value.wrapping_mul(BASE).wrapping_add(c as u32);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_from_scratch_on_ascii() {
        let text: Vec<char> = "the quick brown fox jumps".chars().collect();
        let n = 5;
        let mut rh = RollingHash::new(n);
        for &c in &text[..n] {
            rh.push(c);
        }
        assert_eq!(rh.value(), hash_ngram(&text[..n]));
        for start in 1..=text.len() - n {
            rh.roll(text[start - 1], text[start + n - 1]);
            assert_eq!(
                rh.value(),
                hash_ngram(&text[start..start + n]),
                "mismatch at window {start}"
            );
        }
    }

    #[test]
    fn rolling_matches_from_scratch_on_unicode() {
        let text: Vec<char> = "ζeta συϲtems ωith ünïcode".chars().collect();
        let n = 4;
        let mut rh = RollingHash::new(n);
        for &c in &text[..n] {
            rh.push(c);
        }
        for start in 1..=text.len() - n {
            rh.roll(text[start - 1], text[start + n - 1]);
            assert_eq!(rh.value(), hash_ngram(&text[start..start + n]));
        }
    }

    #[test]
    fn different_ngrams_rarely_collide() {
        // All 3-grams of a pangram should hash distinctly.
        let text: Vec<char> = "sphinx of black quartz judge my vow"
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect();
        let mut seen = std::collections::HashSet::new();
        for w in text.windows(3) {
            seen.insert(hash_ngram(w));
        }
        assert_eq!(seen.len(), {
            let mut grams = std::collections::HashSet::new();
            for w in text.windows(3) {
                grams.insert(w.to_vec());
            }
            grams.len()
        });
    }

    #[test]
    fn window_of_one_hashes_single_chars() {
        let mut rh = RollingHash::new(1);
        rh.push('a');
        assert_eq!(rh.value(), 'a' as u32);
        rh.roll('a', 'b');
        assert_eq!(rh.value(), 'b' as u32);
    }

    #[test]
    #[should_panic(expected = "window not primed")]
    fn roll_before_priming_panics() {
        RollingHash::new(3).roll('a', 'b');
    }

    #[test]
    #[should_panic(expected = "window already full")]
    fn overfilling_panics() {
        let mut rh = RollingHash::new(1);
        rh.push('a');
        rh.push('b');
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(hash_ngram(&['a', 'b', 'c']), hash_ngram(&['c', 'b', 'a']));
    }
}
