//! Edit-aware incremental fingerprinting (the keystroke hot path).
//!
//! Winnowing is *local* (§4.1): whether an n-gram hash is selected depends
//! only on the hash values within `w - 1` positions of it, and each hash
//! covers `n` normalised characters — so an edit can only change the
//! fingerprint inside a bounded neighbourhood of the edited bytes.
//! [`IncrementalFingerprinter::apply_edit`] exploits this: it splices the
//! normalised state, re-hashes only the n-grams overlapping the edit and
//! re-winnows only the affected window span, returning the
//! `{added, removed}` hash delta that feeds Algorithm 1's incremental mode
//! (§4.3). The cost per edit is `O(edit + w + n)` hash/winnow work instead
//! of `O(paragraph)`.
//!
//! # Correctness argument
//!
//! Let the edit replace normalised characters `[ns, ne)` with `r` new
//! ones. n-gram hashes whose grams lie entirely before `ns` or entirely at
//! or after `ne` keep their values (the latter shift position by
//! `r - (ne - ns)`); only hashes overlapping `[ns, ne)` are recomputed
//! (the *dirty* range `[d_lo, d_hi)`). Robust winnowing selects position
//! `p` iff `p` is the rightmost minimum of some window of `w` hashes
//! containing it — a predicate over hash values at `[p-w+1, p+w-1]`. Hence
//! selection can change only inside the *trust* range
//! `[d_lo - (w-1), d_hi + (w-1))`; re-winnowing the trust range padded by
//! another `w - 1` on each side (so every window touching a trust position
//! is complete) reproduces the full algorithm's choices exactly. The
//! degenerate short-sequence path (`len <= w`, a single global minimum) is
//! not window-local, so whenever either the old or the new hash sequence
//! is that short the whole (tiny) sequence is re-winnowed. The
//! `incremental_matches_full` property test exercises this equivalence
//! over arbitrary edit scripts.

use crate::config::FingerprintConfig;
use crate::fingerprint::{Fingerprint, SelectedHash};
use crate::hash::RollingHash;
use crate::ngram::NgramHash;
use crate::winnow::{self, WindowMinScratch};
use std::collections::HashMap;
use std::ops::Range;

/// One text edit: replace `range` (a byte range of the current original
/// text, on `char` boundaries) with `replacement`.
///
/// Insertions use an empty range; deletions an empty replacement. This is
/// the shape in which browser keystroke events arrive: a caret position or
/// selection plus the typed (possibly pasted) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextEdit {
    /// Byte range of the current text being replaced.
    pub range: Range<usize>,
    /// Replacement text (empty for a pure deletion).
    pub replacement: String,
}

impl TextEdit {
    /// An insertion of `text` at byte offset `at`.
    pub fn insert(at: usize, text: impl Into<String>) -> Self {
        Self {
            range: at..at,
            replacement: text.into(),
        }
    }

    /// A deletion of the byte range `range`.
    pub fn delete(range: Range<usize>) -> Self {
        Self {
            range,
            replacement: String::new(),
        }
    }

    /// A replacement of `range` by `text`.
    pub fn replace(range: Range<usize>, text: impl Into<String>) -> Self {
        Self {
            range,
            replacement: text.into(),
        }
    }

    /// Whether this edit applies cleanly to `text`: the range is in
    /// bounds and falls on `char` boundaries.
    pub fn applies_to(&self, text: &str) -> bool {
        self.range.start <= self.range.end
            && self.range.end <= text.len()
            && text.is_char_boundary(self.range.start)
            && text.is_char_boundary(self.range.end)
    }
}

/// The change an edit made to a fingerprint's *distinct* hash set.
///
/// `added` are values newly present, `removed` values no longer present;
/// a value whose multiplicity changed without touching zero appears in
/// neither. Both lists are sorted. This is exactly the delta shape that
/// `IncrementalChecker::update` (Algorithm 1's incremental mode, §4.3)
/// consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FingerprintDelta {
    /// Hash values that entered the distinct set.
    pub added: Vec<u32>,
    /// Hash values that left the distinct set.
    pub removed: Vec<u32>,
}

impl FingerprintDelta {
    /// Whether the edit left the distinct hash set unchanged.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Incrementally maintained fingerprint state for one paragraph under
/// edit.
///
/// Holds the paragraph's original text, its normalised characters with the
/// byte-offset map, the full n-gram hash sequence and the winnowed
/// selection. [`IncrementalFingerprinter::apply_edit`] updates all of it
/// in time proportional to the edit (plus `w + n`), not the paragraph, and
/// [`IncrementalFingerprinter::fingerprint`] materialises a
/// [`Fingerprint`] byte-identical to
/// [`Fingerprinter::fingerprint`](crate::Fingerprinter::fingerprint) on
/// the current text.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::{Fingerprinter, IncrementalFingerprinter, TextEdit};
///
/// let fp = Fingerprinter::default();
/// let mut inc = IncrementalFingerprinter::new(*fp.config());
/// inc.apply_edit(&TextEdit::insert(0, "meeting notes: the acquisition closes in march"));
/// inc.apply_edit(&TextEdit::insert(14, " (confidential)"));
/// assert_eq!(inc.fingerprint(), fp.fingerprint(inc.text()));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalFingerprinter {
    config: FingerprintConfig,
    /// Current original text.
    text: String,
    /// Normalised characters of `text`.
    norm: Vec<char>,
    /// Byte offset in `text` of each normalised character's source char.
    offsets: Vec<usize>,
    /// Byte length in `text` of each normalised character's source char.
    char_lens: Vec<usize>,
    /// Karp–Rabin hash of the n-gram starting at each normalised position.
    hashes: Vec<u32>,
    /// Winnowed selection: sorted, distinct n-gram positions.
    selected: Vec<usize>,
    /// Multiset of the hash values at `selected` positions.
    counts: HashMap<u32, usize>,
    edits: u64,
    // Reusable per-edit scratch; kept in the struct so steady-state edits
    // do not allocate.
    rep_norm: Vec<char>,
    rep_offsets: Vec<usize>,
    rep_lens: Vec<usize>,
    dirty_hashes: Vec<u32>,
    winnow_scratch: WindowMinScratch,
    winnow_out: Vec<NgramHash>,
    trust_positions: Vec<usize>,
    dropped_vals: Vec<u32>,
    added_vals: Vec<u32>,
    before: HashMap<u32, usize>,
}

impl IncrementalFingerprinter {
    /// Starts incremental state for an initially empty paragraph.
    pub fn new(config: FingerprintConfig) -> Self {
        Self {
            config,
            text: String::new(),
            norm: Vec::new(),
            offsets: Vec::new(),
            char_lens: Vec::new(),
            hashes: Vec::new(),
            selected: Vec::new(),
            counts: HashMap::new(),
            edits: 0,
            rep_norm: Vec::new(),
            rep_offsets: Vec::new(),
            rep_lens: Vec::new(),
            dirty_hashes: Vec::new(),
            winnow_scratch: WindowMinScratch::default(),
            winnow_out: Vec::new(),
            trust_positions: Vec::new(),
            dropped_vals: Vec::new(),
            added_vals: Vec::new(),
            before: HashMap::new(),
        }
    }

    /// Starts incremental state seeded with `text` (one insert edit).
    pub fn with_text(config: FingerprintConfig, text: &str) -> Self {
        let mut inc = Self::new(config);
        inc.apply_edit(&TextEdit::insert(0, text));
        inc
    }

    /// The configuration in use.
    pub fn config(&self) -> &FingerprintConfig {
        &self.config
    }

    /// The current original text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of edits applied so far.
    pub fn edit_count(&self) -> u64 {
        self.edits
    }

    /// Number of distinct hash values currently selected.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Materialises the current [`Fingerprint`].
    ///
    /// Byte-identical to running the full pipeline
    /// ([`Fingerprinter::fingerprint`](crate::Fingerprinter::fingerprint))
    /// on [`IncrementalFingerprinter::text`].
    pub fn fingerprint(&self) -> Fingerprint {
        let n = self.config.ngram_len();
        self.selected
            .iter()
            .map(|&p| {
                let last = p + n - 1;
                let span = self.offsets[p]..self.offsets[last] + self.char_lens[last];
                SelectedHash::new(self.hashes[p], p, span)
            })
            .collect()
    }

    /// Applies one edit and returns the distinct-hash delta it caused.
    ///
    /// Normalised state is spliced, only n-grams overlapping the edit are
    /// re-hashed, and only the `w - 1` neighbourhood of the dirty hashes is
    /// re-winnowed (see the module docs for the locality argument).
    ///
    /// # Panics
    ///
    /// Panics if the edit range is out of bounds or not on `char`
    /// boundaries of the current text (check with [`TextEdit::applies_to`]
    /// when the edit comes from an untrusted source).
    pub fn apply_edit(&mut self, edit: &TextEdit) -> FingerprintDelta {
        let (start, end) = (edit.range.start, edit.range.end);
        assert!(
            start <= end && end <= self.text.len(),
            "edit range {start}..{end} out of bounds for text of {} bytes",
            self.text.len()
        );
        assert!(
            self.text.is_char_boundary(start) && self.text.is_char_boundary(end),
            "edit range {start}..{end} must fall on char boundaries"
        );
        let n = self.config.ngram_len();
        let w = self.config.window();

        // S1: normalise the replacement and splice the normalised state.
        // Normalisation is per-character, so normalising the replacement
        // alone and splicing equals re-normalising the whole new text.
        self.rep_norm.clear();
        self.rep_offsets.clear();
        self.rep_lens.clear();
        normalize_chars(
            &edit.replacement,
            start,
            &mut self.rep_norm,
            &mut self.rep_offsets,
            &mut self.rep_lens,
        );
        // Normalised chars sourced from original chars entirely before the
        // edit keep their offsets; chars starting inside [start, end) are
        // replaced; chars at or after `end` shift by the byte delta.
        let ns = self.offsets.partition_point(|&o| o < start);
        let ne = self.offsets.partition_point(|&o| o < end);
        let rep_count = self.rep_norm.len();
        let byte_shift = edit.replacement.len() as isize - (end - start) as isize;
        self.norm.splice(ns..ne, self.rep_norm.iter().copied());
        self.offsets
            .splice(ns..ne, self.rep_offsets.iter().copied());
        self.char_lens.splice(ns..ne, self.rep_lens.iter().copied());
        for offset in &mut self.offsets[ns + rep_count..] {
            *offset = (*offset as isize + byte_shift) as usize;
        }
        self.text.replace_range(start..end, &edit.replacement);
        let new_norm_len = self.norm.len();

        // S2: bound the dirty hash range. Old hashes whose n-gram overlaps
        // the replaced characters are dropped; the kept suffix shifts.
        let old_hash_count = self.hashes.len();
        let new_hash_count = new_norm_len.saturating_sub(n - 1);
        let hd_lo = ns.saturating_sub(n - 1).min(old_hash_count);
        let hd_old_hi = ne.min(old_hash_count);
        let suffix_kept = old_hash_count - hd_old_hi;
        let d_lo = hd_lo;
        let d_hi = new_hash_count
            .checked_sub(suffix_kept)
            .expect("kept suffix exceeds new hash count");
        debug_assert!(d_lo <= d_hi, "dirty range inverted: {d_lo}..{d_hi}");
        self.dirty_hashes.clear();
        if d_hi > d_lo {
            let mut rolling = RollingHash::new(n);
            for &c in &self.norm[d_lo..d_lo + n] {
                rolling.push(c);
            }
            self.dirty_hashes.push(rolling.value());
            for q in d_lo + 1..d_hi {
                rolling.roll(self.norm[q - 1], self.norm[q + n - 1]);
                self.dirty_hashes.push(rolling.value());
            }
        }

        // S3/S4: re-winnow. The degenerate short-sequence selection (a
        // single global minimum) is not window-local, so fall back to a
        // full (tiny) re-winnow whenever either side is that short.
        let degenerate = old_hash_count <= w || new_hash_count <= w;
        let shift = new_hash_count as isize - old_hash_count as isize;
        self.dropped_vals.clear();
        self.added_vals.clear();
        if degenerate {
            for &p in &self.selected {
                self.dropped_vals.push(self.hashes[p]);
            }
            self.hashes
                .splice(hd_lo..hd_old_hi, self.dirty_hashes.iter().copied());
            debug_assert_eq!(self.hashes.len(), new_hash_count);
            winnow::winnow_hashes_into(
                &self.hashes,
                0,
                w,
                &mut self.winnow_scratch,
                &mut self.winnow_out,
            );
            self.selected.clear();
            for s in &self.winnow_out {
                self.selected.push(s.position);
                self.added_vals.push(s.hash);
            }
        } else {
            // Trust range: positions whose selection status may change.
            let t_lo = d_lo.saturating_sub(w - 1);
            let t_hi = (d_hi + w - 1).min(new_hash_count);
            // Old selections before the trust range are kept verbatim, the
            // ones at or after its old-coordinate end are kept shifted, and
            // the ones in between are dropped (values read from the old
            // hash sequence, before the splice).
            let old_t_hi = t_hi as isize - shift;
            let keep_prefix = self.selected.partition_point(|&p| p < t_lo);
            let drop_hi = self.selected.partition_point(|&p| (p as isize) < old_t_hi);
            for &p in &self.selected[keep_prefix..drop_hi] {
                self.dropped_vals.push(self.hashes[p]);
            }
            self.hashes
                .splice(hd_lo..hd_old_hi, self.dirty_hashes.iter().copied());
            debug_assert_eq!(self.hashes.len(), new_hash_count);
            // Re-winnow the trust range padded by w - 1 on each side so
            // every window containing a trust position is complete, then
            // keep only the selections that landed inside the trust range.
            let e_lo = t_lo.saturating_sub(w - 1);
            let e_hi = (t_hi + w - 1).min(new_hash_count);
            winnow::winnow_hashes_into(
                &self.hashes[e_lo..e_hi],
                e_lo,
                w,
                &mut self.winnow_scratch,
                &mut self.winnow_out,
            );
            self.trust_positions.clear();
            for s in &self.winnow_out {
                if s.position >= t_lo && s.position < t_hi {
                    self.trust_positions.push(s.position);
                    self.added_vals.push(s.hash);
                }
            }
            let tail_start = keep_prefix + self.trust_positions.len();
            self.selected
                .splice(keep_prefix..drop_hi, self.trust_positions.iter().copied());
            for p in &mut self.selected[tail_start..] {
                *p = (*p as isize + shift) as usize;
            }
        }

        // Delta over the distinct hash set: compare each touched value's
        // multiplicity before and after, so a value that merely changed
        // multiplicity (or was dropped and re-selected) reports nothing.
        let before = &mut self.before;
        let counts = &mut self.counts;
        before.clear();
        for &v in self.dropped_vals.iter().chain(self.added_vals.iter()) {
            before
                .entry(v)
                .or_insert_with(|| counts.get(&v).copied().unwrap_or(0));
        }
        for &v in &self.dropped_vals {
            let c = counts
                .get_mut(&v)
                .expect("dropped value must be in the selected multiset");
            *c -= 1;
            if *c == 0 {
                counts.remove(&v);
            }
        }
        for &v in &self.added_vals {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut delta = FingerprintDelta::default();
        for (&v, &b) in before.iter() {
            let a = counts.get(&v).copied().unwrap_or(0);
            if b > 0 && a == 0 {
                delta.removed.push(v);
            } else if b == 0 && a > 0 {
                delta.added.push(v);
            }
        }
        delta.added.sort_unstable();
        delta.removed.sort_unstable();
        self.edits += 1;
        delta
    }
}

/// Normalises `text` into parallel char/offset/len vectors, with offsets
/// rebased by `base` (the byte position the replacement lands at).
///
/// Mirrors [`crate::normalize::normalize_into`] exactly, including the
/// ASCII fast path and the handling of one-to-many lowercase expansions.
fn normalize_chars(
    text: &str,
    base: usize,
    chars: &mut Vec<char>,
    offsets: &mut Vec<usize>,
    lens: &mut Vec<usize>,
) {
    if text.is_ascii() {
        for (i, &b) in text.as_bytes().iter().enumerate() {
            if b.is_ascii_alphanumeric() {
                chars.push(b.to_ascii_lowercase() as char);
                offsets.push(base + i);
                lens.push(1);
            }
        }
        return;
    }
    for (byte_offset, ch) in text.char_indices() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                chars.push(lower);
                offsets.push(base + byte_offset);
                lens.push(ch.len_utf8());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprinter;

    fn config(n: usize, w: usize) -> FingerprintConfig {
        FingerprintConfig::builder()
            .ngram_len(n)
            .window(w)
            .build()
            .unwrap()
    }

    fn check_matches_full(inc: &IncrementalFingerprinter) {
        let full = Fingerprinter::new(inc.config).fingerprint(inc.text());
        assert_eq!(
            inc.fingerprint(),
            full,
            "incremental state diverged for text {:?} under n={} w={}",
            inc.text(),
            inc.config.ngram_len(),
            inc.config.window()
        );
    }

    #[test]
    fn seeding_matches_full_pipeline() {
        let inc = IncrementalFingerprinter::with_text(
            config(6, 3),
            "The Quick, Brown Fox! Jumps over the lazy dog again and again.",
        );
        check_matches_full(&inc);
        assert_eq!(inc.edit_count(), 1);
    }

    #[test]
    fn empty_and_short_texts() {
        let mut inc = IncrementalFingerprinter::new(config(6, 3));
        assert!(inc.fingerprint().is_empty());
        let delta = inc.apply_edit(&TextEdit::insert(0, "tiny"));
        assert!(delta.is_empty());
        check_matches_full(&inc);
        inc.apply_edit(&TextEdit::insert(4, "-growing to one gram"));
        check_matches_full(&inc);
        inc.apply_edit(&TextEdit::delete(0..inc.text().len()));
        assert!(inc.fingerprint().is_empty());
        check_matches_full(&inc);
    }

    #[test]
    fn keystrokes_at_the_end_match_full() {
        let mut inc = IncrementalFingerprinter::new(config(6, 3));
        let mut expected_text = String::new();
        for ch in "Dear all, the acquisition of Initech will close on March 1st; \
                   please keep this strictly confidential until the press event."
            .chars()
        {
            let at = inc.text().len();
            inc.apply_edit(&TextEdit::insert(at, ch.to_string()));
            expected_text.push(ch);
            assert_eq!(inc.text(), expected_text);
            check_matches_full(&inc);
        }
    }

    #[test]
    fn edits_at_start_middle_and_end() {
        let mut inc = IncrementalFingerprinter::with_text(
            config(5, 4),
            "a reasonably long paragraph of text to edit in place repeatedly",
        );
        inc.apply_edit(&TextEdit::insert(0, "PREFIX "));
        check_matches_full(&inc);
        let mid = inc.text().len() / 2;
        inc.apply_edit(&TextEdit::replace(mid..mid + 4, "XYZW"));
        check_matches_full(&inc);
        let len = inc.text().len();
        inc.apply_edit(&TextEdit::delete(len - 10..len));
        check_matches_full(&inc);
    }

    #[test]
    fn multibyte_edits_match_full() {
        let mut inc = IncrementalFingerprinter::with_text(
            config(4, 3),
            "Zürich Straße — die Übernahme wird im März bekannt gegeben",
        );
        check_matches_full(&inc);
        // Insert multibyte text at a multibyte boundary.
        let at = inc.text().find('Ü').unwrap();
        inc.apply_edit(&TextEdit::insert(at, "größere "));
        check_matches_full(&inc);
        // Delete a range containing multibyte chars.
        let from = inc.text().find('ö').unwrap();
        let to = from + 'ö'.len_utf8();
        inc.apply_edit(&TextEdit::delete(from..to));
        check_matches_full(&inc);
    }

    #[test]
    fn delta_tracks_distinct_set() {
        let fp = Fingerprinter::new(config(6, 3));
        let mut inc = IncrementalFingerprinter::new(config(6, 3));
        let mut live: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let edits = [
            TextEdit::insert(0, "the quick brown fox jumps over the lazy dog"),
            TextEdit::insert(19, " repeatedly and often "),
            TextEdit::delete(5..25),
            TextEdit::replace(0..3, "THE"),
        ];
        for edit in &edits {
            let delta = inc.apply_edit(edit);
            for &v in &delta.removed {
                assert!(live.remove(&v), "removed value {v} was not live");
            }
            for &v in &delta.added {
                assert!(live.insert(v), "added value {v} already live");
            }
            let expected: std::collections::HashSet<u32> = fp.fingerprint(inc.text()).hash_set();
            assert_eq!(live, expected);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edit_panics() {
        let mut inc = IncrementalFingerprinter::with_text(config(6, 3), "short");
        inc.apply_edit(&TextEdit::delete(3..99));
    }

    #[test]
    #[should_panic(expected = "char boundaries")]
    fn non_boundary_edit_panics() {
        let mut inc = IncrementalFingerprinter::with_text(config(6, 3), "héllo");
        inc.apply_edit(&TextEdit::delete(1..2));
    }

    #[test]
    fn applies_to_validates() {
        let edit = TextEdit::delete(1..2);
        assert!(!edit.applies_to("héllo"));
        assert!(edit.applies_to("hello"));
        assert!(!TextEdit::insert(9, "x").applies_to("short"));
    }
}
